"""Anatomy of the converged optimizer, piece by piece.

Walks through what RelGo does internally on one cyclic query:

1. the search-space gap of the graph-aware decomposition (Theorem 1);
2. GLogue's high-order statistics vs naive independence estimates;
3. the decomposition tree chosen for a triangle pattern;
4. the effect of FilterIntoMatchRule on estimated cardinalities.

Run:  python examples/optimizer_anatomy.py
"""

from repro.core.rules import apply_filter_into_match
from repro.core.spjm import GraphTableClause, MatchColumn, SPJMQuery
from repro.graph.cost import CardinalityEstimator
from repro.graph.glogue import GLogue
from repro.graph.index import build_graph_index
from repro.graph.matching import count_matches
from repro.graph.optimizer import GraphOptimizer
from repro.graph.pattern import PatternGraph
from repro.graph.search_space import (
    agnostic_search_space,
    aware_search_space,
    path_pattern,
)
from repro.relational.expr import col, eq, lit
from repro.workloads.ldbc import LdbcParams, generate_ldbc


def main() -> None:
    catalog, mapping = generate_ldbc(LdbcParams.scaled(0.5))
    index = build_graph_index(mapping)
    catalog.register_graph_index(index)

    print("1) search-space sizes for path patterns (Fig 4a / Theorem 1)")
    for m in (2, 4, 6, 8):
        p = path_pattern(m)
        print(
            f"   m={m}: graph-agnostic {agnostic_search_space(p):.2e} plans, "
            f"graph-aware {aware_search_space(p):.2e}"
        )

    triangle = (
        PatternGraph.builder()
        .vertex("a", "person")
        .vertex("b", "person")
        .vertex("c", "person")
        .edge("a", "b", "knows")
        .edge("b", "c", "knows")
        .edge("a", "c", "knows")
        .build()
    )

    print("\n2) cardinality estimation: GLogue vs low-order independence")
    glogue = GLogue(mapping, index, sample_ratio=0.5)
    high = CardinalityEstimator(glogue, catalog, use_glogue=True)
    low = CardinalityEstimator(glogue, catalog, use_glogue=False)
    actual = count_matches(mapping, index, triangle)
    print(f"   actual triangle count:      {actual}")
    print(f"   GLogue (high-order) est:    {high.estimate(triangle):.0f}")
    print(f"   low-order independence est: {low.estimate(triangle):.0f}")

    print("\n3) the decomposition tree RelGo picks for the triangle")
    optimizer = GraphOptimizer(mapping, high)
    plan = optimizer.optimize(triangle)
    print(plan.explain(1))

    print("\n4) FilterIntoMatchRule: constraint pushdown re-costs the match")
    clause = GraphTableClause(
        "snb",
        triangle,
        [MatchColumn("a", "first_name", "fn")],
        alias="g",
    )
    query = SPJMQuery(
        graph_table=clause,
        predicates=[eq(col("g.fn"), lit("Jan"))],
        projections=[(col("g.fn"), "fn")],
    )
    before = high.estimate(triangle)
    pushed, report = apply_filter_into_match(query)
    assert pushed.graph_table is not None
    after = high.estimate(pushed.graph_table.pattern)
    print(f"   pushed constraints: {report.pushed_constraints}")
    print(f"   |M(P)| estimate before push: {before:.0f}, after: {after:.0f}")


if __name__ == "__main__":
    main()
