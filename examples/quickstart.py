"""Quickstart: define tables, create a property graph, run SQL/PGQ with RelGo.

Reproduces the paper's running example (Fig 1 / Fig 2): Person / Message /
Likes / Knows / Place, the property graph G, and the "friends of Tom who
like the same message" query — optimized by the converged RelGo pipeline.

Run:  python examples/quickstart.py
"""

from repro.core.framework import RelGoConfig, RelGoFramework
from repro.core.sqlpgq import parse_and_bind, parse_statement
from repro.core.sqlpgq.binder import execute_ddl
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType


def build_catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_table(
        TableSchema(
            "Person",
            [
                Column("person_id", DataType.INT),
                Column("name", DataType.STRING),
                Column("place_id", DataType.INT),
            ],
            primary_key="person_id",
        ),
        rows=[(1, "Tom", 101), (2, "Bob", 102), (3, "David", 103)],
    )
    catalog.create_table(
        TableSchema(
            "Message",
            [Column("message_id", DataType.INT), Column("content", DataType.STRING)],
            primary_key="message_id",
        ),
        rows=[(11, "hello graphs"), (12, "hello relations")],
    )
    catalog.create_table(
        TableSchema(
            "Likes",
            [
                Column("likes_id", DataType.INT),
                Column("pid", DataType.INT),
                Column("mid", DataType.INT),
                Column("date", DataType.DATE),
            ],
            primary_key="likes_id",
        ),
        rows=[
            (1, 1, 11, "2024-03-31"),
            (2, 2, 11, "2024-03-28"),
            (3, 2, 12, "2024-03-20"),
            (4, 3, 12, "2024-03-21"),
        ],
    )
    catalog.create_table(
        TableSchema(
            "Knows",
            [
                Column("knows_id", DataType.INT),
                Column("pid1", DataType.INT),
                Column("pid2", DataType.INT),
                Column("date", DataType.DATE),
            ],
            primary_key="knows_id",
        ),
        rows=[
            (1, 1, 2, "2023-01-15"),
            (2, 2, 1, "2023-01-15"),
            (3, 2, 3, "2023-02-18"),
            (4, 3, 2, "2023-02-18"),
        ],
    )
    catalog.create_table(
        TableSchema(
            "Place",
            [Column("id", DataType.INT), Column("name", DataType.STRING)],
            primary_key="id",
        ),
        rows=[(101, "Germany"), (102, "Denmark"), (103, "China")],
    )
    return catalog


DDL = """
CREATE PROPERTY GRAPH G
VERTEX TABLES (
  Person PROPERTIES (person_id, name, place_id),
  Message PROPERTIES (message_id, content)
)
EDGE TABLES (
  Likes SOURCE KEY (pid) REFERENCES Person (person_id)
        DESTINATION KEY (mid) REFERENCES Message (message_id)
        PROPERTIES (date),
  Knows SOURCE KEY (pid1) REFERENCES Person (person_id)
        DESTINATION KEY (pid2) REFERENCES Person (person_id)
)
"""

QUERY = """
SELECT p2_name, p.name AS place_name
FROM GRAPH_TABLE (G
  MATCH (p1:Person)-[:Likes]->(m:Message),
        (p2:Person)-[:Likes]->(m),
        (p1)-[:Knows]->(p2)
  COLUMNS (p1.name AS p1_name,
           p1.place_id AS p1_place_id,
           p2.name AS p2_name)
) g JOIN Place p ON g.p1_place_id = p.id
WHERE g.p1_name = 'Tom'
"""


def main() -> None:
    catalog = build_catalog()
    execute_ddl(parse_statement(DDL), catalog)

    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()  # graph index + statistics (offline step)

    query = parse_and_bind(QUERY, catalog)
    result, optimized = framework.run(query)

    print("optimized physical plan:")
    print(optimized.explain())
    print()
    print(f"optimization took {optimized.optimization_time * 1000:.2f} ms")
    print(f"result columns: {result.columns}")
    for row in result.rows:
        print(" ", row)
    assert result.rows == [("Bob", "Germany")]
    print("\nTom's friend Bob (who likes the same message) lives in... Germany!")


if __name__ == "__main__":
    main()
