"""The JOB17 case study (paper Fig 12) on the synthetic IMDB graph.

Optimizes the same SQL/PGQ query with RelGo, GRainDB and the Umbra-like
optimizer, prints all three physical plans, and shows the timing gap — the
paper's illustration of why graph-aware plans keep the graph index usable.

Run:  python examples/movie_graph_case_study.py
"""

import time

from repro.core.plan_proto import plan_to_json
from repro.graph.index import build_graph_index
from repro.systems import make_system
from repro.workloads.job import JobParams, generate_imdb, job_queries


def main() -> None:
    print("generating a synthetic IMDB (JOB shape)...")
    catalog, mapping = generate_imdb(JobParams.scaled(1.0))
    catalog.register_graph_index(build_graph_index(mapping))
    sql = job_queries(["JOB17"])["JOB17"]
    print(sql)
    print()
    results = {}
    for name in ("relgo", "graindb", "umbra"):
        system = make_system(name, catalog, "imdb")
        optimized = system.optimize(sql)
        started = time.perf_counter()
        result = system.framework.execute(optimized)
        elapsed = (time.perf_counter() - started) * 1000
        results[name] = result.sorted_rows()
        print(f"=== {name} ({elapsed:.1f} ms execution) " + "=" * 20)
        print(optimized.explain())
        print()
    assert results["relgo"] == results["graindb"] == results["umbra"]
    print("all three systems agree on the answer:", results["relgo"])

    # The optimized plan is platform-independent (the paper serializes it
    # with protobuf; this reproduction uses JSON) — show a snippet.
    system = make_system("relgo", catalog, "imdb")
    dump = plan_to_json(system.optimize(sql).physical)
    print("\nserialized plan (first 400 chars):")
    print(dump[:400], "...")


if __name__ == "__main__":
    main()
