"""Social-network analysis on the LDBC-like dataset.

Generates a synthetic social network, then answers three analyst questions
with SQL/PGQ — comparing RelGo against the graph-agnostic DuckDB-style
baseline on each (same results, different plans and speed).

Run:  python examples/social_network_analysis.py
"""

import time

from repro.core.sqlpgq import parse_and_bind
from repro.graph.index import build_graph_index
from repro.systems import make_system
from repro.workloads.ldbc import LdbcParams, generate_ldbc

QUERIES = {
    "mutual-likes triangle (who likes my friends' posts?)": """
        SELECT g.fan AS fan, COUNT(*) AS interactions
        FROM GRAPH_TABLE (snb
          MATCH (me:person)-[:knows]->(f:person),
                (f)-[:likes]->(m:post),
                (m)-[:has_creator]->(me)
          WHERE me.first_name = 'Ada'
          COLUMNS (f.first_name AS fan)) g
        GROUP BY g.fan ORDER BY interactions DESC, fan ASC LIMIT 5
    """,
    "tag reach (which tags do friends-of-friends care about?)": """
        SELECT g.tag AS tag, COUNT(*) AS reach
        FROM GRAPH_TABLE (snb
          MATCH (me:person)-[:knows]->(a:person)-[:knows]->(b:person),
                (b)-[:has_interest]->(t:tag)
          WHERE me.first_name = 'Ken'
          COLUMNS (t.name AS tag)) g
        GROUP BY g.tag ORDER BY reach DESC, tag ASC LIMIT 5
    """,
    "busy forums (forums whose members post in them)": """
        SELECT g.forum AS forum, COUNT(*) AS activity
        FROM GRAPH_TABLE (snb
          MATCH (fo:forum)-[:has_member]->(p:person),
                (fo)-[:container_of]->(m:post),
                (m)-[:has_creator]->(p)
          COLUMNS (fo.title AS forum)) g
        GROUP BY g.forum ORDER BY activity DESC, forum ASC LIMIT 5
    """,
}


def main() -> None:
    print("generating a synthetic social network (LDBC SNB shape)...")
    catalog, mapping = generate_ldbc(LdbcParams.scaled(1.0))
    catalog.register_graph_index(build_graph_index(mapping))
    relgo = make_system("relgo", catalog, "snb")
    duckdb = make_system("duckdb", catalog, "snb")
    print(
        f"  persons={catalog.table('person').num_rows}, "
        f"knows={catalog.table('knows').num_rows}, "
        f"posts={catalog.table('post').num_rows}\n"
    )
    for title, sql in QUERIES.items():
        print(f"### {title}")
        query = parse_and_bind(sql, catalog)
        rows = {}
        for system in (relgo, duckdb):
            started = time.perf_counter()
            optimized = system.optimize(query)
            result = system.framework.execute(optimized)
            elapsed = (time.perf_counter() - started) * 1000
            rows[system.name] = result.sorted_rows()
            print(f"  {system.name:>7}: {elapsed:7.1f} ms, {len(result)} rows")
        assert rows["relgo"] == rows["duckdb"], "systems must agree!"
        for row in sorted(rows["relgo"], key=lambda r: (-r[-1], r[0]))[:5]:
            print(f"     {row}")
        print()


if __name__ == "__main__":
    main()
