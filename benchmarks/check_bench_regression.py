"""Gate a fresh ``BENCH_exec.json`` against a checked-in baseline.

CI's bench smoke produces ``BENCH_exec.json`` at ``BENCH_SCALE=0.25`` and
this script fails the job when any scenario's tracked time regressed by
more than ``--threshold`` (default 2x) versus the committed baseline
recorded **at the same scale** — a deliberately wide margin so shared
runners don't flap, while a genuinely quadratic regression (or a
deadlocked scheduler limping on timeouts) still fails fast.

Scale mismatches skip the comparison (absolute times are only comparable
at equal scale); new scenarios absent from the baseline are reported but
never fail, so adding a scenario does not require regenerating baselines
in the same commit.

Runner hardware differs from the machine the baseline was recorded on, so
per-scenario ratios are normalized by the run's **median ratio** before
gating: a runner that is uniformly 2x slower than the baseline machine
moves every ratio (and the median) together and nothing fails, while one
scenario regressing relative to the rest of the suite still trips.  A
genuinely global regression is caught by gating the median itself at
twice the threshold — wide enough for real runner-class speed spreads,
tight enough that a whole-suite blowup still fails.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline benchmarks/BENCH_baseline_scale0.25.json \
        --current BENCH_exec.json [--threshold 2.0]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys


def _tracked_times(doc: dict, include_multithread: bool) -> dict[str, float]:
    """Flatten a bench document to ``scenario -> tracked milliseconds``.

    ``serial_ms`` (parallelism 1) is core-count independent and always
    compared; the multi-threaded levels (``p2_ms``, ``p4_ms``, ...) only
    when ``include_multithread`` (equal core counts).
    """
    times: dict[str, float] = {}
    for name, entry in doc.get("queries", {}).items():
        times[f"queries/{name}"] = entry["columnar"]["time_ms"]
    for name, entry in doc.get("parallel", {}).items():
        times[f"parallel/{name}/serial"] = entry["serial_ms"]
        if include_multithread:
            for key, value in entry.items():
                if key.endswith("_ms") and key != "serial_ms":
                    times[f"parallel/{name}/{key[: -len('_ms')]}"] = value
    for name, entry in doc.get("strings", {}).items():
        if name == "memory_bytes":
            continue
        times[f"strings/{name}/dict"] = entry["dict_ms"]
        times[f"strings/{name}/typed"] = entry["typed_ms"]
    for name, entry in doc.get("lifecycle", {}).items():
        times[f"lifecycle/{name}/bare"] = entry["bare_ms"]
        times[f"lifecycle/{name}/armed"] = entry["armed_ms"]
    spill = doc.get("spill")
    if spill:
        times["spill/in_memory"] = spill["in_memory_ms"]
        times["spill/armed_idle"] = spill["armed_idle_ms"]
        for name, entry in spill.get("degradation", {}).items():
            times[f"spill/{name}"] = entry["time_ms"]
    serving = doc.get("serving")
    if serving:
        times["serving/cold"] = serving["cold_ms"]
        times["serving/hot"] = serving["hot_ms"]
        times["serving/p50"] = serving["p50_ms"]
        times["serving/p99"] = serving["p99_ms"]
        # Added with the wire front-end; .get() so older baselines
        # (serving sections without these keys) still compare cleanly.
        if "prepared_ms" in serving:
            times["serving/prepared"] = serving["prepared_ms"]
        wire = serving.get("wire")
        if wire:
            times["serving/wire_p50"] = wire["p50_ms"]
            times["serving/wire_p99"] = wire["p99_ms"]
    return times


def _core_counts(doc: dict) -> set:
    return {entry.get("cores") for entry in doc.get("parallel", {}).values()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True)
    parser.add_argument("--current", type=pathlib.Path, required=True)
    parser.add_argument("--threshold", type=float, default=2.0)
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    if baseline.get("scale") != current.get("scale"):
        print(
            f"bench scales differ (baseline {baseline.get('scale')} vs "
            f"current {current.get('scale')}): skipping regression gate"
        )
        return 0

    # Multi-threaded wall-clock is only comparable at equal core counts
    # (p4 on a 1-core box pays pure thread overhead that a 4-core box
    # amortizes) — the same comparability rule that gates on equal scale
    # above.  serial_ms stays gated either way: it is single-threaded and
    # catches a scheduler limping on poll timeouts regardless of cores.
    base_cores, cur_cores = _core_counts(baseline), _core_counts(current)
    include_multithread = base_cores == cur_cores
    if not include_multithread:
        print(
            f"core counts differ (baseline {sorted(base_cores)} vs current "
            f"{sorted(cur_cores)}): skipping multi-threaded parallel/* comparisons"
        )
    base_times = _tracked_times(baseline, include_multithread)
    cur_times = _tracked_times(current, include_multithread)
    ratios = {
        name: cur_ms / max(base_times[name], 1e-9)
        for name, cur_ms in cur_times.items()
        if name in base_times
    }
    median = statistics.median(ratios.values()) if ratios else 1.0
    print(f"median ratio vs baseline: {median:.2f}x (machine-speed normalizer)")
    regressions: list[str] = []
    # The global gate is twice as wide as the per-scenario one: runner
    # classes legitimately differ by ~2x in single-thread speed, and the
    # normalized per-scenario checks below are the primary regression
    # signal — the median gate only catches whole-suite blowups.
    if median > 2 * args.threshold:
        regressions.append(
            f"median ratio {median:.2f}x > {2 * args.threshold:.2f}x "
            "(global regression, or a pathologically slow runner)"
        )
    for name, cur_ms in sorted(cur_times.items()):
        base_ms = base_times.get(name)
        if base_ms is None:
            print(f"  new scenario (no baseline): {name} = {cur_ms:.3f} ms")
            continue
        normalized = ratios[name] / max(median, 1e-9)
        marker = "REGRESSED" if normalized > args.threshold else "ok"
        print(
            f"  {name}: {base_ms:.3f} ms -> {cur_ms:.3f} ms "
            f"({ratios[name]:.2f}x raw, {normalized:.2f}x normalized) {marker}"
        )
        if normalized > args.threshold:
            regressions.append(
                f"{name}: {normalized:.2f}x normalized > {args.threshold:.2f}x"
            )
    if regressions:
        print("bench regression gate FAILED:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"bench regression gate ok ({len(cur_times)} scenarios)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
