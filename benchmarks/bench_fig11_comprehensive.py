"""Fig 11 — the comprehensive comparison: speedup vs DuckDB of RelGo,
Umbra plans, GRainDB and Kùzu on (a) the 18 LDBC IC queries and (b) the 33
JOB queries.

Paper headlines reproduced here (as geometric means):
  LDBC100: RelGo 21.9x over DuckDB, 5.4x over GRainDB, 49.9x over Umbra,
           188.7x over Kùzu (some Kùzu entries OOM);
  JOB:     RelGo 8.2x over DuckDB, 4.0x over GRainDB, 1.7x over Umbra,
           136.1x over Kùzu.
Absolute ratios differ at laptop scale; the *ordering* of systems and the
cyclic-query advantage (IC7) are the reproduced shape.
"""

from __future__ import annotations

from benchmarks.conftest import MEMORY_BUDGET_ROWS, save_report
from repro.bench.reporting import average_speedup, speedup_table
from repro.bench.runner import by_cell, run_grid
from repro.systems import standard_systems
from repro.workloads.job import job_queries
from repro.workloads.ldbc import ic_queries

SYSTEMS = ["relgo", "umbra", "graindb", "kuzu"]


def _run(catalog, graph, queries, repetitions=1):
    systems = standard_systems(
        catalog, graph, names=["duckdb"] + SYSTEMS,
        memory_budget_rows=MEMORY_BUDGET_ROWS,
    )
    return run_grid(systems, queries, repetitions=repetitions)


def test_fig11a_ldbc(benchmark, ldbc100):
    queries = ic_queries()
    measurements = benchmark.pedantic(
        lambda: _run(ldbc100, "snb", queries), rounds=1, iterations=1
    )
    table = speedup_table(
        measurements,
        systems=SYSTEMS,
        queries=list(queries),
        baseline="duckdb",
        title="Fig 11a — speedup vs DuckDB on LDBC100 (IC queries)",
    )
    summary = [table, ""]
    for system, paper in (("relgo", 21.9), ("graindb", None), ("umbra", None), ("kuzu", None)):
        s = average_speedup(measurements, system, "duckdb")
        note = f" (paper: {paper}x)" if paper else ""
        summary.append(f"{system} avg speedup vs duckdb: {s:.2f}x{note}")
    vs_graindb = average_speedup(measurements, "relgo", "graindb")
    vs_umbra = average_speedup(measurements, "relgo", "umbra")
    vs_kuzu = average_speedup(measurements, "relgo", "kuzu")
    summary.append(f"relgo vs graindb: {vs_graindb:.2f}x (paper: 5.4x)")
    summary.append(f"relgo vs umbra:   {vs_umbra:.2f}x (paper: 49.9x)")
    summary.append(f"relgo vs kuzu:    {vs_kuzu:.2f}x (paper: 188.7x)")
    save_report("fig11a_comprehensive_ldbc", "\n".join(summary))
    relgo = average_speedup(measurements, "relgo", "duckdb")
    graindb = average_speedup(measurements, "graindb", "duckdb")
    # The paper's ordering: RelGo > GRainDB > DuckDB(=1).
    assert relgo > graindb > 1.0
    # Cyclic IC7 is where RelGo shines the most vs DuckDB.
    cells = by_cell(measurements)
    ic7_ratio = cells[("duckdb", "IC7")].total_time / cells[("relgo", "IC7")].total_time
    assert ic7_ratio > relgo / 4


def test_fig11b_job(benchmark, imdb):
    queries = job_queries()
    measurements = benchmark.pedantic(
        lambda: _run(imdb, "imdb", queries), rounds=1, iterations=1
    )
    table = speedup_table(
        measurements,
        systems=SYSTEMS,
        queries=list(queries),
        baseline="duckdb",
        title="Fig 11b — speedup vs DuckDB on IMDB (JOB queries)",
    )
    summary = [table, ""]
    relgo = average_speedup(measurements, "relgo", "duckdb")
    graindb = average_speedup(measurements, "graindb", "duckdb")
    summary.append(f"relgo avg speedup vs duckdb:   {relgo:.2f}x (paper: 8.2x)")
    summary.append(f"graindb avg speedup vs duckdb: {graindb:.2f}x")
    summary.append(
        f"relgo vs graindb: {average_speedup(measurements, 'relgo', 'graindb'):.2f}x "
        "(paper: 4.0x)"
    )
    summary.append(
        f"relgo vs umbra:   {average_speedup(measurements, 'relgo', 'umbra'):.2f}x "
        "(paper: 1.7x)"
    )
    summary.append(
        f"relgo vs kuzu:    {average_speedup(measurements, 'relgo', 'kuzu'):.2f}x "
        "(paper: 136.1x)"
    )
    save_report("fig11b_comprehensive_job", "\n".join(summary))
    assert relgo > 1.0
    assert relgo > graindb
