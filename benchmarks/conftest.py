"""Shared benchmark fixtures: the scaled-down datasets of Sec 5.1.

The paper's LDBC10 / LDBC30 / LDBC100 and the IMDB dump are shrunk to
laptop-Python scale (DESIGN.md documents the substitution); relative system
behaviour — who wins, by what factor, where OOM/OT appear — is what the
benches reproduce, not absolute milliseconds.

Figure outputs are both printed and written to ``results/<figure>.txt``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.graph.index import build_graph_index
from repro.workloads.job import JobParams, generate_imdb
from repro.workloads.ldbc import LdbcParams, generate_ldbc

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

# The executor's stand-in for the paper's 256 GB RAM limit.
MEMORY_BUDGET_ROWS = 2_000_000
# The stand-in for the paper's 10-minute optimizer timeout (Calcite OT).
OPTIMIZER_TIMEOUT_S = 5.0


def _with_index(catalog, mapping):
    catalog.register_graph_index(build_graph_index(mapping))
    return catalog


def bench_scale(default: float = 0.6) -> float:
    """Scale factor for the executor benches; ``BENCH_SCALE`` overrides.

    CI's benchmark smoke step sets a tiny factor so the harness runs in
    seconds; tracked numbers are recorded at the default.
    """
    return float(os.environ.get("BENCH_SCALE", default))


@pytest.fixture(scope="session")
def ldbc10():
    """The LDBC10 stand-in (small)."""
    catalog, mapping = generate_ldbc(LdbcParams.scaled(bench_scale(), seed=7))
    return _with_index(catalog, mapping)


@pytest.fixture(scope="session")
def ldbc30():
    """The LDBC30 stand-in (medium)."""
    catalog, mapping = generate_ldbc(LdbcParams.scaled(1.2, seed=7))
    return _with_index(catalog, mapping)


@pytest.fixture(scope="session")
def ldbc100():
    """The LDBC100 stand-in (large)."""
    catalog, mapping = generate_ldbc(LdbcParams.scaled(2.2, seed=7))
    return _with_index(catalog, mapping)


@pytest.fixture(scope="session")
def imdb():
    """The IMDB stand-in for the JOB benchmark."""
    catalog, mapping = generate_imdb(JobParams.scaled(1.0, seed=11))
    return _with_index(catalog, mapping)


def save_report(figure: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{figure}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
