"""Fig 10 — join-order quality on JOB1..10: RelGo, GRainDB, RelGoHash, DuckDB.

RelGoHash uses RelGo's graph-aware join orders but executes with hash joins
only (no graph index).  Paper: RelGo beats GRainDB 1.4-7.5x (avg 4.1x), and
RelGoHash is at least as good as DuckDB (avg 1.6x) — i.e. the join *order*
itself carries value independent of the index.
"""

from __future__ import annotations

from benchmarks.conftest import MEMORY_BUDGET_ROWS, save_report
from repro.bench.reporting import average_speedup, format_table
from repro.bench.runner import run_grid
from repro.systems import standard_systems
from repro.workloads.job import job_queries

QUERIES = [f"JOB{i}" for i in range(1, 11)]
SYSTEMS = ["relgo", "graindb", "relgo_hash", "duckdb"]


def _run(catalog):
    systems = standard_systems(
        catalog, "imdb", names=SYSTEMS, memory_budget_rows=MEMORY_BUDGET_ROWS
    )
    return run_grid(systems, job_queries(QUERIES), repetitions=3)


def test_fig10_join_order(benchmark, imdb):
    measurements = benchmark.pedantic(lambda: _run(imdb), rounds=1, iterations=1)
    table = format_table(
        measurements,
        systems=SYSTEMS,
        queries=QUERIES,
        component="execution",
        title="Fig 10 — execution time on JOB1..10",
    )
    relgo_vs_graindb = average_speedup(
        measurements, "relgo", "graindb", component="execution"
    )
    hash_vs_duckdb = average_speedup(
        measurements, "relgo_hash", "duckdb", component="execution"
    )
    text = (
        table
        + f"\nRelGo vs GRainDB (exec): {relgo_vs_graindb:.2f}x (paper avg: 4.1x)"
        + f"\nRelGoHash vs DuckDB (exec): {hash_vs_duckdb:.2f}x (paper avg: 1.6x)"
    )
    save_report("fig10_join_order", text)
    assert relgo_vs_graindb > 1.0
    assert hash_vs_duckdb > 0.9  # at least as good as DuckDB
