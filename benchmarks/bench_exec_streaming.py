"""Executor microbenchmark: batched streaming engine vs full materialization.

Tracks executor throughput over time (``BENCH_exec.json`` at the repo root).
The "before" engine is reconstructed by wrapping every operator of the same
physical plan in a :class:`MaterializeOp` barrier — exactly the
materialize-everything execution profile the engine had before it streamed —
so the two measurements differ only in pipeline semantics:

* a deep relational pipeline (scan -> filter -> join -> aggregate);
* an ``ORDER BY ... LIMIT`` query over the LDBC workload (IC2), where
  streaming additionally swaps the full sort for a TopK.
"""

from __future__ import annotations

import json
import pathlib
import time

from benchmarks.conftest import RESULTS_DIR, save_report
from repro.core.sqlpgq import parse_and_bind
from repro.exec import execute_plan, materialize_plan
from repro.systems import make_system
from repro.workloads.ldbc import ic_queries

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_exec.json"

PIPELINE_SQL = """
SELECT g.fn AS fn, COUNT(*) AS cnt FROM GRAPH_TABLE (snb
  MATCH (p:person)-[:knows]->(f:person)<-[:has_creator]-(m:post)
  COLUMNS (f.first_name AS fn)) g
GROUP BY g.fn
"""

TOPK_SQL_NAME = "IC2"  # MATCH ... ORDER BY cdate DESC LIMIT 20


def _measure(catalog, sql: str, repetitions: int = 3) -> dict:
    """Run one query streaming and fully materialized; report medians."""
    system = make_system("relgo", catalog, "snb")
    query = parse_and_bind(sql, catalog)

    def run(materialized: bool) -> dict:
        times, result = [], None
        for _ in range(repetitions):
            optimized = system.optimize(query)
            plan = (
                materialize_plan(optimized.physical)
                if materialized
                else optimized.physical
            )
            started = time.perf_counter()
            result = execute_plan(plan)
            times.append(time.perf_counter() - started)
        assert result is not None
        return {
            "time_ms": sorted(times)[len(times) // 2] * 1000,
            "rows_produced": result.rows_produced,
            "peak_buffered_rows": result.peak_buffered_rows,
            "result_rows": len(result),
        }

    streaming = run(materialized=False)
    materialized = run(materialized=True)
    return {
        "streaming": streaming,
        "materialized": materialized,
        "speedup": materialized["time_ms"] / max(streaming["time_ms"], 1e-9),
        "rows_produced_ratio": (
            streaming["rows_produced"] / max(materialized["rows_produced"], 1)
        ),
    }


def test_bench_exec_streaming(benchmark, ldbc10):
    def run():
        return {
            "deep_pipeline": _measure(ldbc10, PIPELINE_SQL),
            "orderby_limit": _measure(ldbc10, ic_queries()[TOPK_SQL_NAME]),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    doc = {
        "benchmark": "exec_streaming",
        "dataset": "ldbc10",
        "queries": results,
    }
    OUTPUT.write_text(json.dumps(doc, indent=2) + "\n")
    lines = ["Executor streaming vs materialized (LDBC10)", "=" * 50]
    for name, r in results.items():
        lines.append(
            f"{name}: streaming {r['streaming']['time_ms']:.1f} ms "
            f"(peak buffer {r['streaming']['peak_buffered_rows']} rows) vs "
            f"materialized {r['materialized']['time_ms']:.1f} ms "
            f"(peak buffer {r['materialized']['peak_buffered_rows']} rows) "
            f"-> {r['speedup']:.2f}x"
        )
    save_report("exec_streaming", "\n".join(lines))
    # Streaming must never do more per-operator work, and the LIMIT-bearing
    # query must do strictly less.
    for r in results.values():
        assert r["rows_produced_ratio"] <= 1.0
        assert (
            r["streaming"]["peak_buffered_rows"]
            <= r["materialized"]["peak_buffered_rows"]
        )
    assert results["orderby_limit"]["rows_produced_ratio"] < 1.0
