"""Executor microbenchmark: columnar vs row vs full materialization.

Tracks executor throughput over time (``BENCH_exec.json`` at the repo
root).  Each query runs through three execution profiles of the *same*
physical plan:

* **columnar** — the vectorized runtime (struct-of-arrays batches,
  selection vectors, column-at-a-time kernels over typed storage vector
  views); the engine default;
* **row** — the legacy row-tuple batch protocol (the PR-1 engine), kept as
  the baseline the columnar speedups are measured against;
* **materialized** — every operator wrapped in a :class:`MaterializeOp`
  barrier, reconstructing the pre-streaming materialize-everything engine.

Queries cover the hot-loop spectrum: a deep relational pipeline
(scan -> expand -> join -> aggregate), an ``ORDER BY ... LIMIT`` TopK
query (IC2), a filter-heavy scan (selection-vector refinement), and a
high-fan-out two-hop expansion (adaptive chunk sizing).

Per-query times are the **minimum** over ``REPETITIONS`` runs — the robust
estimator for sub-millisecond measurements on shared runners (scheduler
noise only ever adds time).  ``PR2_COLUMNAR_MS`` records the PR-2 runtime
(commit f1653ee, before typed array-backed storage) **re-measured on the
same machine with this same estimator at the default scale**, so
``speedup_vs_pr2_columnar`` is a like-for-like ratio; it is only emitted
when the run uses the default scale (CI's tiny-scale smoke skips it).

A **parallel** section sweeps three scenarios (``parallel_scan``,
``parallel_expand``, ``parallel_groupby``) across morsel-driven
parallelism 1/2/4 on the same plans: parallelism 1 executes the unchanged
serial engine (the PR-4 baseline), so the recorded speedups are
like-for-like; every level must return byte-identical canonical rows and
``rows_produced``.

A **lifecycle** section measures the query-lifecycle machinery armed
(query deadline + never-firing fault schedule + bounded memory governor)
against the bare default on the same plans — results must stay
byte-identical, and the recorded overhead ratio is the price of arming
every cooperative check at every batch boundary.

A **strings** section measures the dictionary-encoded string backend (the
engine default since this PR) against the ``REPRO_STORAGE=typed`` opt-out
— the PR-5 engine, re-run live in the same process with the same plans,
data and min-over-repetitions estimator, so ``dict_speedup`` is a
like-for-like ratio — across a string-equality filter, a string-keyed
hash join and a string-keyed aggregation, asserting byte-identical
results and reporting per-column resident bytes for both backends.

Alongside the query profiles, a storage microbench section tracks the
typed-storage substrate itself: bulk-load throughput (``Table.extend``
into ``array.array`` vs plain-list columns), pk-index build + lookup, and
the same filter-scan query executed against dict / typed-numpy /
typed-no-numpy / list-backed catalogs.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from benchmarks.conftest import RESULTS_DIR, bench_scale, save_report
from repro.core.sqlpgq import parse_and_bind
from repro.exec import execute_plan, materialize_plan, set_numpy_enabled
from repro.graph.index import build_graph_index
from repro.relational.column import set_storage_backend
from repro.relational.expr import and_, col, eq, lit, ne
from repro.relational.logical import AggregateSpec
from repro.relational.physical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    HashJoin,
    SeqScan,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.systems import make_system
from repro.workloads.ldbc import LdbcParams, generate_ldbc
from repro.workloads.ldbc import ic_queries

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_exec.json"

REPETITIONS = 25

#: The scale the PR2/PR3 baselines were measured at; speedups vs them are
#: only comparable (and only reported) at this scale.
DEFAULT_SCALE = 0.6

# Columnar times of the PR-2 runtime (commit f1653ee), re-measured on the
# tracked runner with this same min-over-REPETITIONS estimator at
# DEFAULT_SCALE; the tracked acceptance bar for this engine is >= 2x on
# filter_scan and deep_pipeline.
PR2_COLUMNAR_MS = {
    "deep_pipeline": 1.5263,
    "orderby_limit": 0.5023,
    "filter_scan": 0.1142,
    "fanout_expand": 5.6390,
}

# Columnar times of the PR-3 runtime (commit 3e90deb, per-row dict
# aggregation/dedup), measured on the tracked runner with the identical
# scenario builder and min-over-REPETITIONS estimator at DEFAULT_SCALE.
# Note groupby_heavy's PR-3 result was also *wrong*: NaN keys opened one
# group per NaN row (10922 output rows instead of 21), so part of the
# speedup is the NaN-canonical grouping fix shrinking the group state.
PR3_COLUMNAR_MS = {
    "groupby_heavy": 147.4216,
    "groupby_highcard": 60.9123,
    "distinct_heavy": 43.9572,
}

PIPELINE_SQL = """
SELECT g.fn AS fn, COUNT(*) AS cnt FROM GRAPH_TABLE (snb
  MATCH (p:person)-[:knows]->(f:person)<-[:has_creator]-(m:post)
  COLUMNS (f.first_name AS fn)) g
GROUP BY g.fn
"""

# Filter-heavy scan: two pushed-down conjuncts plus an outer residual
# filter — all selection-vector refinement on the columnar path.
FILTER_SCAN_SQL = """
SELECT g.content AS content FROM GRAPH_TABLE (snb
  MATCH (m:post)
  WHERE m.creation_date <= '2024-06-01' AND m.length > 40
  COLUMNS (m.content AS content, m.length AS len)) g
WHERE g.len < 190
"""

# High-fan-out expansion: two knows-hops multiply rows before aggregation,
# exercising the adaptive expansion chunk sizing.
FANOUT_SQL = """
SELECT g.a AS a, COUNT(*) AS paths FROM GRAPH_TABLE (snb
  MATCH (p0:person)-[:knows]->(p1:person)-[:knows]->(p2:person)
  COLUMNS (p0.first_name AS a)) g
GROUP BY g.a
"""

TOPK_SQL_NAME = "IC2"  # MATCH ... ORDER BY cdate DESC LIMIT 20


def _measure(catalog, sql: str, repetitions: int = REPETITIONS) -> dict:
    """Run one query in all three profiles; report per-profile minima."""
    system = make_system("relgo", catalog, "snb")
    query = parse_and_bind(sql, catalog)

    def run(columnar: bool, materialized: bool = False) -> dict:
        # Optimize once, execute repeatedly: this bench tracks *executor*
        # throughput, so repetitions rerun the same physical plan (plans
        # are stateless across executions — the parity suite relies on the
        # same property).
        times, result = [], None
        optimized = system.optimize(query)
        plan = (
            materialize_plan(optimized.physical)
            if materialized
            else optimized.physical
        )
        for _ in range(repetitions):
            started = time.perf_counter()
            result = execute_plan(plan, columnar=columnar)
            times.append(time.perf_counter() - started)
        assert result is not None
        return {
            "time_ms": min(times) * 1000,
            "rows_produced": result.rows_produced,
            "peak_buffered_rows": result.peak_buffered_rows,
            "result_rows": len(result),
        }

    columnar = run(columnar=True)
    row = run(columnar=False)
    materialized = run(columnar=False, materialized=True)
    return {
        "columnar": columnar,
        "row": row,
        "materialized": materialized,
        "columnar_speedup": row["time_ms"] / max(columnar["time_ms"], 1e-9),
        "streaming_speedup": materialized["time_ms"] / max(row["time_ms"], 1e-9),
        "rows_produced_ratio": (
            row["rows_produced"] / max(materialized["rows_produced"], 1)
        ),
    }


# --------------------------------------------------------------------- #
# grouped aggregation / distinct scenario (NULL/NaN-bearing, multi-key)
# --------------------------------------------------------------------- #

REGIONS = ["apac", "emea", "amer", "anz", "mena", "nordics", "latam", "ssa"]
NAN = float("nan")


def _groupby_table(scale: float) -> Table:
    """The ``gb_events`` table: every grouping shape the engine must cover.

    ``region`` is a low-cardinality string key with NULLs (promoted list
    storage), ``bucket`` a high-cardinality int key (typed storage),
    ``fkey`` a low-cardinality float key with NaNs (the canonicalization
    stress), ``amount`` a clean float measure, and ``score`` a NULL-bearing
    float measure (NULL-skipping aggregates).
    """
    n = max(4_000, int(200_000 * scale))
    high_card = max(512, n // 8)
    schema = TableSchema(
        "gb_events",
        [
            Column("id", DataType.INT),
            Column("region", DataType.STRING),
            Column("bucket", DataType.INT),
            Column("fkey", DataType.FLOAT),
            Column("amount", DataType.FLOAT),
            Column("score", DataType.FLOAT),
        ],
        primary_key="id",
    )
    table = Table(schema)
    table.extend_columns(
        [
            list(range(n)),
            [
                None if i % 13 == 0 else REGIONS[(i * 5) % len(REGIONS)]
                for i in range(n)
            ],
            [(i * 7919) % high_card for i in range(n)],
            [NAN if i % 11 == 0 else float((i * 3) % 4) + 0.5 for i in range(n)],
            [float((i * 17) % 1000) / 8.0 for i in range(n)],
            [None if i % 7 == 0 else float(i % 100) / 9.0 for i in range(n)],
        ],
        validate=False,
    )
    return table


def _groupby_plans(table: Table) -> dict:
    aggs = [
        AggregateSpec("COUNT", None, "cnt"),
        AggregateSpec("SUM", col("t.amount"), "total"),
        AggregateSpec("MIN", col("t.amount"), "lo"),
        AggregateSpec("MAX", col("t.amount"), "hi"),
        AggregateSpec("AVG", col("t.score"), "avg_score"),
    ]
    return {
        # Multi-key grouping over NULL- and NaN-bearing keys with the full
        # aggregate set — the general-aggregation path.
        "groupby_heavy": AggregateOp(
            SeqScan(table, "t"),
            [(col("t.region"), "region"), (col("t.fkey"), "fkey")],
            aggs,
        ),
        # Single high-cardinality typed key (cardinality ~ rows/8): the
        # typed searchsorted/scatter global state.
        "groupby_highcard": AggregateOp(
            SeqScan(table, "t"),
            [(col("t.bucket"), "bucket")],
            [
                AggregateSpec("COUNT", None, "cnt"),
                AggregateSpec("SUM", col("t.amount"), "total"),
            ],
        ),
        # Near-unique DISTINCT over mixed storage with NaN keys — the
        # canonical-dedup worst case (adaptive row-walk fallback).
        "distinct_heavy": DistinctOp(
            SeqScan(table, "t", projected=["region", "bucket", "fkey"]),
        ),
    }


def _measure_plan(plan, repetitions: int = REPETITIONS) -> dict:
    """The three execution profiles of one hand-built physical plan."""

    def run(columnar: bool, materialized: bool = False) -> dict:
        times, result = [], None
        p = materialize_plan(plan) if materialized else plan
        for _ in range(repetitions):
            started = time.perf_counter()
            result = execute_plan(p, columnar=columnar)
            times.append(time.perf_counter() - started)
        assert result is not None
        return {
            "time_ms": min(times) * 1000,
            "rows_produced": result.rows_produced,
            "peak_buffered_rows": result.peak_buffered_rows,
            "result_rows": len(result),
        }

    columnar = run(columnar=True)
    row = run(columnar=False)
    materialized = run(columnar=False, materialized=True)
    return {
        "columnar": columnar,
        "row": row,
        "materialized": materialized,
        "columnar_speedup": row["time_ms"] / max(columnar["time_ms"], 1e-9),
        "streaming_speedup": materialized["time_ms"] / max(row["time_ms"], 1e-9),
        "rows_produced_ratio": (
            row["rows_produced"] / max(materialized["rows_produced"], 1)
        ),
    }


def _measure_groupby(scale: float) -> dict:
    table = _groupby_table(scale)
    return {name: _measure_plan(plan) for name, plan in _groupby_plans(table).items()}


def test_bench_groupby_smoke():
    """Standalone smoke for the grouping engine (CI's numpy and list legs).

    Runs only the gb_events scenario — no LDBC fixtures, no JSON output —
    and pins the semantics alongside the perf sanity bounds: a single NaN
    group per (region, NaN) combination, identical results and buffered
    peaks across engines.
    """
    results = _measure_groupby(min(bench_scale(), 0.25))
    for name, r in results.items():
        assert r["columnar"]["result_rows"] == r["row"]["result_rows"], name
        assert r["columnar"]["rows_produced"] == r["row"]["rows_produced"], name
        assert (
            r["columnar"]["peak_buffered_rows"] <= r["row"]["peak_buffered_rows"]
        ), name
        assert r["columnar_speedup"] > 0.5, name
    # NaN keys collapse into one group per region: without canonicalization
    # groupby_heavy would emit one row per NaN input (~rows/11).
    assert results["groupby_heavy"]["columnar"]["result_rows"] <= 64


# --------------------------------------------------------------------- #
# morsel-driven parallel execution scenarios
# --------------------------------------------------------------------- #

#: Degrees of parallelism the parallel scenarios sweep.  ``serial_ms`` (at
#: parallelism 1) is the like-for-like PR-4 serial engine baseline: the
#: serial execution path is unchanged by the scheduler (``parallelism=1``
#: executes the original plan tree), so the p2/p4 speedups are measured
#: against the engine the previous PR shipped, on the same machine, with
#: the same min-over-repetitions estimator.
PARALLEL_LEVELS = (1, 2, 4)


def _nan_safe_rows(rows: list) -> list:
    """Rows with NaN normalized so byte-identical results compare equal."""
    return [tuple("NaN" if v != v else v for v in row) for row in rows]


def _measure_parallel_plan(plan, repetitions: int = REPETITIONS) -> dict:
    """One plan swept across :data:`PARALLEL_LEVELS`.

    Results must be byte-identical across every level (canonical row order
    — the engine's own cross-batch-size guarantee) with equal
    ``rows_produced`` (the exchange is transport and never emits); the
    sweep records per-level minima and speedups vs the serial baseline.
    """
    times: dict[int, float] = {}
    reference = None
    result_rows = 0
    for level in PARALLEL_LEVELS:
        best, result = float("inf"), None
        for _ in range(repetitions):
            started = time.perf_counter()
            result = execute_plan(plan, columnar=True, parallelism=level)
            best = min(best, time.perf_counter() - started)
        assert result is not None
        observed = (_nan_safe_rows(result.sorted_rows()), result.rows_produced)
        if reference is None:
            reference = observed
            result_rows = len(result)
        else:
            assert observed[0] == reference[0], f"parallelism={level} rows diverge"
            assert observed[1] == reference[1], f"parallelism={level} rows_produced"
        times[level] = best * 1000
    serial_ms = times[PARALLEL_LEVELS[0]]
    out = {"serial_ms": serial_ms}
    for level in PARALLEL_LEVELS[1:]:
        out[f"p{level}_ms"] = times[level]
        out[f"speedup_p{level}"] = serial_ms / max(times[level], 1e-9)
    out["result_rows"] = result_rows
    out["cores"] = os.cpu_count()
    return out


def _parallel_plans(catalog, scale: float) -> dict:
    """The three parallel scenarios: scan-, expand- and groupby-bound."""
    system = make_system("relgo", catalog, "snb")
    gb_table = _groupby_table(scale)
    return {
        # Selection-heavy scan: pushed-down numpy mask evaluation dominates
        # — the morsel chain is scan + selection refinement per worker.
        "parallel_scan": system.optimize(
            parse_and_bind(FILTER_SCAN_SQL, catalog)
        ).physical,
        # Two knows-hops: per-worker CSR repeat/cumsum/fancy-index
        # expansion feeding a per-worker partial aggregation fold.
        "parallel_expand": system.optimize(
            parse_and_bind(FANOUT_SQL, catalog)
        ).physical,
        # High-cardinality grouping: per-worker GroupedAggregation partials
        # (typed array state) merged in morsel order.
        "parallel_groupby": AggregateOp(
            SeqScan(gb_table, "t"),
            [(col("t.bucket"), "bucket")],
            [
                AggregateSpec("COUNT", None, "cnt"),
                AggregateSpec("SUM", col("t.amount"), "total"),
            ],
        ),
    }


def _measure_parallel(
    catalog, scale: float, repetitions: int = REPETITIONS
) -> dict:
    return {
        name: _measure_parallel_plan(plan, repetitions)
        for name, plan in _parallel_plans(catalog, scale).items()
    }


def test_bench_parallel_smoke():
    """Standalone parallel-vs-serial smoke (CI's tier1-parallel legs).

    Builds its own tiny LDBC catalog, sweeps every parallel scenario
    across parallelism 1/2/4, and pins the byte-for-byte contract: the
    sweep itself asserts identical canonical rows and ``rows_produced``
    at every level.  Wall-clock speedup is *recorded*, not asserted — CI
    runners (and this repo's 1-core containers) cannot promise cores —
    except for a very loose no-pathology bound.
    """
    scale = min(bench_scale(), 0.25)
    catalog, mapping = generate_ldbc(LdbcParams.scaled(scale, seed=7))
    catalog.register_graph_index(build_graph_index(mapping))
    results = _measure_parallel(catalog, scale, repetitions=5)
    top = f"speedup_p{PARALLEL_LEVELS[-1]}"
    for name, r in results.items():
        # Thread + exchange overhead must never be catastrophic, even on a
        # single core (recorded speedups on a 4-core runner are the real
        # acceptance signal; see BENCH_exec.json).
        assert r[top] > 0.2, (name, r)
        assert r["result_rows"] > 0 or name == "parallel_scan", name


# --------------------------------------------------------------------- #
# query lifecycle overhead (armed deadline + faults + governor vs bare)
# --------------------------------------------------------------------- #

#: A firing schedule no realistic run ever reaches: arms every lifecycle
#: hook (the CI chaos leg's configuration) without changing behavior.
NEVER_FIRES = "kind=error,after=1000000000"


def _measure_lifecycle(catalog, scale: float, repetitions: int = REPETITIONS) -> dict:
    """Armed-vs-unarmed lifecycle cost on the executor-bound queries.

    The **bare** leg is the default configuration: no deadline, no fault
    schedule, unbounded governor — the serial hot path pays one ``is
    None`` test per batch boundary.  The **armed** leg runs the same plans
    with a (generous) query deadline, an armed-but-never-firing fault
    schedule and a bounded memory governor, i.e. every lifecycle check
    live at every batch boundary.  Results must stay byte-identical; the
    recorded overhead ratio is the price of turning the machinery on.
    """
    from repro.exec import MemoryGovernor

    system = make_system("relgo", catalog, "snb")
    plans = {
        "deep_pipeline": system.optimize(
            parse_and_bind(PIPELINE_SQL, catalog)
        ).physical,
        "filter_scan": system.optimize(
            parse_and_bind(FILTER_SCAN_SQL, catalog)
        ).physical,
    }
    governor = MemoryGovernor(total_rows=1 << 40)
    out: dict[str, dict] = {}
    for name, plan in plans.items():
        def run(armed: bool):
            times, result = [], None
            for _ in range(repetitions):
                started = time.perf_counter()
                if armed:
                    result = execute_plan(
                        plan,
                        columnar=True,
                        timeout=300.0,
                        faults=NEVER_FIRES,
                        governor=governor,
                    )
                else:
                    result = execute_plan(plan, columnar=True)
                times.append(time.perf_counter() - started)
            assert result is not None
            return min(times) * 1000, result

        bare_ms, bare = run(armed=False)
        armed_ms, armed = run(armed=True)
        assert _nan_safe_rows(armed.sorted_rows()) == _nan_safe_rows(
            bare.sorted_rows()
        ), name
        assert armed.rows_produced == bare.rows_produced, name
        assert armed.peak_buffered_rows == bare.peak_buffered_rows, name
        out[name] = {
            "bare_ms": bare_ms,
            "armed_ms": armed_ms,
            "armed_overhead": armed_ms / max(bare_ms, 1e-9),
        }
    assert governor.active_leases == 0 and governor.leased_rows == 0
    return out


def test_bench_lifecycle_smoke():
    """Standalone lifecycle-overhead smoke: armed deadline/fault/governor
    legs must return byte-identical results (asserted inside the sweep)
    and cost no more than a loose no-pathology factor at smoke scale."""
    scale = min(bench_scale(), 0.25)
    catalog, mapping = generate_ldbc(LdbcParams.scaled(scale, seed=7))
    catalog.register_graph_index(build_graph_index(mapping))
    results = _measure_lifecycle(catalog, scale, repetitions=5)
    for name, r in results.items():
        # Cooperative checks are one attribute test + clock read per batch
        # boundary; anything beyond 2x on a min-over-reps estimate means a
        # lock or syscall crept onto the hot path.
        assert r["armed_overhead"] < 2.0, (name, r)


# --------------------------------------------------------------------- #
# spill-to-disk degradation curve (out-of-core vs in-memory)
# --------------------------------------------------------------------- #

#: Working-set fractions the degradation curve sweeps: 1x is the query's
#: own in-memory peak (spilling barely engages), 0.25x is deep past the
#: memory cliff where an unspilled run with that budget would OOM.
SPILL_FRACTIONS = (1.0, 0.5, 0.25)


def _measure_spill(scale: float, repetitions: int = REPETITIONS) -> dict:
    """Graceful-degradation curve for out-of-core execution.

    The scenario is breaker-state-bound on purpose: a high-cardinality
    aggregation (state ~ rows/8 groups) under a full ORDER BY of its
    output, so the working set is aggregation state + sort buffer +
    RESULT accumulation — the state the spill machinery moves to disk.

    The **in-memory** leg is the default (disarmed) configuration.  The
    **armed-idle** leg arms a spill threshold far above the query's
    working set — the price of the one ``spill_limit() is not None`` test
    per pipeline breaker, gated < 1.1x at the tracked scale.  The
    **degradation** sweep then caps the working set at 1x / 0.5x / 0.25x
    of the query's measured in-memory peak: every run must return the
    same row set while keeping its tracked peak at or under the cap, and
    the recorded slowdown is the price of going out-of-core.
    """
    from repro.exec import ExecutionContext, SpillConfig, SpillManager
    from repro.relational.physical import SortOp

    table = _groupby_table(scale)
    plan = SortOp(
        AggregateOp(
            SeqScan(table, "t"),
            [(col("t.bucket"), "bucket")],
            [
                AggregateSpec("COUNT", None, "cnt"),
                AggregateSpec("SUM", col("t.amount"), "total"),
            ],
        ),
        [(col("total"), False), (col("bucket"), True)],
    )

    def run(spill) -> tuple[float, object, int, int]:
        times, result, files, written = [], None, 0, 0
        for _ in range(repetitions):
            started = time.perf_counter()
            if spill is None:
                result = execute_plan(plan, columnar=True, spill=False)
            else:
                ctx = ExecutionContext()
                manager = SpillManager(spill).bind(ctx)
                ctx.spill = manager
                try:
                    result = execute_plan(plan, columnar=True, ctx=ctx)
                finally:
                    files = manager.files_created
                    written = manager.bytes_written
                    manager.close()
            times.append(time.perf_counter() - started)
        assert result is not None
        return min(times) * 1000, result, files, written

    bare_ms, bare, _, _ = run(None)
    working_set = bare.peak_buffered_rows
    idle_ms, idle, idle_files, _ = run(SpillConfig(threshold_rows=1 << 40))
    assert idle_files == 0  # armed-idle must never touch disk
    assert _nan_safe_rows(idle.sorted_rows()) == _nan_safe_rows(bare.sorted_rows())
    out: dict = {
        "working_set_rows": working_set,
        "in_memory_ms": bare_ms,
        "armed_idle_ms": idle_ms,
        "armed_idle_overhead": idle_ms / max(bare_ms, 1e-9),
        "degradation": {},
    }
    for fraction in SPILL_FRACTIONS:
        cap = max(256, int(working_set * fraction))
        ms, result, files, written = run(SpillConfig(threshold_rows=cap))
        assert _nan_safe_rows(result.sorted_rows()) == _nan_safe_rows(
            bare.sorted_rows()
        ), fraction
        out["degradation"][f"{fraction:g}x"] = {
            "threshold_rows": cap,
            "time_ms": ms,
            "slowdown": ms / max(bare_ms, 1e-9),
            "peak_buffered_rows": result.peak_buffered_rows,
            "spill_files": files,
            "spill_bytes": written,
        }
    return out


def test_bench_spill_smoke():
    """Standalone out-of-core smoke: the degradation sweep must return the
    in-memory row set at every working-set cap (asserted inside the
    sweep), actually hit the disk past the cliff, and armed-idle must
    stay within a loose no-pathology factor at smoke scale."""
    scale = min(bench_scale(), 0.25)
    results = _measure_spill(scale, repetitions=5)
    # Arming is one attribute test per breaker; anything beyond a loose
    # noise bound on a min-over-reps estimate means work crept onto the
    # disarmed hot path.  (The tracked-scale bench gates this at 1.1x.)
    assert results["armed_idle_overhead"] < 1.5, results
    quarter = results["degradation"]["0.25x"]
    assert quarter["spill_files"] > 0, quarter  # the cliff was real
    assert quarter["peak_buffered_rows"] <= results["working_set_rows"]


# --------------------------------------------------------------------- #
# dictionary-encoded string scenarios (dict backend vs typed opt-out)
# --------------------------------------------------------------------- #

#: Storage backends the string scenarios compare: the dictionary-encoded
#: default against the ``REPRO_STORAGE=typed`` opt-out, which is exactly
#: the PR-5 engine (strings as plain lists / '<U' vector views).  The
#: typed leg re-measures that baseline live in the same process, so the
#: recorded ``dict_speedup`` is machine- and estimator-matched.
STRING_BACKENDS = ("dict", "typed")


def _string_tables(n: int) -> tuple[Table, Table]:
    """A string-dominated fact table plus a string-keyed dimension.

    ``name`` is a repetitive URL-shaped string key (cardinality ~ n/64,
    the dictionary sweet spot; the long shared prefix is what real string
    keys — URLs, paths, emails — look like, and what makes row-at-a-time
    comparisons expensive), ``tag`` a low-cardinality string attribute,
    ``v`` a small int payload.  The dimension holds a 1-in-16 sample of
    the distinct names with a group label, so the join is probe-bound
    (every fact row resolves its key; most rows miss): the scenario
    measures string-key matching, not match-output assembly."""
    card = max(512, n // 64)
    fact_schema = TableSchema(
        "str_events",
        [
            Column("id", DataType.INT),
            Column("name", DataType.STRING),
            Column("tag", DataType.STRING),
            Column("v", DataType.INT),
        ],
        primary_key="id",
    )
    fact = Table(fact_schema)
    fact.extend_columns(
        [
            list(range(n)),
            [
                f"https://example.com/profiles/user-{(i * 7919) % card}"
                for i in range(n)
            ],
            [f"app/events/category/tag-{(i * 31) % 23}" for i in range(n)],
            [(i * 13) % 1000 for i in range(n)],
        ],
        validate=False,
    )
    dim_schema = TableSchema(
        "str_names",
        [Column("name", DataType.STRING), Column("grp", DataType.STRING)],
        primary_key="name",
    )
    dim = Table(dim_schema)
    dim.extend_columns(
        [
            [
                f"https://example.com/profiles/user-{j}"
                for j in range(0, card, 16)
            ],
            [f"g{j % 8}" for j in range(0, card, 16)],
        ],
        validate=False,
    )
    return fact, dim


def _string_plans(fact: Table, dim: Table) -> dict:
    return {
        # Two string conjuncts: an equality against an interned value and
        # a low-selectivity <> — on the dict backend both compile to int
        # code compares (one dictionary lookup per literal).
        "string_filter": FilterOp(
            SeqScan(fact, "f"),
            and_(
                ne(col("f.tag"), lit("app/events/category/tag-7")),
                eq(
                    col("f.name"),
                    lit("https://example.com/profiles/user-101"),
                ),
            ),
        ),
        # String-keyed hash join with probe-side misses: build buckets and
        # probe matches resolve through per-dictionary code caches.
        "string_join": HashJoin(
            SeqScan(fact, "f", projected=["name", "v"]),
            SeqScan(dim, "d"),
            ["f.name"],
            ["d.name"],
        ),
        # String-keyed aggregation: dictionary codes are ready-made dense
        # group codes, so grouping never sorts '<U' data.
        "string_groupby": AggregateOp(
            SeqScan(fact, "f", projected=["name", "v"]),
            [(col("f.name"), "name")],
            [
                AggregateSpec("COUNT", None, "cnt"),
                AggregateSpec("SUM", col("f.v"), "total"),
            ],
        ),
    }


def _measure_string_scenarios(
    scale: float, repetitions: int = REPETITIONS
) -> dict:
    """Each scenario under both backends; byte-identical results pinned."""
    n = max(4_000, int(200_000 * scale))
    runs: dict[str, dict] = {}
    memory: dict[str, dict] = {}
    for backend in STRING_BACKENDS:
        set_storage_backend(backend)
        try:
            fact, dim = _string_tables(n)
        finally:
            set_storage_backend(None)
        memory[backend] = {
            "str_events": fact.memory_bytes(),
            "str_names": dim.memory_bytes(),
        }
        measured = {}
        for name, plan in _string_plans(fact, dim).items():
            times, result = [], None
            for _ in range(repetitions):
                started = time.perf_counter()
                result = execute_plan(plan, columnar=True)
                times.append(time.perf_counter() - started)
            assert result is not None
            measured[name] = (min(times) * 1000, result)
        runs[backend] = measured
    out: dict[str, dict] = {}
    for name, (dict_ms, dict_result) in runs["dict"].items():
        typed_ms, typed_result = runs["typed"][name]
        assert dict_result.sorted_rows() == typed_result.sorted_rows(), name
        assert dict_result.rows_produced == typed_result.rows_produced, name
        out[name] = {
            "rows": n,
            "dict_ms": dict_ms,
            "typed_ms": typed_ms,
            "result_rows": len(dict_result),
            "dict_speedup": typed_ms / max(dict_ms, 1e-9),
        }
    name_bytes = {
        backend: memory[backend]["str_events"]["name"]
        for backend in STRING_BACKENDS
    }
    out["memory_bytes"] = {
        **memory,
        "name_column_compression": name_bytes["typed"]
        / max(name_bytes["dict"], 1),
    }
    return out


def test_bench_strings_smoke():
    """Standalone dict-vs-typed smoke (CI's dict-backend leg): identical
    results are asserted inside the sweep; speedups are recorded, with
    only a loose no-pathology bound at smoke scale."""
    results = _measure_string_scenarios(min(bench_scale(), 0.25), repetitions=5)
    for name in ("string_filter", "string_join", "string_groupby"):
        assert results[name]["result_rows"] > 0, name
        assert results[name]["dict_speedup"] > 0.5, (name, results[name])
    # The dictionary must actually compress the repetitive key column.
    assert results["memory_bytes"]["name_column_compression"] > 1.5


# --------------------------------------------------------------------- #
# storage microbenches
# --------------------------------------------------------------------- #


def _bulk_rows(n: int) -> list[tuple]:
    return [
        (i, f"content {i}", 20 + (i * 13) % 180, f"{2020 + i % 5:04d}-06-15")
        for i in range(n)
    ]


def _post_schema() -> TableSchema:
    return TableSchema(
        "bench_post",
        [
            Column("id", DataType.INT),
            Column("content", DataType.STRING),
            Column("length", DataType.INT),
            Column("creation_date", DataType.DATE),
        ],
        primary_key="id",
    )


def _time_best(fn, repetitions: int = 5) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best * 1000


def _bench_bulk_load(rows: list[tuple]) -> dict:
    def load() -> Table:
        return Table(_post_schema(), rows=rows, validate=False)

    # Column-major ingestion: what a loader that accumulates columns (the
    # workload generators since this PR) actually pays — no row-tuple
    # transpose.  The transpose below is setup, not measured work.
    columns = [list(c) for c in zip(*rows)]

    def load_columns() -> Table:
        table = Table(_post_schema())
        table.extend_columns(columns, validate=False)
        return table

    set_storage_backend("typed")
    try:
        typed_ms = _time_best(load)
        typed_columns_ms = _time_best(load_columns)
    finally:
        set_storage_backend(None)
    # The default (dict) backend interns every string on ingest: a real
    # load-side cost the query-side wins pay for, tracked separately so
    # the typed-buffer numbers stay comparable across PRs.
    dict_ms = _time_best(load)
    set_storage_backend("list")
    try:
        list_ms = _time_best(load)
    finally:
        set_storage_backend(None)
    return {
        "rows": len(rows),
        "typed_ms": typed_ms,
        "typed_columns_ms": typed_columns_ms,
        "dict_ms": dict_ms,
        "list_ms": list_ms,
        "typed_speedup": list_ms / max(typed_ms, 1e-9),
        "dict_vs_list": list_ms / max(dict_ms, 1e-9),
        "columns_vs_rows": typed_ms / max(typed_columns_ms, 1e-9),
        "columns_vs_list": list_ms / max(typed_columns_ms, 1e-9),
    }


def _bench_pk_lookup(rows: list[tuple]) -> dict:
    keys = [row[0] for row in rows[:: max(1, len(rows) // 20_000)]]

    def build_and_probe(table: Table) -> int:
        table._pk_index = None  # force an index rebuild
        lookup = table.pk_lookup
        hits = 0
        for key in keys:
            if lookup(key) is not None:
                hits += 1
        return hits

    typed_table = Table(_post_schema(), rows=rows, validate=False)
    typed_ms = _time_best(lambda: build_and_probe(typed_table))
    set_storage_backend("list")
    try:
        list_table = Table(_post_schema(), rows=rows, validate=False)
    finally:
        set_storage_backend(None)
    list_ms = _time_best(lambda: build_and_probe(list_table))
    return {
        "rows": len(rows),
        "lookups": len(keys),
        "typed_ms": typed_ms,
        "list_ms": list_ms,
        "typed_speedup": list_ms / max(typed_ms, 1e-9),
    }


def _bench_storage_query(scale: float) -> dict:
    """The filter-scan query against each storage backend's own catalog."""

    backends = {"dict": "dict", "numpy": "typed", "array": "typed", "list": "list"}

    def run_mode(mode: str) -> float:
        set_numpy_enabled(mode in ("dict", "numpy"))
        set_storage_backend(backends[mode])
        try:
            catalog, mapping = generate_ldbc(LdbcParams.scaled(scale, seed=7))
            catalog.register_graph_index(build_graph_index(mapping))
            system = make_system("relgo", catalog, "snb")
            query = parse_and_bind(FILTER_SCAN_SQL, catalog)
            times = []
            for _ in range(REPETITIONS):
                optimized = system.optimize(query)
                started = time.perf_counter()
                execute_plan(optimized.physical, columnar=True)
                times.append(time.perf_counter() - started)
            return min(times) * 1000
        finally:
            set_numpy_enabled(None)
            set_storage_backend(None)

    dict_ms = run_mode("dict")
    numpy_ms = run_mode("numpy")
    array_ms = run_mode("array")
    list_ms = run_mode("list")
    return {
        "query": "filter_scan",
        "dict_ms": dict_ms,
        "numpy_ms": numpy_ms,
        "array_ms": array_ms,
        "list_ms": list_ms,
        "numpy_vs_list": list_ms / max(numpy_ms, 1e-9),
        "dict_vs_list": list_ms / max(dict_ms, 1e-9),
    }


# --------------------------------------------------------------------- #
# serving: plan cache + concurrent-session throughput
# --------------------------------------------------------------------- #

#: One parameterized shape: every execution differs only in the literal,
#: so after the first optimize the whole workload is rebind + execute.
SERVING_SQL = (
    "SELECT g.fn AS fn FROM GRAPH_TABLE (snb "
    "MATCH (p:person)-[:knows]->(f:person) "
    "WHERE p.first_name = '{v}' "
    "COLUMNS (f.first_name AS fn)) g"
)

#: The same shape with a DB-API placeholder: the prepared-statement hot
#: path binds straight into the statement-local template (no fingerprint
#: scan, no cache probe).
SERVING_SQL_PARAM = (
    "SELECT g.fn AS fn FROM GRAPH_TABLE (snb "
    "MATCH (p:person)-[:knows]->(f:person) "
    "WHERE p.first_name = ? "
    "COLUMNS (f.first_name AS fn)) g"
)

SERVING_SESSIONS = 4
SERVING_QUERIES = 50
WIRE_ROUND_TRIPS = 40


def _measure_serving(scale: float) -> dict:
    """Plan-cache speedup (cold optimize vs hot rebind) and session QPS.

    ``cold_ms`` is the full frontend per call (cache cleared each run:
    fingerprint miss -> parse -> bind -> optimize -> execute); ``hot_ms``
    is the same query text answered from the cache (fingerprint hit ->
    rebind -> execute).  Both run on a pre-warmed Database (index,
    statistics and GLogue built by ``prepare()``), so the ratio isolates
    exactly what the cache removes.  The throughput phase then runs
    ``SERVING_SESSIONS`` concurrent sessions x ``SERVING_QUERIES`` queries
    of that shape with rotating literals against the shared cache.
    """
    import threading

    from repro.serving import Database
    from repro.workloads.ldbc.generator import FIRST_NAMES

    catalog, mapping = generate_ldbc(LdbcParams.scaled(scale, seed=7))
    catalog.register_graph_index(build_graph_index(mapping))
    db = Database(catalog=catalog)
    db.warmup()

    values = list(FIRST_NAMES[:16])
    session = db.connect()
    # Result parity: the rebound plan answers exactly like a fresh parse.
    db.plan_cache.clear()
    cold_rows = session.execute(SERVING_SQL.format(v=values[0])).sorted_rows()
    hot_rows = session.execute(SERVING_SQL.format(v=values[0])).sorted_rows()
    assert cold_rows == hot_rows

    cold_times = []
    for i in range(min(REPETITIONS, 10)):
        db.plan_cache.clear()
        started = time.perf_counter()
        session.execute(SERVING_SQL.format(v=values[i % len(values)]))
        cold_times.append(time.perf_counter() - started)
    # Prepared-statement hot path: bind params straight into the cached
    # template — no fingerprint scan, no literal re-splice, no cache probe.
    # Result parity with the literal form first; then the hot and prepared
    # loops run interleaved so clock drift (turbo, throttling, GC phase)
    # hits both sides equally instead of whichever loop runs later.
    stmt = session.prepare(SERVING_SQL_PARAM)
    prepared_rows = stmt.execute([values[0]]).sorted_rows()
    assert prepared_rows == hot_rows
    hot_times = []
    prepared_times = []
    for i in range(REPETITIONS):
        v = values[i % len(values)]
        started = time.perf_counter()
        session.execute(SERVING_SQL.format(v=v))
        hot_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        stmt.execute([v])
        prepared_times.append(time.perf_counter() - started)
    stmt.close()
    session.close()
    cold_ms = min(cold_times) * 1000
    hot_ms = min(hot_times) * 1000
    prepared_ms = min(prepared_times) * 1000

    # Wire round-trip: the same hot shape through a real socket (framing +
    # JSON + scheduling on the shared pool), prepared server-side.
    from repro.serving import Client, Server

    wire_times = []
    server = Server(db)
    try:
        with Client(server.address) as wire_client:
            wire_stmt = wire_client.prepare(SERVING_SQL_PARAM)
            wire_stmt.execute([values[0]])  # warm the connection + template
            wire_start = time.perf_counter()
            for i in range(WIRE_ROUND_TRIPS):
                t0 = time.perf_counter()
                wire_stmt.execute([values[i % len(values)]])
                wire_times.append(time.perf_counter() - t0)
            wire_wall = time.perf_counter() - wire_start
            wire_stmt.close()
    finally:
        server.close()
    wire_times.sort()
    n_wire = len(wire_times)

    stats = db.plan_cache.stats
    base_hits, base_misses = stats.hits, stats.misses
    latencies: list[float] = []
    lock = threading.Lock()

    def client(worker: int) -> None:
        with db.connect() as ses:
            local = []
            for i in range(SERVING_QUERIES):
                sql = SERVING_SQL.format(v=values[(worker * 7 + i) % len(values)])
                t0 = time.perf_counter()
                ses.execute(sql)
                local.append(time.perf_counter() - t0)
            with lock:
                latencies.extend(local)

    threads = [
        threading.Thread(target=client, args=(w,)) for w in range(SERVING_SESSIONS)
    ]
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start

    latencies.sort()
    total = len(latencies)
    hits = stats.hits - base_hits
    misses = stats.misses - base_misses
    return {
        "query": "knows_1hop_param",
        "scale": scale,
        "cold_ms": cold_ms,
        "hot_ms": hot_ms,
        "plan_cache_speedup": cold_ms / max(hot_ms, 1e-9),
        "prepared_ms": prepared_ms,
        "prepared_vs_hot": hot_ms / max(prepared_ms, 1e-9),
        "wire": {
            "round_trips": n_wire,
            "p50_ms": wire_times[n_wire // 2] * 1000,
            "p99_ms": wire_times[min(n_wire - 1, int(n_wire * 0.99))] * 1000,
            "qps": n_wire / max(wire_wall, 1e-9),
        },
        "sessions": SERVING_SESSIONS,
        "queries_per_session": SERVING_QUERIES,
        "wall_ms": wall * 1000,
        "p50_ms": latencies[total // 2] * 1000,
        "p99_ms": latencies[min(total - 1, int(total * 0.99))] * 1000,
        "qps": total / max(wall, 1e-9),
        "hit_rate": hits / max(hits + misses, 1),
        "cache": stats.snapshot(),
    }


def test_bench_serving_smoke():
    """The serving section alone, at smoke scale (fast CI leg)."""
    results = _measure_serving(min(bench_scale(), 0.25))
    assert results["hit_rate"] >= 0.9, results
    assert results["plan_cache_speedup"] > 1.0, results
    assert results["qps"] > 0, results
    # Prepared execute skips even the fingerprint scan, so it should at
    # worst tie the plan-cache hot path (loose 1.5x slack for smoke noise
    # on sub-ms calls).
    assert results["prepared_ms"] <= results["hot_ms"] * 1.5, results
    assert results["wire"]["qps"] > 0, results


def test_bench_exec_streaming(benchmark, ldbc10):
    scale = bench_scale()
    bulk_rows = _bulk_rows(max(2_000, int(200_000 * scale)))

    def run():
        return {
            "queries": {
                "deep_pipeline": _measure(ldbc10, PIPELINE_SQL),
                "orderby_limit": _measure(ldbc10, ic_queries()[TOPK_SQL_NAME]),
                "filter_scan": _measure(ldbc10, FILTER_SCAN_SQL),
                "fanout_expand": _measure(ldbc10, FANOUT_SQL),
                **_measure_groupby(scale),
            },
            "parallel": _measure_parallel(ldbc10, scale),
            "lifecycle": _measure_lifecycle(ldbc10, scale),
            "spill": _measure_spill(scale),
            "strings": _measure_string_scenarios(scale),
            # The plan-cache gate tracks front-end (lex/parse/bind/optimize)
            # cost against per-query execution; at larger data scales
            # execution grows while the front-end stays fixed, so the ratio
            # dilutes with no change in the cache itself.  Pin the serving
            # section to the tracked 0.25 sub-scale (same as the smoke
            # test) so the gate measures the cache, not the dataset.
            "serving": _measure_serving(min(scale, 0.25)),
            "microbench": {
                "bulk_load": _bench_bulk_load(bulk_rows),
                "pk_lookup": _bench_pk_lookup(bulk_rows),
                "storage_query": _bench_storage_query(scale),
            },
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    results = measured["queries"]
    parallel = measured["parallel"]
    lifecycle = measured["lifecycle"]
    spill = measured["spill"]
    strings = measured["strings"]
    serving = measured["serving"]
    micro = measured["microbench"]
    for name, r in results.items():
        if scale != DEFAULT_SCALE:
            continue
        baseline = PR2_COLUMNAR_MS.get(name)
        if baseline is not None:
            r["pr2_columnar_ms"] = baseline
            r["speedup_vs_pr2_columnar"] = baseline / max(
                r["columnar"]["time_ms"], 1e-9
            )
        baseline = PR3_COLUMNAR_MS.get(name)
        if baseline is not None:
            r["pr3_columnar_ms"] = baseline
            r["speedup_vs_pr3_columnar"] = baseline / max(
                r["columnar"]["time_ms"], 1e-9
            )
    doc = {
        "benchmark": "exec_streaming",
        "dataset": "ldbc10",
        "scale": scale,
        "timing": f"min over {REPETITIONS} repetitions",
        "queries": results,
        "parallel": parallel,
        "lifecycle": lifecycle,
        "spill": spill,
        "strings": strings,
        "serving": serving,
        "microbench": micro,
    }
    OUTPUT.write_text(json.dumps(doc, indent=2) + "\n")
    lines = ["Executor columnar vs row vs materialized (LDBC10)", "=" * 50]
    for name, r in results.items():
        vs_prior = ""
        if "speedup_vs_pr2_columnar" in r:
            vs_prior = f", {r['speedup_vs_pr2_columnar']:.2f}x vs PR2 columnar"
        elif "speedup_vs_pr3_columnar" in r:
            vs_prior = f", {r['speedup_vs_pr3_columnar']:.2f}x vs PR3 columnar"
        lines.append(
            f"{name}: columnar {r['columnar']['time_ms']:.2f} ms vs "
            f"row {r['row']['time_ms']:.2f} ms "
            f"-> {r['columnar_speedup']:.2f}x{vs_prior} "
            f"(materialized {r['materialized']['time_ms']:.2f} ms; "
            f"peak buffer {r['columnar']['peak_buffered_rows']} / "
            f"{r['row']['peak_buffered_rows']} / "
            f"{r['materialized']['peak_buffered_rows']} rows)"
        )
    lines.append("-" * 50)
    for name, r in parallel.items():
        sweep = ", ".join(
            f"p{level} {r[f'p{level}_ms']:.2f} ms ({r[f'speedup_p{level}']:.2f}x)"
            for level in PARALLEL_LEVELS[1:]
        )
        lines.append(
            f"{name}: serial {r['serial_ms']:.2f} ms, {sweep} "
            f"on {r['cores']} core(s)"
        )
    lines.append("-" * 50)
    for name, r in lifecycle.items():
        lines.append(
            f"lifecycle {name}: bare {r['bare_ms']:.3f} ms vs armed "
            f"{r['armed_ms']:.3f} ms -> {r['armed_overhead']:.3f}x overhead"
        )
    lines.append("-" * 50)
    lines.append(
        f"spill (groupby_highcard + sort, working set "
        f"{spill['working_set_rows']} rows): "
        f"in-memory {spill['in_memory_ms']:.3f} ms, armed-idle "
        f"{spill['armed_idle_ms']:.3f} ms "
        f"({spill['armed_idle_overhead']:.3f}x)"
    )
    for name, r in spill["degradation"].items():
        lines.append(
            f"spill {name} ({r['threshold_rows']} rows): {r['time_ms']:.3f} ms "
            f"({r['slowdown']:.2f}x slower; peak {r['peak_buffered_rows']} rows, "
            f"{r['spill_files']} files, {r['spill_bytes']} bytes)"
        )
    lines.append("-" * 50)
    for name in ("string_filter", "string_join", "string_groupby"):
        r = strings[name]
        lines.append(
            f"{name} ({r['rows']} rows): dict {r['dict_ms']:.3f} ms vs "
            f"typed {r['typed_ms']:.3f} ms -> {r['dict_speedup']:.2f}x "
            f"({r['result_rows']} rows out)"
        )
    lines.append(
        f"string name column: "
        f"{strings['memory_bytes']['name_column_compression']:.2f}x smaller "
        f"dictionary-encoded "
        f"({strings['memory_bytes']['dict']['str_events']['name']} vs "
        f"{strings['memory_bytes']['typed']['str_events']['name']} bytes)"
    )
    lines.append("-" * 50)
    lines.append(
        f"serving ({serving['query']}): cold {serving['cold_ms']:.3f} ms vs "
        f"hot {serving['hot_ms']:.3f} ms -> "
        f"{serving['plan_cache_speedup']:.2f}x plan-cache speedup; "
        f"prepared {serving['prepared_ms']:.3f} ms "
        f"({serving['prepared_vs_hot']:.2f}x vs hot)"
    )
    wire = serving["wire"]
    lines.append(
        f"serving wire round-trip ({wire['round_trips']} calls): "
        f"p50 {wire['p50_ms']:.3f} ms, p99 {wire['p99_ms']:.3f} ms, "
        f"{wire['qps']:.0f} qps"
    )
    lines.append(
        f"serving throughput ({serving['sessions']} sessions x "
        f"{serving['queries_per_session']} queries): "
        f"{serving['qps']:.0f} qps, p50 {serving['p50_ms']:.3f} ms, "
        f"p99 {serving['p99_ms']:.3f} ms, "
        f"hit rate {serving['hit_rate']:.2f}"
    )
    lines.append("-" * 50)
    bl = micro["bulk_load"]
    lines.append(
        f"bulk_load ({bl['rows']} rows): typed {bl['typed_ms']:.2f} ms vs "
        f"list {bl['list_ms']:.2f} ms -> {bl['typed_speedup']:.2f}x "
        f"(column-major {bl['typed_columns_ms']:.2f} ms, "
        f"{bl['columns_vs_rows']:.2f}x vs row-tuple typed, "
        f"{bl['columns_vs_list']:.2f}x vs list; dict interning "
        f"{bl['dict_ms']:.2f} ms, {bl['dict_vs_list']:.2f}x vs list)"
    )
    pk = micro["pk_lookup"]
    lines.append(
        f"pk_lookup ({pk['lookups']} probes over {pk['rows']} rows): typed "
        f"{pk['typed_ms']:.2f} ms vs list {pk['list_ms']:.2f} ms "
        f"-> {pk['typed_speedup']:.2f}x"
    )
    sq = micro["storage_query"]
    lines.append(
        f"storage_query (filter_scan): dict {sq['dict_ms']:.3f} ms, "
        f"numpy {sq['numpy_ms']:.3f} ms, "
        f"array {sq['array_ms']:.3f} ms, list {sq['list_ms']:.3f} ms "
        f"-> dict {sq['dict_vs_list']:.2f}x vs list"
    )
    save_report("exec_streaming", "\n".join(lines))
    for r in results.values():
        # Both protocols execute the same plan: identical results, identical
        # per-operator row counts, and the columnar path may never buffer
        # more than the row path.
        assert r["columnar"]["result_rows"] == r["row"]["result_rows"]
        assert r["columnar"]["rows_produced"] == r["row"]["rows_produced"]
        assert (
            r["columnar"]["peak_buffered_rows"] <= r["row"]["peak_buffered_rows"]
        )
        # Streaming must never do more per-operator work than materialized,
        # and columnar must not be meaningfully slower than the row engine
        # anywhere (very loose bound: these are sub-millisecond minima on
        # noisy CI runners).
        assert r["rows_produced_ratio"] <= 1.0
        assert r["columnar_speedup"] > 0.5
    # The vectorized hot loops must beat the row engine clearly on the
    # scan/filter/expand-bound and grouping-bound queries (recorded
    # speedups are 3-9x; the bound leaves room for runner noise).
    for hot in (
        "deep_pipeline",
        "filter_scan",
        "fanout_expand",
        "groupby_heavy",
        "groupby_highcard",
    ):
        assert results[hot]["columnar_speedup"] > 1.2, hot
    assert results["orderby_limit"]["rows_produced_ratio"] < 1.0
    # NaN grouping semantics: all NaN keys fall into one group per region
    # combination; the pre-fix engine emitted one output row per NaN input.
    assert results["groupby_heavy"]["columnar"]["result_rows"] <= 64
    # Like-for-like acceptance gate vs the PR-3 general-aggregation path
    # (only meaningful at the scale the baseline was measured at).
    if scale == DEFAULT_SCALE:
        assert results["groupby_heavy"]["speedup_vs_pr3_columnar"] >= 2.0
    # Dictionary-encoding acceptance gate: on the string-dominated
    # scenarios the dict backend must beat the typed (PR-5) opt-out —
    # measured live in this same run — by >= 2x at the tracked scale.
    for name in ("string_filter", "string_join", "string_groupby"):
        assert strings[name]["dict_speedup"] > 0.5, (name, strings[name])
        if scale == DEFAULT_SCALE:
            assert strings[name]["dict_speedup"] >= 2.0, (name, strings[name])
    assert strings["memory_bytes"]["name_column_compression"] > 1.5
    # Parallel sweeps assert byte-identical results internally; the loose
    # wall-clock bound only rules out pathological scheduler overhead
    # (recorded speedups depend on the runner's core count).
    for name, r in parallel.items():
        assert r[f"speedup_p{PARALLEL_LEVELS[-1]}"] > 0.2, (name, r)
    # Arming deadline + fault schedule + governor must stay cheap: the
    # cooperative checks are attribute tests and clock reads, never locks.
    for name, r in lifecycle.items():
        assert r["armed_overhead"] < 2.0, (name, r)
    # Arming spill without crossing the threshold is one attribute test
    # per breaker: gated at 1.1x at the tracked scale (looser under smoke
    # noise), and every working-set cap on the degradation curve must
    # keep its tracked peak at or under the in-memory working set.
    idle_bound = 1.1 if scale == DEFAULT_SCALE else 1.5
    assert spill["armed_idle_overhead"] < idle_bound, spill
    for name, r in spill["degradation"].items():
        assert r["peak_buffered_rows"] <= spill["working_set_rows"], (name, r)
    assert spill["degradation"]["0.25x"]["spill_files"] > 0
    # Typed bulk loads pay an unboxing cost filling C buffers (recorded at
    # ~0.7x of plain-list appends) in exchange for the query-side wins
    # above; the column-major path must erase that transpose penalty.  The
    # dict backend additionally interns every string on ingest (~0.3x on
    # this unique-heavy content column — the worst case for a dictionary),
    # bounded here so the intern path never degenerates further.
    assert micro["bulk_load"]["typed_speedup"] > 0.5
    assert micro["bulk_load"]["columns_vs_rows"] > 1.0
    assert micro["bulk_load"]["dict_vs_list"] > 0.15
    # Serving acceptance gate: a cache hit skips lexer/parser/binder/
    # optimizer entirely, so the hot path must beat the cold path by >= 3x
    # at the tracked scale (loose > 1x bound under smoke noise), and the
    # one-shape throughput workload must run almost entirely on hits (the
    # only misses are the per-variant first executions).
    assert serving["plan_cache_speedup"] > 1.0, serving
    assert serving["hit_rate"] >= 0.9, serving
    # Prepared execute binds into a statement-local template with no
    # fingerprint scan, so it must not lose to the plan-cache hot path
    # (1.5x slack under smoke noise, a hard >= at the tracked scale).
    assert serving["prepared_ms"] <= serving["hot_ms"] * 1.5, serving
    assert serving["wire"]["qps"] > 0, serving
    if scale == DEFAULT_SCALE:
        assert serving["plan_cache_speedup"] >= 3.0, serving
        assert serving["prepared_ms"] <= serving["hot_ms"], serving
