"""Executor microbenchmark: columnar vs row vs full materialization.

Tracks executor throughput over time (``BENCH_exec.json`` at the repo
root).  Each query runs through three execution profiles of the *same*
physical plan:

* **columnar** — the vectorized runtime (struct-of-arrays batches,
  selection vectors, column-at-a-time kernels); the engine default;
* **row** — the legacy row-tuple batch protocol (the PR-1 engine), kept as
  the baseline the columnar speedups are measured against;
* **materialized** — every operator wrapped in a :class:`MaterializeOp`
  barrier, reconstructing the pre-streaming materialize-everything engine.

Queries cover the hot-loop spectrum: a deep relational pipeline
(scan -> expand -> join -> aggregate), an ``ORDER BY ... LIMIT`` TopK
query (IC2), a filter-heavy scan (selection-vector refinement), and a
high-fan-out two-hop expansion (adaptive chunk sizing).
"""

from __future__ import annotations

import json
import pathlib
import time

from benchmarks.conftest import RESULTS_DIR, save_report
from repro.core.sqlpgq import parse_and_bind
from repro.exec import execute_plan, materialize_plan
from repro.systems import make_system
from repro.workloads.ldbc import ic_queries

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_exec.json"

PIPELINE_SQL = """
SELECT g.fn AS fn, COUNT(*) AS cnt FROM GRAPH_TABLE (snb
  MATCH (p:person)-[:knows]->(f:person)<-[:has_creator]-(m:post)
  COLUMNS (f.first_name AS fn)) g
GROUP BY g.fn
"""

# Filter-heavy scan: two pushed-down conjuncts plus an outer residual
# filter — all selection-vector refinement on the columnar path.
FILTER_SCAN_SQL = """
SELECT g.content AS content FROM GRAPH_TABLE (snb
  MATCH (m:post)
  WHERE m.creation_date <= '2024-06-01' AND m.length > 40
  COLUMNS (m.content AS content, m.length AS len)) g
WHERE g.len < 190
"""

# High-fan-out expansion: two knows-hops multiply rows before aggregation,
# exercising the adaptive expansion chunk sizing.
FANOUT_SQL = """
SELECT g.a AS a, COUNT(*) AS paths FROM GRAPH_TABLE (snb
  MATCH (p0:person)-[:knows]->(p1:person)-[:knows]->(p2:person)
  COLUMNS (p0.first_name AS a)) g
GROUP BY g.a
"""

TOPK_SQL_NAME = "IC2"  # MATCH ... ORDER BY cdate DESC LIMIT 20


def _measure(catalog, sql: str, repetitions: int = 3) -> dict:
    """Run one query in all three profiles; report medians."""
    system = make_system("relgo", catalog, "snb")
    query = parse_and_bind(sql, catalog)

    def run(columnar: bool, materialized: bool = False) -> dict:
        times, result = [], None
        for _ in range(repetitions):
            optimized = system.optimize(query)
            plan = (
                materialize_plan(optimized.physical)
                if materialized
                else optimized.physical
            )
            started = time.perf_counter()
            result = execute_plan(plan, columnar=columnar)
            times.append(time.perf_counter() - started)
        assert result is not None
        return {
            "time_ms": sorted(times)[len(times) // 2] * 1000,
            "rows_produced": result.rows_produced,
            "peak_buffered_rows": result.peak_buffered_rows,
            "result_rows": len(result),
        }

    columnar = run(columnar=True)
    row = run(columnar=False)
    materialized = run(columnar=False, materialized=True)
    return {
        "columnar": columnar,
        "row": row,
        "materialized": materialized,
        "columnar_speedup": row["time_ms"] / max(columnar["time_ms"], 1e-9),
        "streaming_speedup": materialized["time_ms"] / max(row["time_ms"], 1e-9),
        "rows_produced_ratio": (
            row["rows_produced"] / max(materialized["rows_produced"], 1)
        ),
    }


def test_bench_exec_streaming(benchmark, ldbc10):
    def run():
        return {
            "deep_pipeline": _measure(ldbc10, PIPELINE_SQL),
            "orderby_limit": _measure(ldbc10, ic_queries()[TOPK_SQL_NAME]),
            "filter_scan": _measure(ldbc10, FILTER_SCAN_SQL),
            "fanout_expand": _measure(ldbc10, FANOUT_SQL),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    doc = {
        "benchmark": "exec_streaming",
        "dataset": "ldbc10",
        "queries": results,
    }
    OUTPUT.write_text(json.dumps(doc, indent=2) + "\n")
    lines = ["Executor columnar vs row vs materialized (LDBC10)", "=" * 50]
    for name, r in results.items():
        lines.append(
            f"{name}: columnar {r['columnar']['time_ms']:.1f} ms vs "
            f"row {r['row']['time_ms']:.1f} ms "
            f"-> {r['columnar_speedup']:.2f}x "
            f"(materialized {r['materialized']['time_ms']:.1f} ms; "
            f"peak buffer {r['columnar']['peak_buffered_rows']} / "
            f"{r['row']['peak_buffered_rows']} / "
            f"{r['materialized']['peak_buffered_rows']} rows)"
        )
    save_report("exec_streaming", "\n".join(lines))
    for r in results.values():
        # Both protocols execute the same plan: identical results, identical
        # per-operator row counts, and the columnar path may never buffer
        # more than the row path.
        assert r["columnar"]["result_rows"] == r["row"]["result_rows"]
        assert r["columnar"]["rows_produced"] == r["row"]["rows_produced"]
        assert (
            r["columnar"]["peak_buffered_rows"] <= r["row"]["peak_buffered_rows"]
        )
        # Streaming must never do more per-operator work than materialized,
        # and columnar must not be meaningfully slower than the row engine
        # anywhere (very loose bound: orderby_limit runs near parity and
        # these are sub-millisecond medians on noisy CI runners).
        assert r["rows_produced_ratio"] <= 1.0
        assert r["columnar_speedup"] > 0.5
    # The vectorized hot loops must beat the row engine clearly on the
    # scan/filter/expand-bound queries (recorded speedups are 2-4.5x; the
    # bound leaves room for runner noise).
    for hot in ("deep_pipeline", "filter_scan", "fanout_expand"):
        assert results[hot]["columnar_speedup"] > 1.2, hot
    assert results["orderby_limit"]["rows_produced_ratio"] < 1.0
