"""Fig 7 — end-to-end time (optimization + execution): RelGo vs GRainDB.

Fig 7a: IC1-3, IC2, IC4, IC7 on LDBC30.  Fig 7b: JOB1..4 on IMDB.
Paper: RelGo wins end-to-end (avg 7.5x on LDBC30, 3.8x on IMDB) even though
its optimization is slightly costlier; plan quality dominates.
"""

from __future__ import annotations

from benchmarks.conftest import MEMORY_BUDGET_ROWS, save_report
from repro.bench.reporting import average_speedup, format_table
from repro.bench.runner import run_grid
from repro.systems import standard_systems
from repro.workloads.job import job_queries
from repro.workloads.ldbc import ic_queries

LDBC_SUBSET = ["IC1-3", "IC2", "IC4", "IC7"]
JOB_SUBSET = ["JOB1", "JOB2", "JOB3", "JOB4"]


def _run(catalog, graph, queries, repetitions=3):
    systems = standard_systems(
        catalog, graph, names=["relgo", "graindb"],
        memory_budget_rows=MEMORY_BUDGET_ROWS,
    )
    return run_grid(systems, queries, repetitions=repetitions)


def test_fig7a_ldbc_e2e(benchmark, ldbc30):
    queries = {k: v for k, v in ic_queries().items() if k in LDBC_SUBSET}
    measurements = benchmark.pedantic(
        lambda: _run(ldbc30, "snb", queries), rounds=1, iterations=1
    )
    report = []
    for component in ("optimization", "execution", "total"):
        report.append(
            format_table(
                measurements,
                systems=["relgo", "graindb"],
                queries=LDBC_SUBSET,
                component=component,
                title=f"Fig 7a — E2E on LDBC30 ({component})",
            )
        )
    speedup = average_speedup(measurements, "relgo", "graindb")
    report.append(f"RelGo avg E2E speedup vs GRainDB: {speedup:.2f}x (paper: 7.5x)")
    save_report("fig7a_e2e_ldbc", "\n\n".join(report))
    assert speedup > 1.0


def test_fig7b_job_e2e(benchmark, imdb):
    queries = job_queries(JOB_SUBSET)
    measurements = benchmark.pedantic(
        lambda: _run(imdb, "imdb", queries), rounds=1, iterations=1
    )
    table = format_table(
        measurements,
        systems=["relgo", "graindb"],
        queries=JOB_SUBSET,
        component="total",
        title="Fig 7b — E2E on IMDB (total)",
    )
    speedup = average_speedup(measurements, "relgo", "graindb")
    text = table + f"\nRelGo avg E2E speedup vs GRainDB: {speedup:.2f}x (paper: 3.8x)"
    save_report("fig7b_e2e_job", text)
    assert speedup > 1.0
