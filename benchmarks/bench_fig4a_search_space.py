"""Fig 4a — search-space size: graph-agnostic vs graph-aware.

Path patterns with m = 1..10 edges; the graph-agnostic space is all bushy
join trees (with commutativity, without cross products) over the 2m + 1
translated relations; the graph-aware space is the decomposition-tree count.
The paper's claim (Theorem 1): the gap grows exponentially.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.graph.search_space import search_space_comparison


def _render(rows) -> str:
    lines = [
        "Fig 4a — search space comparison (path pattern, m edges)",
        "=" * 64,
        f"{'m':>3} {'graph-agnostic':>18} {'graph-aware':>14} {'ratio':>12}",
        "-" * 64,
    ]
    for row in rows:
        lines.append(
            f"{row['edges']:>3} {row['agnostic']:>18.3e} "
            f"{row['aware']:>14.3e} {row['ratio']:>12.3e}"
        )
    lines.append("-" * 64)
    lines.append("paper shape: agnostic ~1e15 at m=10, ratio grows exponentially")
    return "\n".join(lines)


def test_fig4a_search_space(benchmark):
    rows = benchmark.pedantic(
        lambda: search_space_comparison(10), rounds=1, iterations=1
    )
    save_report("fig4a_search_space", _render(rows))
    ratios = [row["ratio"] for row in rows]
    # Theorem 1: the gap is strictly growing and ends up astronomically large.
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > 1e6
    assert rows[-1]["agnostic"] > 1e15
