"""Fig 8 — RelGo vs RelGoNoRule on QR1..4, LDBC10 and LDBC30.

QR1/QR2 carry their selective predicates in the outer WHERE — only
FilterIntoMatchRule pushes them into matching (paper: 299x / 700x average).
QR3/QR4 project vertex attributes only — TrimAndFuseRule trims edge columns
and fuses EXPANDs (paper: ~2x).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import MEMORY_BUDGET_ROWS, save_report
from repro.bench.reporting import format_table, geometric_mean, speedups_vs_baseline
from repro.bench.runner import run_grid
from repro.systems import standard_systems
from repro.workloads.ldbc import qr_queries

QUERIES = ["QR1", "QR2", "QR3", "QR4"]


def _run(catalog):
    systems = standard_systems(
        catalog, "snb", names=["relgo", "relgo_norule"],
        memory_budget_rows=MEMORY_BUDGET_ROWS,
    )
    return run_grid(systems, qr_queries(), repetitions=5)


@pytest.mark.parametrize("dataset", ["ldbc10", "ldbc30"])
def test_fig8_rules(benchmark, dataset, request):
    catalog = request.getfixturevalue(dataset)
    measurements = benchmark.pedantic(lambda: _run(catalog), rounds=1, iterations=1)
    table = format_table(
        measurements,
        systems=["relgo", "relgo_norule"],
        queries=QUERIES,
        component="total",
        title=f"Fig 8 — RelGo vs RelGoNoRule on {dataset.upper()}",
    )
    ratios = speedups_vs_baseline(measurements, baseline="relgo_norule")
    fim = geometric_mean(
        [ratios[("relgo", q)] for q in ("QR1", "QR2") if ratios[("relgo", q)]]
    )
    tf = geometric_mean(
        [ratios[("relgo", q)] for q in ("QR3", "QR4") if ratios[("relgo", q)]]
    )
    text = (
        table
        + f"\nFilterIntoMatchRule speedup (QR1/QR2): {fim:.1f}x (paper: 299x-700x)"
        + f"\nTrimAndFuseRule speedup (QR3/QR4):     {tf:.2f}x (paper: ~2x)"
    )
    save_report(f"fig8_rules_{dataset}", text)
    # FilterIntoMatch must be a large effect; TrimAndFuse a consistent one
    # (the absolute factor is smaller here than the paper's ~2x — Python
    # tuple-width savings are milder than DuckDB's columnar pipelines; see
    # EXPERIMENTS.md).
    assert fim > 3.0
    assert tf > 0.95
