"""Fig 4b — optimization time: Calcite (graph-agnostic exhaustive Volcano)
vs RelGo, on the LDBC IC queries.

The paper: RelGo optimizes almost all queries within 10-100 ms and is up to
four orders of magnitude faster than Calcite; Calcite regularly hits the
10-minute timeout (scaled down here to OPTIMIZER_TIMEOUT_S).
"""

from __future__ import annotations

from benchmarks.conftest import OPTIMIZER_TIMEOUT_S, save_report
from repro.bench.reporting import format_table
from repro.bench.runner import Measurement
from repro.errors import OptimizationTimeout
from repro.systems import make_system
from repro.workloads.ldbc import ic_queries


def _measure_opt_times(catalog) -> list[Measurement]:
    relgo = make_system("relgo", catalog, "snb")
    calcite = make_system(
        "calcite", catalog, "snb", optimizer_timeout=OPTIMIZER_TIMEOUT_S
    )
    measurements = []
    for name, sql in ic_queries().items():
        for system in (relgo, calcite):
            query = system.bind(sql)
            try:
                optimized = system.optimize(query)
                measurements.append(
                    Measurement(
                        system=system.name,
                        query=name,
                        status="ok",
                        optimization_time=optimized.optimization_time,
                    )
                )
            except OptimizationTimeout as exc:
                measurements.append(
                    Measurement(
                        system=system.name,
                        query=name,
                        status="OT",
                        optimization_time=exc.elapsed,
                    )
                )
    return measurements


def test_fig4b_optimization_time(benchmark, ldbc10):
    measurements = benchmark.pedantic(
        lambda: _measure_opt_times(ldbc10), rounds=1, iterations=1
    )
    table = format_table(
        measurements,
        systems=["relgo", "calcite"],
        queries=list(ic_queries()),
        component="optimization",
        title=(
            "Fig 4b — optimization time (ms), RelGo vs Calcite "
            f"(timeout {OPTIMIZER_TIMEOUT_S:.0f}s => OT)"
        ),
    )
    save_report("fig4b_optimization_time", table)
    relgo_times = [
        m.optimization_time for m in measurements if m.system == "relgo"
    ]
    calcite = {
        m.query: m for m in measurements if m.system == "calcite"
    }
    # RelGo never times out and optimizes every query quickly.
    assert all(m.status == "ok" for m in measurements if m.system == "relgo")
    assert max(relgo_times) < 1.0
    # Calcite is at least an order of magnitude slower somewhere (or OT).
    worst_ratio = 0.0
    for m in measurements:
        if m.system == "relgo" and calcite[m.query].optimization_time > 0:
            worst_ratio = max(
                worst_ratio, calcite[m.query].optimization_time / m.optimization_time
            )
    assert worst_ratio > 10 or any(c.status == "OT" for c in calcite.values())
