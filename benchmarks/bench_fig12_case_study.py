"""Fig 12 — the JOB17 case study: plans of RelGo, GRainDB and Umbra.

The paper's observation: RelGo's plan follows graph semantics — scan
KEYWORD (most selective), EXPAND to TITLE, then COMPANY_NAME, then NAME —
fully exploiting EV/VE indexes, while the relational optimizers interleave
joins in orders that strand the graph index.  This bench prints all three
physical plans and verifies the structural claims.
"""

from __future__ import annotations

from benchmarks.conftest import save_report
from repro.core.plan_proto import operator_counts, plan_to_json
from repro.systems import make_system
from repro.workloads.job import job_queries

SQL = job_queries(["JOB17"])["JOB17"]


def _plans(catalog):
    out = {}
    for name in ("relgo", "graindb", "umbra"):
        system = make_system(name, catalog, "imdb")
        optimized = system.optimize(SQL)
        out[name] = optimized
    return out


def test_fig12_case_study(benchmark, imdb):
    plans = benchmark.pedantic(lambda: _plans(imdb), rounds=1, iterations=1)
    sections = ["Fig 12 — JOB17 query plans", "=" * 60, "", "SQL/PGQ:", SQL, ""]
    for name, optimized in plans.items():
        sections.append(f"--- {name} " + "-" * (50 - len(name)))
        sections.append(optimized.explain())
        sections.append("")
    save_report("fig12_case_study", "\n".join(sections))
    relgo_counts = operator_counts(plans["relgo"].physical)
    # RelGo's plan goes through SCAN_GRAPH_TABLE with EXPAND operators.
    assert relgo_counts.get("ScanGraphTableOp", 0) == 1
    assert relgo_counts.get("Expand", 0) >= 2
    # The baselines never use graph operators...
    for baseline in ("graindb", "umbra"):
        counts = operator_counts(plans[baseline].physical)
        assert counts.get("ScanGraphTableOp", 0) == 0
        assert counts.get("Expand", 0) == 0
    # ... but GRainDB/Umbra do use predefined joins where the order allows.
    assert (
        operator_counts(plans["graindb"].physical).get("RowIdJoin", 0) > 0
        or operator_counts(plans["graindb"].physical).get("CsrJoin", 0) > 0
    )
    # The plan dump is serializable (the paper's protobuf hand-off).
    assert len(plan_to_json(plans["relgo"].physical)) > 100
