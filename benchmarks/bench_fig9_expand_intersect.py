"""Fig 9 — RelGo vs RelGoNoEI on the cyclic queries QC1..3.

Paper: EXPAND_INTERSECT gives a modest speedup on the triangle/square
(1.2-1.3x) but is decisive on the 4-clique QC3, where the traditional
multiple-join implementation runs out of memory.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_report
from repro.bench.reporting import format_table, geometric_mean, speedups_vs_baseline
from repro.bench.runner import by_cell, run_grid
from repro.systems import standard_systems
from repro.workloads.ldbc import qc_queries

QUERIES = ["QC1", "QC2", "QC3"]
# Tighter budget than the global one: Fig 9's point is the *memory* blowup
# of multi-join star closing; the budget stands in for the paper's 256 GB.
QC_BUDGET_ROWS = 400_000


def _run(catalog):
    systems = standard_systems(
        catalog, "snb", names=["relgo", "relgo_noei"],
        memory_budget_rows=QC_BUDGET_ROWS,
    )
    return run_grid(systems, qc_queries(), repetitions=1)


@pytest.mark.parametrize("dataset", ["ldbc10", "ldbc30"])
def test_fig9_expand_intersect(benchmark, dataset, request):
    catalog = request.getfixturevalue(dataset)
    measurements = benchmark.pedantic(lambda: _run(catalog), rounds=1, iterations=1)
    table = format_table(
        measurements,
        systems=["relgo", "relgo_noei"],
        queries=QUERIES,
        component="total",
        title=f"Fig 9 — RelGo vs RelGoNoEI on {dataset.upper()} "
        f"(budget {QC_BUDGET_ROWS} rows)",
    )
    ratios = speedups_vs_baseline(measurements, baseline="relgo_noei")
    acyclic = [
        ratios[("relgo", q)] for q in ("QC1", "QC2") if ratios[("relgo", q)]
    ]
    avg = geometric_mean(acyclic) if acyclic else 0.0
    text = table + f"\nRelGo speedup on QC1/QC2: {avg:.2f}x (paper: 1.2-1.3x)"
    cells = by_cell(measurements)
    qc3_noei = cells[("relgo_noei", "QC3")]
    text += f"\nQC3 with RelGoNoEI: {qc3_noei.status} (paper: OOM)"
    save_report(f"fig9_expand_intersect_{dataset}", text)
    # RelGo completes everything; NoEI must fail or badly lose on QC3.
    assert cells[("relgo", "QC3")].status == "ok"
    assert qc3_noei.status == "OOM" or (
        qc3_noei.total_time > 2 * cells[("relgo", "QC3")].total_time
    )
