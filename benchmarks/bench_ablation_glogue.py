"""Ablation — high-order GLogue statistics vs low-order only (Sec 4.3).

The paper notes RelGo "remains functional with only low-order statistics,
but the efficiency of the generated plan may decrease due to less accurate
cost estimation".  This bench runs RelGo with GLogue on and off over the
cyclic QC suite and the star-heavy IC queries where sub-pattern frequencies
matter most.
"""

from __future__ import annotations

from benchmarks.conftest import MEMORY_BUDGET_ROWS, save_report
from repro.bench.reporting import average_speedup, format_table
from repro.bench.runner import run_grid
from repro.systems import standard_systems
from repro.workloads.ldbc import ic_queries, qc_queries

QUERY_NAMES = ["IC5-1", "IC6-1", "IC7", "QC1", "QC2"]


def _run(catalog):
    suite = {**ic_queries(), **qc_queries()}
    queries = {name: suite[name] for name in QUERY_NAMES}
    systems = standard_systems(
        catalog, "snb", names=["relgo", "relgo_loworder"],
        memory_budget_rows=MEMORY_BUDGET_ROWS,
    )
    return run_grid(systems, queries, repetitions=3)


def test_ablation_glogue(benchmark, ldbc30):
    measurements = benchmark.pedantic(lambda: _run(ldbc30), rounds=1, iterations=1)
    table = format_table(
        measurements,
        systems=["relgo", "relgo_loworder"],
        queries=QUERY_NAMES,
        component="execution",
        title="Ablation — RelGo with GLogue vs low-order statistics only",
    )
    speedup = average_speedup(
        measurements, "relgo", "relgo_loworder", component="execution"
    )
    text = table + f"\nhigh-order vs low-order stats: {speedup:.2f}x"
    save_report("ablation_glogue", text)
    # Low-order must still produce correct plans; quality may tie or win
    # occasionally but must not be catastrophically better.
    assert speedup > 0.5
