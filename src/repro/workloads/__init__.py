"""Benchmark workloads: LDBC SNB-like and JOB/IMDB-like datasets + queries.

The paper evaluates on LDBC SNB (SF 10/30/100, official datagen) and on the
Join Order Benchmark over the real IMDB dump.  Neither dataset is shippable
or generatable at that scale in a pure-Python reproduction, so this package
provides seeded synthetic generators preserving what the evaluation actually
exercises: the schema shape (labels and PK/FK topology), the degree skew
(power-law social edges, zipfian movie casts), and the query pattern shapes
(paths, stars, triangles, cliques; JOB's many-join acyclic topologies).
Scale factors are shrunk to laptop scale; see DESIGN.md for the
substitution rationale.
"""
