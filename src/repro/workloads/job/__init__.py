"""JOB (Join Order Benchmark) workload over a synthetic IMDB-like dataset."""

from repro.workloads.job.generator import JobParams, generate_imdb
from repro.workloads.job.queries import job_queries

__all__ = ["JobParams", "generate_imdb", "job_queries"]
