"""Seeded IMDB-like generator for the Join Order Benchmark.

The RGMapping mirrors the paper's Fig 12: relationship-carrying tables
(``cast_info``, ``movie_companies``, ``movie_info``, ``movie_info_idx``)
are *vertices* with derived edge relations to their endpoints
(``cast_info_name``, ``cast_info_title``, ``movie_companies_title``, ...),
while the plain N:M bridge ``movie_keyword`` maps directly to a
``title -> keyword`` edge.

Value distributions are zipfian (casts and keywords concentrate on popular
titles), and the filter columns used by the queries (keyword strings,
country codes, name prefixes, production years, ratings) have skewed
frequencies so selectivity estimation actually matters — that is the whole
point of JOB.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.rgmapping import RGMapping
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import DataType
from repro.workloads.loader import ColumnLoader

COUNTRY_CODES = ["[us]", "[de]", "[gb]", "[fr]", "[jp]", "[in]", "[it]", "[ca]"]
INFO_TYPES = [
    "budget", "votes", "rating", "genres", "languages",
    "runtimes", "countries", "release dates",
]
GENRES = ["Drama", "Comedy", "Action", "Horror", "Documentary", "Thriller", "Sci-Fi"]
COMPANY_KINDS = ["production companies", "distributors"]
SPECIAL_KEYWORDS = [
    "character-name-in-title", "based-on-novel", "sequel", "murder",
    "independent-film", "love", "revenge",
]


@dataclass(frozen=True)
class JobParams:
    titles: int = 1200
    names: int = 1500
    keywords: int = 150
    companies: int = 200
    cast_per_title: float = 4.0
    keywords_per_title: float = 2.0
    companies_per_title: float = 1.6
    infos_per_title: float = 2.5
    idx_fraction: float = 0.8
    seed: int = 11

    @staticmethod
    def scaled(scale: float, seed: int = 11) -> "JobParams":
        return JobParams(
            titles=max(200, int(1200 * scale)),
            names=max(260, int(1500 * scale)),
            keywords=max(40, int(150 * scale)),
            companies=max(40, int(200 * scale)),
            seed=seed,
        )


def _zipf_weights(n: int, exponent: float = 0.85) -> list[float]:
    return [1.0 / ((i + 1) ** exponent) for i in range(n)]


def generate_imdb(
    params: JobParams | None = None, graph_name: str = "imdb"
) -> tuple[Catalog, RGMapping]:
    """Rows accumulate column-major (one ``ColumnLoader`` per table) and
    bulk-load with one ``Table.extend_columns`` each, filling typed column
    storage via C-level buffer extends with no row-tuple transpose; the
    rng call sequence matches the historical per-row loader exactly."""
    params = params or JobParams()
    rng = random.Random(params.seed)
    catalog = Catalog()
    _create_tables(catalog)

    # -- dimension tables -------------------------------------------------- #
    catalog.table("info_type").extend_columns(
        [list(range(len(INFO_TYPES))), list(INFO_TYPES)], validate=False
    )
    catalog.table("company_type").extend_columns(
        [list(range(len(COMPANY_KINDS))), list(COMPANY_KINDS)], validate=False
    )
    catalog.table("keyword").extend_columns(
        [
            list(range(params.keywords)),
            [
                SPECIAL_KEYWORDS[i] if i < len(SPECIAL_KEYWORDS) else f"kw-{i}"
                for i in range(params.keywords)
            ],
        ],
        validate=False,
    )
    company = ColumnLoader(3)
    for i in range(params.companies):
        code = COUNTRY_CODES[min(int(rng.expovariate(1.4)), len(COUNTRY_CODES) - 1)]
        company.add(i, f"Studio {i}", code)
    company.load_into(catalog, "company_name")

    # -- titles / names ------------------------------------------------------#
    title = ColumnLoader(4)
    for i in range(params.titles):
        year = 1950 + min(int(rng.expovariate(0.03)), 74)
        title.add(i, f"Movie {i:05d}", 2024 - (year - 1950), 1)
    title.load_into(catalog, "title")
    name = ColumnLoader(3)
    for i in range(params.names):
        letter = chr(ord("A") + (i % 26))
        gender = "m" if rng.random() < 0.6 else "f"
        name.add(i, f"{letter}. Actor{i:05d}", gender)
    name.load_into(catalog, "name")

    title_weights = _zipf_weights(params.titles)
    name_weights = _zipf_weights(params.names)

    # -- cast_info (vertex) + derived edges ----------------------------------#
    cast = ColumnLoader(3)
    ci_name = ColumnLoader(3)
    ci_title = ColumnLoader(3)
    total_cast = int(params.titles * params.cast_per_title)
    for i in range(total_cast):
        t = rng.choices(range(params.titles), weights=title_weights)[0]
        n = rng.choices(range(params.names), weights=name_weights)[0]
        cast.add(i, rng.randint(1, 10), f"role note {i % 7}")
        ci_name.add(i, i, n)
        ci_title.add(i, i, t)
    cast.load_into(catalog, "cast_info")
    ci_name.load_into(catalog, "cast_info_name")
    ci_title.load_into(catalog, "cast_info_title")

    # -- movie_keyword (edge) -------------------------------------------------#
    kw_weights = _zipf_weights(params.keywords, exponent=1.0)
    mk = ColumnLoader(3)
    total_mk = int(params.titles * params.keywords_per_title)
    for i in range(total_mk):
        t = rng.choices(range(params.titles), weights=title_weights)[0]
        k = rng.choices(range(params.keywords), weights=kw_weights)[0]
        mk.add(i, t, k)
    mk.load_into(catalog, "movie_keyword")

    # -- movie_companies (vertex) + derived edges ------------------------------#
    mc = ColumnLoader(2)
    mc_title = ColumnLoader(3)
    mc_company = ColumnLoader(3)
    mc_type = ColumnLoader(3)
    company_weights = _zipf_weights(params.companies)
    total_mc = int(params.titles * params.companies_per_title)
    for i in range(total_mc):
        t = rng.choices(range(params.titles), weights=title_weights)[0]
        c = rng.choices(range(params.companies), weights=company_weights)[0]
        kind = 0 if rng.random() < 0.7 else 1
        mc.add(i, f"note {i % 11}")
        mc_title.add(i, i, t)
        mc_company.add(i, i, c)
        mc_type.add(i, i, kind)
    mc.load_into(catalog, "movie_companies")
    mc_title.load_into(catalog, "movie_companies_title")
    mc_company.load_into(catalog, "movie_companies_company")
    mc_type.load_into(catalog, "movie_companies_type")

    # -- movie_info / movie_info_idx (vertices) + derived edges ----------------#
    mi = ColumnLoader(2)
    mi_title = ColumnLoader(3)
    mi_type = ColumnLoader(3)
    total_mi = int(params.titles * params.infos_per_title)
    for i in range(total_mi):
        t = rng.choices(range(params.titles), weights=title_weights)[0]
        it = rng.randrange(len(INFO_TYPES))
        if INFO_TYPES[it] == "genres":
            info = rng.choice(GENRES)
        elif INFO_TYPES[it] == "languages":
            info = rng.choice(["English", "German", "French", "Japanese"])
        else:
            info = str(rng.randint(1, 99999))
        mi.add(i, info)
        mi_title.add(i, i, t)
        mi_type.add(i, i, it)
    mi.load_into(catalog, "movie_info")
    mi_title.load_into(catalog, "movie_info_title")
    mi_type.load_into(catalog, "movie_info_type")

    midx = ColumnLoader(2)
    midx_title = ColumnLoader(3)
    midx_type = ColumnLoader(3)
    rating_type = INFO_TYPES.index("rating")
    votes_type = INFO_TYPES.index("votes")
    for t in range(params.titles):
        if rng.random() > params.idx_fraction:
            continue
        rating = f"{rng.uniform(1.0, 9.9):.1f}"
        midx.add(midx.count, rating)
        midx_title.add(midx_title.count, midx_title.count, t)
        midx_type.add(midx_type.count, midx_type.count, rating_type)
        votes = str(rng.randint(10, 99999))
        midx.add(midx.count, votes)
        midx_title.add(midx_title.count, midx_title.count, t)
        midx_type.add(midx_type.count, midx_type.count, votes_type)
    midx.load_into(catalog, "movie_info_idx")
    midx_title.load_into(catalog, "movie_info_idx_title")
    midx_type.load_into(catalog, "movie_info_idx_type")

    mapping = _create_mapping(catalog, graph_name)
    catalog.register_graph(mapping)
    catalog.analyze()
    return catalog, mapping


def _create_tables(catalog: Catalog) -> None:
    catalog.create_table(
        TableSchema(
            "title",
            [
                Column("id", DataType.INT),
                Column("title", DataType.STRING),
                Column("production_year", DataType.INT),
                Column("kind_id", DataType.INT),
            ],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "name",
            [
                Column("id", DataType.INT),
                Column("name", DataType.STRING),
                Column("gender", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "keyword",
            [Column("id", DataType.INT), Column("keyword", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "company_name",
            [
                Column("id", DataType.INT),
                Column("name", DataType.STRING),
                Column("country_code", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "info_type",
            [Column("id", DataType.INT), Column("info", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "company_type",
            [Column("id", DataType.INT), Column("kind", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "cast_info",
            [
                Column("id", DataType.INT),
                Column("role_id", DataType.INT),
                Column("note", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "movie_companies",
            [Column("id", DataType.INT), Column("note", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "movie_info",
            [Column("id", DataType.INT), Column("info", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "movie_info_idx",
            [Column("id", DataType.INT), Column("info", DataType.STRING)],
            primary_key="id",
        )
    )
    edge_specs = [
        ("cast_info_name", "cast_info", "ci_id", "name", "person_id"),
        ("cast_info_title", "cast_info", "ci_id", "title", "movie_id"),
        ("movie_keyword", "title", "movie_id", "keyword", "keyword_id"),
        ("movie_companies_title", "movie_companies", "mc_id", "title", "movie_id"),
        ("movie_companies_company", "movie_companies", "mc_id", "company_name", "company_id"),
        ("movie_companies_type", "movie_companies", "mc_id", "company_type", "type_id"),
        ("movie_info_title", "movie_info", "mi_id", "title", "movie_id"),
        ("movie_info_type", "movie_info", "mi_id", "info_type", "type_id"),
        ("movie_info_idx_title", "movie_info_idx", "mi_id", "title", "movie_id"),
        ("movie_info_idx_type", "movie_info_idx", "mi_id", "info_type", "type_id"),
    ]
    for table, src_table, src_col, dst_table, dst_col in edge_specs:
        catalog.create_table(
            TableSchema(
                table,
                [
                    Column("id", DataType.INT),
                    Column(src_col, DataType.INT),
                    Column(dst_col, DataType.INT),
                ],
                primary_key="id",
                foreign_keys=[
                    ForeignKey(src_col, src_table, "id"),
                    ForeignKey(dst_col, dst_table, "id"),
                ],
            )
        )


def _create_mapping(catalog: Catalog, graph_name: str) -> RGMapping:
    mapping = RGMapping(graph_name, catalog)
    for table in (
        "title", "name", "keyword", "company_name", "info_type",
        "company_type", "cast_info", "movie_companies", "movie_info",
        "movie_info_idx",
    ):
        mapping.add_vertex(table)
    mapping.add_edge(
        "cast_info_name", source=("cast_info", "ci_id"), target=("name", "person_id")
    )
    mapping.add_edge(
        "cast_info_title", source=("cast_info", "ci_id"), target=("title", "movie_id")
    )
    mapping.add_edge(
        "movie_keyword", source=("title", "movie_id"), target=("keyword", "keyword_id")
    )
    mapping.add_edge(
        "movie_companies_title",
        source=("movie_companies", "mc_id"),
        target=("title", "movie_id"),
    )
    mapping.add_edge(
        "movie_companies_company",
        source=("movie_companies", "mc_id"),
        target=("company_name", "company_id"),
    )
    mapping.add_edge(
        "movie_companies_type",
        source=("movie_companies", "mc_id"),
        target=("company_type", "type_id"),
    )
    mapping.add_edge(
        "movie_info_title", source=("movie_info", "mi_id"), target=("title", "movie_id")
    )
    mapping.add_edge(
        "movie_info_type", source=("movie_info", "mi_id"), target=("info_type", "type_id")
    )
    mapping.add_edge(
        "movie_info_idx_title",
        source=("movie_info_idx", "mi_id"),
        target=("title", "movie_id"),
    )
    mapping.add_edge(
        "movie_info_idx_type",
        source=("movie_info_idx", "mi_id"),
        target=("info_type", "type_id"),
    )
    return mapping
