"""Seeded IMDB-like generator for the Join Order Benchmark.

The RGMapping mirrors the paper's Fig 12: relationship-carrying tables
(``cast_info``, ``movie_companies``, ``movie_info``, ``movie_info_idx``)
are *vertices* with derived edge relations to their endpoints
(``cast_info_name``, ``cast_info_title``, ``movie_companies_title``, ...),
while the plain N:M bridge ``movie_keyword`` maps directly to a
``title -> keyword`` edge.

Value distributions are zipfian (casts and keywords concentrate on popular
titles), and the filter columns used by the queries (keyword strings,
country codes, name prefixes, production years, ratings) have skewed
frequencies so selectivity estimation actually matters — that is the whole
point of JOB.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.rgmapping import RGMapping
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import DataType

COUNTRY_CODES = ["[us]", "[de]", "[gb]", "[fr]", "[jp]", "[in]", "[it]", "[ca]"]
INFO_TYPES = [
    "budget", "votes", "rating", "genres", "languages",
    "runtimes", "countries", "release dates",
]
GENRES = ["Drama", "Comedy", "Action", "Horror", "Documentary", "Thriller", "Sci-Fi"]
COMPANY_KINDS = ["production companies", "distributors"]
SPECIAL_KEYWORDS = [
    "character-name-in-title", "based-on-novel", "sequel", "murder",
    "independent-film", "love", "revenge",
]


@dataclass(frozen=True)
class JobParams:
    titles: int = 1200
    names: int = 1500
    keywords: int = 150
    companies: int = 200
    cast_per_title: float = 4.0
    keywords_per_title: float = 2.0
    companies_per_title: float = 1.6
    infos_per_title: float = 2.5
    idx_fraction: float = 0.8
    seed: int = 11

    @staticmethod
    def scaled(scale: float, seed: int = 11) -> "JobParams":
        return JobParams(
            titles=max(200, int(1200 * scale)),
            names=max(260, int(1500 * scale)),
            keywords=max(40, int(150 * scale)),
            companies=max(40, int(200 * scale)),
            seed=seed,
        )


def _zipf_weights(n: int, exponent: float = 0.85) -> list[float]:
    return [1.0 / ((i + 1) ** exponent) for i in range(n)]


def generate_imdb(
    params: JobParams | None = None, graph_name: str = "imdb"
) -> tuple[Catalog, RGMapping]:
    """Rows accumulate per table and bulk-load with one ``Table.extend``
    each, filling typed column storage via C-level buffer extends; the rng
    call sequence matches the historical per-row loader exactly."""
    params = params or JobParams()
    rng = random.Random(params.seed)
    catalog = Catalog()
    _create_tables(catalog)

    # -- dimension tables -------------------------------------------------- #
    catalog.table("info_type").extend(
        list(enumerate(INFO_TYPES)), validate=False
    )
    catalog.table("company_type").extend(
        list(enumerate(COMPANY_KINDS)), validate=False
    )
    catalog.table("keyword").extend(
        [
            (i, SPECIAL_KEYWORDS[i] if i < len(SPECIAL_KEYWORDS) else f"kw-{i}")
            for i in range(params.keywords)
        ],
        validate=False,
    )
    company_rows = []
    for i in range(params.companies):
        code = COUNTRY_CODES[min(int(rng.expovariate(1.4)), len(COUNTRY_CODES) - 1)]
        company_rows.append((i, f"Studio {i}", code))
    catalog.table("company_name").extend(company_rows, validate=False)

    # -- titles / names ------------------------------------------------------#
    title_rows = []
    for i in range(params.titles):
        year = 1950 + min(int(rng.expovariate(0.03)), 74)
        title_rows.append((i, f"Movie {i:05d}", 2024 - (year - 1950), 1))
    catalog.table("title").extend(title_rows, validate=False)
    name_rows = []
    for i in range(params.names):
        letter = chr(ord("A") + (i % 26))
        gender = "m" if rng.random() < 0.6 else "f"
        name_rows.append((i, f"{letter}. Actor{i:05d}", gender))
    catalog.table("name").extend(name_rows, validate=False)

    title_weights = _zipf_weights(params.titles)
    name_weights = _zipf_weights(params.names)

    # -- cast_info (vertex) + derived edges ----------------------------------#
    cast_rows, ci_name_rows, ci_title_rows = [], [], []
    total_cast = int(params.titles * params.cast_per_title)
    for i in range(total_cast):
        t = rng.choices(range(params.titles), weights=title_weights)[0]
        n = rng.choices(range(params.names), weights=name_weights)[0]
        cast_rows.append((i, rng.randint(1, 10), f"role note {i % 7}"))
        ci_name_rows.append((i, i, n))
        ci_title_rows.append((i, i, t))
    catalog.table("cast_info").extend(cast_rows, validate=False)
    catalog.table("cast_info_name").extend(ci_name_rows, validate=False)
    catalog.table("cast_info_title").extend(ci_title_rows, validate=False)

    # -- movie_keyword (edge) -------------------------------------------------#
    kw_weights = _zipf_weights(params.keywords, exponent=1.0)
    mk_rows = []
    total_mk = int(params.titles * params.keywords_per_title)
    for i in range(total_mk):
        t = rng.choices(range(params.titles), weights=title_weights)[0]
        k = rng.choices(range(params.keywords), weights=kw_weights)[0]
        mk_rows.append((i, t, k))
    catalog.table("movie_keyword").extend(mk_rows, validate=False)

    # -- movie_companies (vertex) + derived edges ------------------------------#
    mc_rows, mc_title_rows, mc_company_rows, mc_type_rows = [], [], [], []
    company_weights = _zipf_weights(params.companies)
    total_mc = int(params.titles * params.companies_per_title)
    for i in range(total_mc):
        t = rng.choices(range(params.titles), weights=title_weights)[0]
        c = rng.choices(range(params.companies), weights=company_weights)[0]
        kind = 0 if rng.random() < 0.7 else 1
        mc_rows.append((i, f"note {i % 11}"))
        mc_title_rows.append((i, i, t))
        mc_company_rows.append((i, i, c))
        mc_type_rows.append((i, i, kind))
    catalog.table("movie_companies").extend(mc_rows, validate=False)
    catalog.table("movie_companies_title").extend(mc_title_rows, validate=False)
    catalog.table("movie_companies_company").extend(mc_company_rows, validate=False)
    catalog.table("movie_companies_type").extend(mc_type_rows, validate=False)

    # -- movie_info / movie_info_idx (vertices) + derived edges ----------------#
    mi_rows, mi_title_rows, mi_type_rows = [], [], []
    total_mi = int(params.titles * params.infos_per_title)
    for i in range(total_mi):
        t = rng.choices(range(params.titles), weights=title_weights)[0]
        it = rng.randrange(len(INFO_TYPES))
        if INFO_TYPES[it] == "genres":
            info = rng.choice(GENRES)
        elif INFO_TYPES[it] == "languages":
            info = rng.choice(["English", "German", "French", "Japanese"])
        else:
            info = str(rng.randint(1, 99999))
        mi_rows.append((i, info))
        mi_title_rows.append((i, i, t))
        mi_type_rows.append((i, i, it))
    catalog.table("movie_info").extend(mi_rows, validate=False)
    catalog.table("movie_info_title").extend(mi_title_rows, validate=False)
    catalog.table("movie_info_type").extend(mi_type_rows, validate=False)

    midx_rows, midx_title_rows, midx_type_rows = [], [], []
    rating_type = INFO_TYPES.index("rating")
    votes_type = INFO_TYPES.index("votes")
    count = 0
    for t in range(params.titles):
        if rng.random() > params.idx_fraction:
            continue
        rating = f"{rng.uniform(1.0, 9.9):.1f}"
        midx_rows.append((count, rating))
        midx_title_rows.append((count, count, t))
        midx_type_rows.append((count, count, rating_type))
        count += 1
        votes = str(rng.randint(10, 99999))
        midx_rows.append((count, votes))
        midx_title_rows.append((count, count, t))
        midx_type_rows.append((count, count, votes_type))
        count += 1
    catalog.table("movie_info_idx").extend(midx_rows, validate=False)
    catalog.table("movie_info_idx_title").extend(midx_title_rows, validate=False)
    catalog.table("movie_info_idx_type").extend(midx_type_rows, validate=False)

    mapping = _create_mapping(catalog, graph_name)
    catalog.register_graph(mapping)
    catalog.analyze()
    return catalog, mapping


def _create_tables(catalog: Catalog) -> None:
    catalog.create_table(
        TableSchema(
            "title",
            [
                Column("id", DataType.INT),
                Column("title", DataType.STRING),
                Column("production_year", DataType.INT),
                Column("kind_id", DataType.INT),
            ],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "name",
            [
                Column("id", DataType.INT),
                Column("name", DataType.STRING),
                Column("gender", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "keyword",
            [Column("id", DataType.INT), Column("keyword", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "company_name",
            [
                Column("id", DataType.INT),
                Column("name", DataType.STRING),
                Column("country_code", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "info_type",
            [Column("id", DataType.INT), Column("info", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "company_type",
            [Column("id", DataType.INT), Column("kind", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "cast_info",
            [
                Column("id", DataType.INT),
                Column("role_id", DataType.INT),
                Column("note", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "movie_companies",
            [Column("id", DataType.INT), Column("note", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "movie_info",
            [Column("id", DataType.INT), Column("info", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "movie_info_idx",
            [Column("id", DataType.INT), Column("info", DataType.STRING)],
            primary_key="id",
        )
    )
    edge_specs = [
        ("cast_info_name", "cast_info", "ci_id", "name", "person_id"),
        ("cast_info_title", "cast_info", "ci_id", "title", "movie_id"),
        ("movie_keyword", "title", "movie_id", "keyword", "keyword_id"),
        ("movie_companies_title", "movie_companies", "mc_id", "title", "movie_id"),
        ("movie_companies_company", "movie_companies", "mc_id", "company_name", "company_id"),
        ("movie_companies_type", "movie_companies", "mc_id", "company_type", "type_id"),
        ("movie_info_title", "movie_info", "mi_id", "title", "movie_id"),
        ("movie_info_type", "movie_info", "mi_id", "info_type", "type_id"),
        ("movie_info_idx_title", "movie_info_idx", "mi_id", "title", "movie_id"),
        ("movie_info_idx_type", "movie_info_idx", "mi_id", "info_type", "type_id"),
    ]
    for table, src_table, src_col, dst_table, dst_col in edge_specs:
        catalog.create_table(
            TableSchema(
                table,
                [
                    Column("id", DataType.INT),
                    Column(src_col, DataType.INT),
                    Column(dst_col, DataType.INT),
                ],
                primary_key="id",
                foreign_keys=[
                    ForeignKey(src_col, src_table, "id"),
                    ForeignKey(dst_col, dst_table, "id"),
                ],
            )
        )


def _create_mapping(catalog: Catalog, graph_name: str) -> RGMapping:
    mapping = RGMapping(graph_name, catalog)
    for table in (
        "title", "name", "keyword", "company_name", "info_type",
        "company_type", "cast_info", "movie_companies", "movie_info",
        "movie_info_idx",
    ):
        mapping.add_vertex(table)
    mapping.add_edge(
        "cast_info_name", source=("cast_info", "ci_id"), target=("name", "person_id")
    )
    mapping.add_edge(
        "cast_info_title", source=("cast_info", "ci_id"), target=("title", "movie_id")
    )
    mapping.add_edge(
        "movie_keyword", source=("title", "movie_id"), target=("keyword", "keyword_id")
    )
    mapping.add_edge(
        "movie_companies_title",
        source=("movie_companies", "mc_id"),
        target=("title", "movie_id"),
    )
    mapping.add_edge(
        "movie_companies_company",
        source=("movie_companies", "mc_id"),
        target=("company_name", "company_id"),
    )
    mapping.add_edge(
        "movie_companies_type",
        source=("movie_companies", "mc_id"),
        target=("company_type", "type_id"),
    )
    mapping.add_edge(
        "movie_info_title", source=("movie_info", "mi_id"), target=("title", "movie_id")
    )
    mapping.add_edge(
        "movie_info_type", source=("movie_info", "mi_id"), target=("info_type", "type_id")
    )
    mapping.add_edge(
        "movie_info_idx_title",
        source=("movie_info_idx", "mi_id"),
        target=("title", "movie_id"),
    )
    mapping.add_edge(
        "movie_info_idx_type",
        source=("movie_info_idx", "mi_id"),
        target=("info_type", "type_id"),
    )
    return mapping
