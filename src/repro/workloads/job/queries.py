"""The 33 JOB queries (the "a" variants), rebuilt over the synthetic IMDB.

Real JOB queries are join-topology variations over a fixed set of building
blocks around ``title``: keyword bridges, company bridges (with country /
type filters), cast bridges (with name filters), info and info_idx bridges
(with type / value / rating filters) and title-level predicates.  Each of
the 33 entries below picks the block combination and filter selectivities
of its namesake so the *join-ordering problem* it poses has the same shape;
string constants refer to the synthetic generator's domains.

JOB17 deliberately matches the paper's Fig 12 case study: keyword
``character-name-in-title``, US companies, actor names starting with 'B'.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class JobSpec:
    """Feature flags for one JOB query."""

    kw: object = None  # str | list[str] | None
    country: str | None = None
    kind: str | None = None
    cast_prefix: str | None = None
    gender: str | None = None
    info: tuple[str, list[str] | None] | None = None
    rating_gt: str | None = None
    year_gt: int | None = None
    year_lt: int | None = None
    extra_outputs: list[str] = field(default_factory=list)


def _build_query(spec: JobSpec) -> str:
    paths: list[str] = []
    wheres: list[str] = []
    columns: list[str] = ["t.title AS title"]
    outputs: list[str] = ["MIN(g.title) AS movie"]

    if spec.kw is not None:
        paths.append("(t:title)-[:movie_keyword]->(k:keyword)")
        if isinstance(spec.kw, str):
            wheres.append(f"k.keyword = '{spec.kw}'")
        else:
            values = ", ".join(f"'{v}'" for v in spec.kw)
            wheres.append(f"k.keyword IN ({values})")
        columns.append("k.keyword AS kw")
    if spec.country is not None or spec.kind is not None:
        paths.append("(mc:movie_companies)-[:movie_companies_title]->(t:title)")
        paths.append("(mc)-[:movie_companies_company]->(cn:company_name)")
        if spec.country is not None:
            wheres.append(f"cn.country_code = '{spec.country}'")
        columns.append("cn.name AS company")
        outputs.append("MIN(g.company) AS company_name")
        if spec.kind is not None:
            paths.append("(mc)-[:movie_companies_type]->(ct:company_type)")
            wheres.append(f"ct.kind = '{spec.kind}'")
    if spec.cast_prefix is not None or spec.gender is not None:
        paths.append("(ci:cast_info)-[:cast_info_title]->(t:title)")
        paths.append("(ci)-[:cast_info_name]->(n:name)")
        if spec.cast_prefix is not None:
            wheres.append(f"n.name STARTS WITH '{spec.cast_prefix}'")
        if spec.gender is not None:
            wheres.append(f"n.gender = '{spec.gender}'")
        columns.append("n.name AS actor")
        outputs.append("MIN(g.actor) AS actor_name")
    if spec.info is not None:
        itype, values = spec.info
        paths.append("(mi:movie_info)-[:movie_info_title]->(t:title)")
        paths.append("(mi)-[:movie_info_type]->(it:info_type)")
        wheres.append(f"it.info = '{itype}'")
        if values:
            joined = ", ".join(f"'{v}'" for v in values)
            wheres.append(f"mi.info IN ({joined})")
    if spec.rating_gt is not None:
        paths.append("(mix:movie_info_idx)-[:movie_info_idx_title]->(t:title)")
        paths.append("(mix)-[:movie_info_idx_type]->(it2:info_type)")
        wheres.append("it2.info = 'rating'")
        wheres.append(f"mix.info > '{spec.rating_gt}'")
        columns.append("mix.info AS rating")
        outputs.append("MIN(g.rating) AS best_rating")
    if spec.year_gt is not None:
        wheres.append(f"t.production_year > {spec.year_gt}")
    if spec.year_lt is not None:
        wheres.append(f"t.production_year < {spec.year_lt}")
    if not paths:
        paths.append("(t:title)-[:movie_keyword]->(k:keyword)")
    where_clause = f"\n      WHERE {' AND '.join(wheres)}" if wheres else ""
    paths_text = ",\n        ".join(paths)
    return (
        f"SELECT {', '.join(outputs)}\n"
        f"FROM GRAPH_TABLE (imdb\n"
        f"  MATCH {paths_text}{where_clause}\n"
        f"  COLUMNS ({', '.join(columns)})) g"
    )


_SPECS: dict[str, JobSpec] = {
    # keyword + company family (JOB 1-4, 11-12).
    "JOB1": JobSpec(kw="sequel", country="[us]", kind="production companies"),
    "JOB2": JobSpec(kw="character-name-in-title", country="[de]"),
    "JOB3": JobSpec(kw=["sequel", "revenge"], year_gt=2005),
    "JOB4": JobSpec(kw="sequel", rating_gt="5.0"),
    # company + info family (JOB 5-6).
    "JOB5": JobSpec(country="[fr]", info=("languages", ["French", "German"])),
    "JOB6": JobSpec(kw="murder", cast_prefix="B", year_gt=2010),
    # cast + company family (JOB 7-10).
    "JOB7": JobSpec(cast_prefix="A", country="[us]", year_gt=1990, year_lt=2020),
    "JOB8": JobSpec(cast_prefix="C", gender="f", country="[jp]"),
    "JOB9": JobSpec(cast_prefix="D", gender="f", country="[us]", kind="distributors"),
    "JOB10": JobSpec(cast_prefix="E", country="[gb]", kind="production companies"),
    "JOB11": JobSpec(kw=["sequel"], country="[gb]", kind="production companies", year_gt=2000),
    "JOB12": JobSpec(country="[us]", info=("genres", ["Drama", "Horror"]), rating_gt="6.0"),
    # info-heavy family (JOB 13-15).
    "JOB13": JobSpec(country="[de]", info=("rating", None), rating_gt="4.0"),
    "JOB14": JobSpec(kw=["murder", "revenge"], info=("countries", None), rating_gt="5.5"),
    "JOB15": JobSpec(country="[us]", info=("release dates", None), year_gt=2000),
    # cast + keyword family (JOB 16-20).
    "JOB16": JobSpec(kw="character-name-in-title", cast_prefix="F", country="[us]"),
    "JOB17": JobSpec(kw="character-name-in-title", cast_prefix="B", country="[us]"),
    "JOB18": JobSpec(cast_prefix="G", info=("budget", None), gender="m"),
    "JOB19": JobSpec(cast_prefix="H", gender="f", country="[us]", info=("release dates", None)),
    "JOB20": JobSpec(kw="sequel", cast_prefix="I", year_gt=1995),
    # bigger combinations (JOB 21-33).
    "JOB21": JobSpec(kw="sequel", country="[de]", info=("languages", ["German"])),
    "JOB22": JobSpec(kw="revenge", country="[us]", info=("genres", ["Horror"]), year_gt=2005),
    "JOB23": JobSpec(kw="murder", country="[us]", kind="production companies", info=("release dates", None)),
    "JOB24": JobSpec(kw="revenge", cast_prefix="J", country="[us]", info=("genres", None)),
    "JOB25": JobSpec(kw="murder", cast_prefix="K", gender="m", info=("genres", ["Horror", "Thriller"])),
    "JOB26": JobSpec(kw="character-name-in-title", cast_prefix="L", rating_gt="6.5"),
    "JOB27": JobSpec(kw="sequel", country="[gb]", kind="production companies", cast_prefix="M"),
    "JOB28": JobSpec(kw="murder", country="[de]", info=("countries", None), rating_gt="5.0"),
    "JOB29": JobSpec(kw="love", cast_prefix="N", gender="f", country="[us]", info=("release dates", None)),
    "JOB30": JobSpec(kw=["murder", "revenge"], cast_prefix="O", info=("genres", ["Horror"]), year_gt=2000),
    "JOB31": JobSpec(kw=["murder"], cast_prefix="P", gender="m", country="[de]"),
    "JOB32": JobSpec(kw="love", country="[jp]"),
    "JOB33": JobSpec(country="[us]", kind="distributors", rating_gt="7.0", year_gt=2010),
}


def job_queries(subset: list[str] | None = None) -> dict[str, str]:
    """SQL/PGQ text of the JOB suite; ``subset`` selects query names."""
    names = subset if subset is not None else list(_SPECS)
    return {name: _build_query(_SPECS[name]) for name in names}
