"""Named datasets and query suites, as the paper's evaluation refers to them.

``dataset("LDBC30")`` returns a ready catalog (tables loaded, RGMapping
registered, graph index built, statistics analyzed); ``suite("IC")`` returns
the corresponding named query dictionary.  The benchmark files use their own
session fixtures for caching; this registry is the convenience front door
for examples and interactive use.
"""

from __future__ import annotations

from repro.graph.index import build_graph_index
from repro.relational.catalog import Catalog
from repro.workloads.job import JobParams, generate_imdb, job_queries
from repro.workloads.ldbc import (
    LdbcParams,
    generate_ldbc,
    ic_queries,
    qc_queries,
    qr_queries,
)

# Laptop-scale stand-ins for the paper's datasets (see DESIGN.md Sec 2).
_DATASET_BUILDERS = {
    "LDBC10": lambda seed: generate_ldbc(LdbcParams.scaled(0.6, seed=seed)),
    "LDBC30": lambda seed: generate_ldbc(LdbcParams.scaled(1.2, seed=seed)),
    "LDBC100": lambda seed: generate_ldbc(LdbcParams.scaled(2.2, seed=seed)),
    "IMDB": lambda seed: generate_imdb(JobParams.scaled(1.0, seed=seed)),
}


def dataset_names() -> list[str]:
    return sorted(_DATASET_BUILDERS)


def dataset(name: str, seed: int = 7, with_index: bool = True) -> Catalog:
    """Build a named dataset; raises KeyError for unknown names."""
    catalog, mapping = _DATASET_BUILDERS[name](seed)
    if with_index:
        catalog.register_graph_index(build_graph_index(mapping))
    catalog.analyze()
    return catalog


def graph_name_for(dataset_name: str) -> str:
    return "imdb" if dataset_name == "IMDB" else "snb"


_SUITES = {
    "IC": ic_queries,
    "QR": qr_queries,
    "QC": qc_queries,
    "JOB": job_queries,
}


def suite_names() -> list[str]:
    return sorted(_SUITES)


def suite(name: str) -> dict[str, str]:
    """A named query suite: query name -> SQL/PGQ text."""
    return _SUITES[name]()
