"""LDBC SNB-like workload: schema, generator, and the IC/QR/QC query suites."""

from repro.workloads.ldbc.generator import LdbcParams, generate_ldbc
from repro.workloads.ldbc.queries import ic_queries, qc_queries, qr_queries

__all__ = [
    "LdbcParams",
    "generate_ldbc",
    "ic_queries",
    "qr_queries",
    "qc_queries",
]
