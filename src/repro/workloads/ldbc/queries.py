"""The LDBC query suites: IC*, QR1-4, QC1-3 (Sec 5.1).

The paper evaluates LDBC Interactive Complex reads IC1..9, 11, 12 (10, 13,
14 excluded as unsupported), splitting variable-length paths into
fixed-length variants with an ``-l`` suffix; plus two custom suites:

* QR1/QR2 exercise FilterIntoMatchRule (selective predicates phrased in the
  *outer* WHERE over GRAPH_TABLE columns) and QR3/QR4 TrimAndFuseRule
  (multi-hop patterns projecting vertex attributes only);
* QC1/QC2/QC3 are the cyclic patterns (triangle / square / 4-clique) that
  exercise EXPAND_INTERSECT.

Queries are SQL/PGQ text over the ``snb`` graph of
:mod:`repro.workloads.ldbc.generator`, simplified relative to the full LDBC
specification but preserving each query's pattern shape (path length,
star/cycle structure, selective anchors) — the property the optimizer
experiments measure.
"""

from __future__ import annotations


def _knows_path(length: int, first: str = "p0") -> str:
    """(p0)-[:knows]->(p1)-...->(p<length>)."""
    parts = [f"({first}:person)"]
    for i in range(1, length + 1):
        parts.append(f"-[:knows]->(p{i}:person)")
    return "".join(parts)


def ic_queries() -> dict[str, str]:
    """The 18 IC variants evaluated in Fig 4b / Fig 11a."""
    queries: dict[str, str] = {}
    # IC1-l: friends within l hops with a given first name.
    for length in (1, 2, 3):
        queries[f"IC1-{length}"] = f"""
        SELECT fn, ln FROM GRAPH_TABLE (snb
          MATCH {_knows_path(length)}
          WHERE p0.first_name = 'Jan'
          COLUMNS (p{length}.first_name AS fn, p{length}.last_name AS ln)) g
        """
    # IC2: recent posts of friends.
    queries["IC2"] = """
    SELECT fn, content, cdate FROM GRAPH_TABLE (snb
      MATCH (p:person)-[:knows]->(f:person)<-[:has_creator]-(m:post)
      WHERE p.first_name = 'Jun' AND m.creation_date <= '2024-06-01'
      COLUMNS (f.first_name AS fn, m.content AS content,
               m.creation_date AS cdate)) g
    ORDER BY cdate DESC LIMIT 20
    """
    # IC3-l: friends at distance l located in a given country.
    for length in (1, 2):
        queries[f"IC3-{length}"] = f"""
        SELECT fn, place FROM GRAPH_TABLE (snb
          MATCH {_knows_path(length)},
                (p{length})-[:is_located_in]->(c:place)
          WHERE p0.first_name = 'Ali' AND c.name = 'Germany'
          COLUMNS (p{length}.first_name AS fn, c.name AS place)) g
        """
    # IC4: tags of posts created by friends, counted.
    queries["IC4"] = """
    SELECT g.tname AS tname, COUNT(*) AS cnt FROM GRAPH_TABLE (snb
      MATCH (p:person)-[:knows]->(f:person)<-[:has_creator]-(m:post),
            (m)-[:has_tag]->(t:tag)
      WHERE p.first_name = 'Ken'
      COLUMNS (t.name AS tname)) g
    GROUP BY g.tname ORDER BY cnt DESC, tname ASC LIMIT 10
    """
    # IC5-l: forums the l-hop friends joined, where they also posted
    # (contains a cycle through forum membership + containment).
    for length in (1, 2):
        queries[f"IC5-{length}"] = f"""
        SELECT g.title AS title, COUNT(*) AS cnt FROM GRAPH_TABLE (snb
          MATCH {_knows_path(length)},
                (fo:forum)-[:has_member]->(p{length}),
                (fo)-[:container_of]->(m:post),
                (m)-[:has_creator]->(p{length})
          WHERE p0.first_name = 'Abe'
          COLUMNS (fo.title AS title)) g
        GROUP BY g.title ORDER BY cnt DESC, title ASC LIMIT 10
        """
    # IC6-l: tags co-occurring with a given tag on friends' posts.
    for length in (1, 2):
        queries[f"IC6-{length}"] = f"""
        SELECT g.other AS other, COUNT(*) AS cnt FROM GRAPH_TABLE (snb
          MATCH {_knows_path(length)},
                (m:post)-[:has_creator]->(p{length}),
                (m)-[:has_tag]->(t1:tag),
                (m)-[:has_tag]->(t2:tag)
          WHERE p0.first_name = 'Ada' AND t1.name = 'music_0'
          COLUMNS (t2.name AS other)) g
    GROUP BY g.other ORDER BY cnt DESC, other ASC LIMIT 10
        """
    # IC7: people who liked my posts; friendship closes a triangle.
    queries["IC7"] = """
    SELECT fn, ldate FROM GRAPH_TABLE (snb
      MATCH (p:person)-[:knows]->(f:person),
            (f)-[l:likes]->(m:post),
            (m)-[:has_creator]->(p)
      WHERE p.first_name = 'Eva'
      COLUMNS (f.first_name AS fn, l.creation_date AS ldate)) g
    ORDER BY ldate DESC LIMIT 20
    """
    # IC8: recent replies to my posts.
    queries["IC8"] = """
    SELECT author, content FROM GRAPH_TABLE (snb
      MATCH (c:comment)-[:reply_of]->(m:post)-[:has_creator]->(p:person),
            (c)-[:comment_creator]->(a:person)
      WHERE p.first_name = 'Ian'
      COLUMNS (a.first_name AS author, c.content AS content,
               c.creation_date AS cdate)) g
    ORDER BY cdate DESC LIMIT 20
    """
    # IC9-l: recent posts by friends within l hops.
    for length in (1, 2):
        queries[f"IC9-{length}"] = f"""
        SELECT fn, content FROM GRAPH_TABLE (snb
          MATCH {_knows_path(length)},
                (m:post)-[:has_creator]->(p{length})
          WHERE p0.first_name = 'Lee' AND m.creation_date <= '2024-01-01'
          COLUMNS (p{length}.first_name AS fn, m.content AS content,
                   m.creation_date AS cdate)) g
        ORDER BY cdate DESC LIMIT 20
        """
    # IC11-l: friends interested in tags of a given family (stand-in for the
    # works-at query; the generator has no organisations).
    for length in (1, 2):
        queries[f"IC11-{length}"] = f"""
        SELECT fn, tname FROM GRAPH_TABLE (snb
          MATCH {_knows_path(length)},
                (p{length})-[:has_interest]->(t:tag)
          WHERE p0.first_name = 'Mia' AND t.name STARTS WITH 'code'
          COLUMNS (p{length}.first_name AS fn, t.name AS tname)) g
        """
    # IC12: expert search — friends commenting on posts with a given tag.
    queries["IC12"] = """
    SELECT g.fn AS fn, COUNT(*) AS cnt FROM GRAPH_TABLE (snb
      MATCH (p:person)-[:knows]->(f:person),
            (c:comment)-[:comment_creator]->(f),
            (c)-[:reply_of]->(m:post),
            (m)-[:has_tag]->(t:tag)
      WHERE p.first_name = 'Noa' AND t.name STARTS WITH 'science'
      COLUMNS (f.first_name AS fn)) g
    GROUP BY g.fn ORDER BY cnt DESC, fn ASC LIMIT 20
    """
    return queries


def qr_queries() -> dict[str, str]:
    """QR1/QR2: FilterIntoMatchRule; QR3/QR4: TrimAndFuseRule (Fig 8).

    QR1/QR2 put their (very selective) predicates in the *outer* WHERE over
    the GRAPH_TABLE columns — only FilterIntoMatchRule can rescue them.
    QR3/QR4 are multi-hop patterns projecting vertex attributes only, so the
    field trimmer can drop every edge column and fuse EXPANDs.
    """
    return {
        "QR1": """
        SELECT fn2 FROM GRAPH_TABLE (snb
          MATCH (a:person)-[:knows]->(b:person)-[:knows]->(c:person)
          COLUMNS (a.id AS aid, a.first_name AS fn0, c.first_name AS fn2)) g
        WHERE g.aid = 5
        """,
        "QR2": """
        SELECT content FROM GRAPH_TABLE (snb
          MATCH (a:person)-[:knows]->(b:person),
                (m:post)-[:has_creator]->(b)
          COLUMNS (a.first_name AS fn, m.content AS content,
                   m.creation_date AS cdate)) g
        WHERE g.fn = 'Jan' AND g.cdate >= '2024-01-01'
        """,
        "QR3": """
        SELECT fn3 FROM GRAPH_TABLE (snb
          MATCH (a:person)-[e1:knows]->(b:person)-[e2:knows]->(c:person)
                -[e3:knows]->(d:person)
          WHERE a.first_name = 'Eva'
          COLUMNS (d.first_name AS fn3)) g
        """,
        "QR4": """
        SELECT tname FROM GRAPH_TABLE (snb
          MATCH (a:person)-[e1:knows]->(b:person),
                (m:post)-[e2:has_creator]->(b),
                (m)-[e3:has_tag]->(t:tag)
          WHERE a.first_name = 'Uma'
          COLUMNS (t.name AS tname)) g
        """,
    }


def qc_queries() -> dict[str, str]:
    """QC1 triangle, QC2 square, QC3 4-clique over knows (Fig 9)."""
    return {
        "QC1": """
        SELECT a_id, b_id, c_id FROM GRAPH_TABLE (snb
          MATCH (a:person)-[:knows]->(b:person)-[:knows]->(c:person),
                (a)-[:knows]->(c)
          COLUMNS (a.id AS a_id, b.id AS b_id, c.id AS c_id)) g
        """,
        "QC2": """
        SELECT a_id, c_id FROM GRAPH_TABLE (snb
          MATCH (a:person)-[:knows]->(b:person)-[:knows]->(c:person),
                (a)-[:knows]->(d:person)-[:knows]->(c)
          COLUMNS (a.id AS a_id, c.id AS c_id)) g
        """,
        "QC3": """
        SELECT a_id FROM GRAPH_TABLE (snb
          MATCH (a:person)-[:knows]->(b:person),
                (a)-[:knows]->(c:person),
                (a)-[:knows]->(d:person),
                (b)-[:knows]->(c),
                (b)-[:knows]->(d),
                (c)-[:knows]->(d)
          COLUMNS (a.id AS a_id)) g
        """,
    }
