"""Seeded LDBC SNB-like social network generator.

Entities: Person, Post, Comment, Forum, Tag, Place.
Relationships (each an explicit edge relation so RGMapping maps it to a
property-graph edge, as the paper's RGMapping of LDBC does):

* ``knows``            Person -> Person (stored in both directions, like the
  LDBC datagen's symmetric friendship)
* ``likes``            Person -> Post
* ``has_creator``      Post -> Person
* ``comment_creator``  Comment -> Person
* ``reply_of``         Comment -> Post
* ``has_tag``          Post -> Tag
* ``has_interest``     Person -> Tag
* ``is_located_in``    Person -> Place
* ``has_member``       Forum -> Person
* ``container_of``     Forum -> Post

Degree skew follows the SNB spirit: person popularity is zipfian, so
friendship and like edges concentrate on hubs — that skew is what makes
join-order quality matter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.rgmapping import RGMapping
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import DataType
from repro.workloads.loader import ColumnLoader

FIRST_NAMES = [
    "Jan", "Jun", "Ali", "Ken", "Abe", "Ada", "Eva", "Ian", "Lee", "Mia",
    "Noa", "Oto", "Pia", "Raj", "Sam", "Tia", "Uma", "Vik", "Wei", "Yan",
]
LAST_NAMES = [
    "Smith", "Yang", "Khan", "Mueller", "Silva", "Tanaka", "Kumar", "Ivanov",
    "Garcia", "Nguyen", "Kowalski", "Okafor", "Johansson", "Rossi", "Novak",
]
COUNTRIES = [
    "China", "India", "Germany", "France", "Brazil", "Japan", "Kenya",
    "Mexico", "Poland", "Spain", "Sweden", "Vietnam",
]
TAG_STEMS = ["music", "sports", "science", "art", "travel", "food", "film", "code"]


@dataclass(frozen=True)
class LdbcParams:
    """Scale knobs.  ``scale`` multiplies every table linearly; the named
    datasets of the paper map to scale 1 / 3 / 10 (LDBC10 / 30 / 100 shrunk
    to laptop size)."""

    persons: int = 300
    avg_friends: int = 8
    posts_per_person: float = 2.0
    comments_per_post: float = 1.5
    likes_per_person: float = 8.0
    forums: int = 40
    tags: int = 48
    places: int = 12
    interests_per_person: float = 3.0
    tags_per_post: float = 1.5
    members_per_forum: float = 20.0
    seed: int = 7

    @staticmethod
    def scaled(scale: float, seed: int = 7) -> "LdbcParams":
        return LdbcParams(
            persons=max(40, int(300 * scale)),
            forums=max(8, int(40 * scale)),
            tags=max(16, int(48 * scale)),
            places=12,
            seed=seed,
        )


def _date(rng: random.Random, start_year: int = 2020, end_year: int = 2024) -> str:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def _zipf_weights(n: int, exponent: float = 0.8) -> list[float]:
    return [1.0 / ((i + 1) ** exponent) for i in range(n)]


def generate_ldbc(
    params: LdbcParams | None = None, graph_name: str = "snb"
) -> tuple[Catalog, RGMapping]:
    """Build the catalog, load synthetic data, and register the RGMapping.

    Rows accumulate column-major (one :class:`~repro.workloads.loader.ColumnLoader` per table) and
    bulk-load with one
    :meth:`~repro.relational.table.Table.extend_columns` per table, so
    typed column storage fills via single C-level buffer extends with no
    row-tuple transpose.  The rng call sequence is identical to the
    historical per-row loader — datasets are byte-for-byte stable across
    the change.
    """
    params = params or LdbcParams()
    rng = random.Random(params.seed)
    catalog = Catalog()

    _create_tables(catalog)

    # -- places / tags --------------------------------------------------- #
    catalog.table("place").extend_columns(
        [
            list(range(params.places)),
            [COUNTRIES[i % len(COUNTRIES)] for i in range(params.places)],
        ],
        validate=False,
    )
    catalog.table("tag").extend_columns(
        [
            list(range(params.tags)),
            [f"{TAG_STEMS[i % len(TAG_STEMS)]}_{i}" for i in range(params.tags)],
        ],
        validate=False,
    )

    # -- persons ----------------------------------------------------------#
    person = ColumnLoader(5)
    located = ColumnLoader(3)
    n = params.persons
    for i in range(n):
        person.add(
            i,
            FIRST_NAMES[i % len(FIRST_NAMES)],
            LAST_NAMES[(i * 7) % len(LAST_NAMES)],
            _date(rng, 1950, 2005),
            _date(rng, 2019, 2023),
        )
        located.add(i, i, rng.randrange(params.places))
    person.load_into(catalog, "person")
    located.load_into(catalog, "is_located_in")

    popularity = _zipf_weights(n)

    # -- knows (symmetric, power-law) ------------------------------------ #
    knows = ColumnLoader(4)
    knows_pairs: set[tuple[int, int]] = set()
    target_edges = (n * params.avg_friends) // 2
    attempts = 0
    while len(knows_pairs) < target_edges and attempts < target_edges * 20:
        attempts += 1
        a = rng.choices(range(n), weights=popularity)[0]
        b = rng.choices(range(n), weights=popularity)[0]
        if a == b:
            continue
        knows_pairs.add((min(a, b), max(a, b)))
    for a, b in sorted(knows_pairs):
        date = _date(rng)
        knows.add(knows.count, a, b, date)
        knows.add(knows.count, b, a, date)
    knows.load_into(catalog, "knows")

    # -- forums ------------------------------------------------------------#
    forum = ColumnLoader(3)
    member = ColumnLoader(4)
    for i in range(params.forums):
        forum.add(i, f"Forum {TAG_STEMS[i % len(TAG_STEMS)]} {i}", _date(rng))
        member_count = max(2, int(rng.expovariate(1.0 / params.members_per_forum)))
        members = {
            rng.choices(range(n), weights=popularity)[0]
            for _ in range(member_count)
        }
        for p in sorted(members):
            member.add(member.count, i, p, _date(rng))
    forum.load_into(catalog, "forum")
    member.load_into(catalog, "has_member")

    # -- posts --------------------------------------------------------------#
    post = ColumnLoader(4)
    creator = ColumnLoader(3)
    container = ColumnLoader(3)
    has_tag = ColumnLoader(3)
    num_posts = int(n * params.posts_per_person)
    for i in range(num_posts):
        author = rng.choices(range(n), weights=popularity)[0]
        forum_id = rng.randrange(params.forums)
        post.add(i, f"post content {i}", 20 + (i * 13) % 180, _date(rng))
        creator.add(i, i, author)
        container.add(i, forum_id, i)
        for _ in range(rng.randint(0, int(2 * params.tags_per_post))):
            has_tag.add(has_tag.count, i, rng.randrange(params.tags))
    post.load_into(catalog, "post")
    creator.load_into(catalog, "has_creator")
    container.load_into(catalog, "container_of")
    has_tag.load_into(catalog, "has_tag")

    # -- comments ------------------------------------------------------------#
    comment = ColumnLoader(3)
    comment_creator = ColumnLoader(3)
    reply = ColumnLoader(3)
    num_comments = int(num_posts * params.comments_per_post)
    post_weights = _zipf_weights(num_posts) if num_posts else []
    for i in range(num_comments):
        author = rng.choices(range(n), weights=popularity)[0]
        target = rng.choices(range(num_posts), weights=post_weights)[0]
        comment.add(i, f"comment {i}", _date(rng))
        comment_creator.add(i, i, author)
        reply.add(i, i, target)
    comment.load_into(catalog, "comment")
    comment_creator.load_into(catalog, "comment_creator")
    reply.load_into(catalog, "reply_of")

    # -- likes -----------------------------------------------------------------#
    likes = ColumnLoader(4)
    total_likes = int(n * params.likes_per_person)
    for _ in range(total_likes):
        p = rng.choices(range(n), weights=popularity)[0]
        target = rng.choices(range(num_posts), weights=post_weights)[0]
        likes.add(likes.count, p, target, _date(rng))
    likes.load_into(catalog, "likes")

    # -- interests ----------------------------------------------------------------#
    interest = ColumnLoader(3)
    for p in range(n):
        for _ in range(rng.randint(1, int(2 * params.interests_per_person))):
            interest.add(interest.count, p, rng.randrange(params.tags))
    interest.load_into(catalog, "has_interest")

    mapping = _create_mapping(catalog, graph_name)
    catalog.register_graph(mapping)
    catalog.analyze()
    return catalog, mapping


def _create_tables(catalog: Catalog) -> None:
    catalog.create_table(
        TableSchema(
            "place",
            [Column("id", DataType.INT), Column("name", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "tag",
            [Column("id", DataType.INT), Column("name", DataType.STRING)],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "person",
            [
                Column("id", DataType.INT),
                Column("first_name", DataType.STRING),
                Column("last_name", DataType.STRING),
                Column("birthday", DataType.DATE),
                Column("creation_date", DataType.DATE),
            ],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "forum",
            [
                Column("id", DataType.INT),
                Column("title", DataType.STRING),
                Column("creation_date", DataType.DATE),
            ],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "post",
            [
                Column("id", DataType.INT),
                Column("content", DataType.STRING),
                Column("length", DataType.INT),
                Column("creation_date", DataType.DATE),
            ],
            primary_key="id",
        )
    )
    catalog.create_table(
        TableSchema(
            "comment",
            [
                Column("id", DataType.INT),
                Column("content", DataType.STRING),
                Column("creation_date", DataType.DATE),
            ],
            primary_key="id",
        )
    )
    edge_specs = [
        ("knows", "person", "p1", "person", "p2", True),
        ("likes", "person", "person_id", "post", "post_id", True),
        ("has_creator", "post", "post_id", "person", "person_id", False),
        ("comment_creator", "comment", "comment_id", "person", "person_id", False),
        ("reply_of", "comment", "comment_id", "post", "post_id", False),
        ("has_tag", "post", "post_id", "tag", "tag_id", False),
        ("has_interest", "person", "person_id", "tag", "tag_id", False),
        ("is_located_in", "person", "person_id", "place", "place_id", False),
        ("has_member", "forum", "forum_id", "person", "person_id", True),
        ("container_of", "forum", "forum_id", "post", "post_id", False),
    ]
    for name, src_table, src_col, dst_table, dst_col, dated in edge_specs:
        columns = [
            Column("id", DataType.INT),
            Column(src_col, DataType.INT),
            Column(dst_col, DataType.INT),
        ]
        if dated:
            columns.append(Column("creation_date", DataType.DATE))
        catalog.create_table(
            TableSchema(
                name,
                columns,
                primary_key="id",
                foreign_keys=[
                    ForeignKey(src_col, src_table, "id"),
                    ForeignKey(dst_col, dst_table, "id"),
                ],
            )
        )


def _create_mapping(catalog: Catalog, graph_name: str) -> RGMapping:
    mapping = RGMapping(graph_name, catalog)
    for table in ("person", "post", "comment", "forum", "tag", "place"):
        mapping.add_vertex(table)
    mapping.add_edge("knows", source=("person", "p1"), target=("person", "p2"))
    mapping.add_edge("likes", source=("person", "person_id"), target=("post", "post_id"))
    mapping.add_edge(
        "has_creator", source=("post", "post_id"), target=("person", "person_id")
    )
    mapping.add_edge(
        "comment_creator",
        source=("comment", "comment_id"),
        target=("person", "person_id"),
    )
    mapping.add_edge(
        "reply_of", source=("comment", "comment_id"), target=("post", "post_id")
    )
    mapping.add_edge("has_tag", source=("post", "post_id"), target=("tag", "tag_id"))
    mapping.add_edge(
        "has_interest", source=("person", "person_id"), target=("tag", "tag_id")
    )
    mapping.add_edge(
        "is_located_in", source=("person", "person_id"), target=("place", "place_id")
    )
    mapping.add_edge(
        "has_member", source=("forum", "forum_id"), target=("person", "person_id")
    )
    mapping.add_edge(
        "container_of", source=("forum", "forum_id"), target=("post", "post_id")
    )
    return mapping
