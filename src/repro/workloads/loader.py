"""Column-major bulk-load accumulator shared by the workload generators."""

from __future__ import annotations

from repro.relational.catalog import Catalog


class ColumnLoader:
    """Column-major row accumulator for one table.

    ``add(*values)`` appends one logical row directly into per-column
    lists, so the eventual
    :meth:`~repro.relational.table.Table.extend_columns` fills typed
    storage straight from columns — no row tuples, no transpose.
    ``count`` doubles as the running id for tables whose primary key is
    the load position.
    """

    __slots__ = ("columns", "count")

    def __init__(self, width: int):
        self.columns: list[list] = [[] for _ in range(width)]
        self.count = 0

    def add(self, *values) -> None:
        for column, value in zip(self.columns, values):
            column.append(value)
        self.count += 1

    def load_into(self, catalog: Catalog, table: str) -> None:
        catalog.table(table).extend_columns(self.columns, validate=False)


__all__ = ["ColumnLoader"]
