"""The Kùzu-like GDBMS baseline (Sec 5.1 / 5.3.3).

Kùzu is a native graph system with its own storage; the paper uses it as a
baseline that "may not sufficiently exploit graph-specific optimizations as
RelGo does".  This stand-in captures that role:

* native adjacency storage — it reads the same CSR structures the graph
  index provides (fair: Kùzu materializes adjacency natively);
* **no cost-based pattern planning** — edges are traversed in declaration
  order, expanding from the first vertex of the first path, with
  already-bound edges executed as *closing* expansions (scan-and-check, no
  EXPAND_INTERSECT and no GLogue statistics);
* the relational remainder is planned greedily without graph knowledge.

Because declaration order is frequently terrible (e.g. IC patterns anchored
on selective filters declared late), it explodes intermediates and hits the
memory budget on cyclic queries — the paper's Kùzu OOM entries.
"""

from __future__ import annotations

from repro.core.framework import RelGoConfig
from repro.core.scan_graph_table import LogicalScanGraphTable, ScanGraphTableOp
from repro.core.spjm import GraphTableClause
from repro.errors import PlanError
from repro.graph.index import GraphIndex
from repro.graph.pattern import PatternGraph
from repro.graph.physical import (
    EdgeTripleScan,
    Expand,
    ExpandEdge,
    GetVertex,
    GraphOperator,
    MaterializeOp,
    PatternHashJoin,
    ScanVertex,
)
from repro.graph.rgmapping import RGMapping
from repro.relational.catalog import Catalog
from repro.systems.base import System


def naive_declaration_order_plan(
    pattern: PatternGraph,
    mapping: RGMapping,
    index: GraphIndex,
    needed_edge_vars: frozenset[str] = frozenset(),
) -> GraphOperator:
    """Expand edges in declaration order, closing cycles by scan-and-check."""
    edges = list(pattern.edges.values())  # dict preserves declaration order
    if not edges:
        vertex = next(iter(pattern.vertices.values()))
        return ScanVertex(mapping, vertex.name, vertex.label, vertex.predicate)
    bound: set[str] = set()
    op: GraphOperator | None = None
    pending = edges[:]
    while pending:
        progress = False
        for i, edge in enumerate(pending):
            if op is None:
                start = pattern.vertices[edge.src]
                op = ScanVertex(mapping, start.name, start.label, start.predicate)
                bound.add(start.name)
            if edge.src not in bound and edge.dst not in bound:
                continue
            from_var = edge.src if edge.src in bound else edge.dst
            to_var = edge.other(from_var)
            closing = to_var in bound
            target = pattern.vertices[to_var]
            direction = edge.direction_from(from_var)
            keep_edge = edge.name in needed_edge_vars
            if closing and keep_edge:
                # Scan the edge relation and join on both endpoints so the
                # edge variable survives (a tuple-at-a-time engine would do
                # an index-nested-loop; the topology is the same).
                triples = EdgeTripleScan(
                    mapping,
                    edge.label,
                    src_var=edge.src,
                    dst_var=edge.dst,
                    edge_var=edge.name,
                    index=index,
                    edge_predicate=edge.predicate,
                )
                op = PatternHashJoin(op, triples)
            elif closing:
                op = Expand(
                    op,
                    index,
                    mapping,
                    from_var=from_var,
                    to_var=to_var,
                    to_label=target.label,
                    edge_label=edge.label,
                    direction=direction,
                    edge_predicate=edge.predicate,
                    closing=True,
                )
            elif keep_edge:
                expanded = ExpandEdge(
                    op, index, mapping,
                    from_var=from_var,
                    edge_var=edge.name,
                    edge_label=edge.label,
                    direction=direction,
                    edge_predicate=edge.predicate,
                )
                op = GetVertex(
                    expanded, index, mapping,
                    edge_var=edge.name,
                    to_var=to_var,
                    to_label=target.label,
                    direction=direction,
                    vertex_predicate=target.predicate,
                )
            else:
                op = Expand(
                    op,
                    index,
                    mapping,
                    from_var=from_var,
                    to_var=to_var,
                    to_label=target.label,
                    edge_label=edge.label,
                    direction=direction,
                    edge_predicate=edge.predicate,
                    vertex_predicate=target.predicate,
                )
            # A naive tuple-at-a-time engine materializes every traversal
            # step; the barrier keeps that cost model (and its memory-budget
            # blowups on cyclic queries — the paper's Kùzu OOM entries) now
            # that the shared operators themselves stream.
            op = MaterializeOp(op)
            bound.add(to_var)
            pending.pop(i)
            progress = True
            break
        if not progress:  # pragma: no cover - connected patterns always progress
            raise PlanError("disconnected pattern in declaration-order planner")
    assert op is not None
    return op


class _NaiveGraphTable(LogicalScanGraphTable):
    """A SCAN_GRAPH_TABLE whose inner plan is the declaration-order chain."""

    def __init__(self, clause: GraphTableClause, mapping: RGMapping, index: GraphIndex):
        # A placeholder GraphPlan is not needed: estimated rows are a crude
        # volume guess (no statistics — that's the point of this baseline).
        self.clause = clause
        self.mapping = mapping
        self.index = index
        self._columns = [f"{clause.alias}.{c.alias}" for c in clause.columns]

    @property
    def estimated_rows(self) -> float:
        # No cardinality model: a flat guess, as a statistics-free engine.
        return 10_000.0

    def to_physical(self, catalog: Catalog) -> ScanGraphTableOp:
        # A GDBMS without field trimming materializes every pattern element:
        # all edge variables are carried (wide tuples, unfused EXPAND_EDGE +
        # GET_VERTEX pipelines), which is part of why the baseline trails.
        needed = frozenset(self.clause.pattern.edges)
        graph_op = naive_declaration_order_plan(
            self.clause.pattern, self.mapping, self.index, needed_edge_vars=needed
        )
        return ScanGraphTableOp(self.clause, self.mapping, graph_op)


class KuzuLikeSystem(System):
    """System wrapper substituting the naive graph planner."""

    def __init__(
        self,
        catalog: Catalog,
        graph_name: str | None = None,
        memory_budget_rows: int | None = None,
        spill=False,
    ):
        config = RelGoConfig(
            graph_aware=True,
            use_graph_index=True,
            enable_rules=True,  # Kùzu does push filters into matching
            join_enumeration="greedy",
        )
        super().__init__(
            "kuzu",
            catalog,
            graph_name,
            config=config,
            memory_budget_rows=memory_budget_rows,
            spill=spill,
        )
        # Substitute the graph planner: patch the framework's converged path
        # by overriding optimize() below.

    def optimize(self, query):
        import time as _time

        from repro.core.framework import OptimizedQuery
        from repro.core.rules import apply_filter_into_match, apply_trim_and_fuse

        query = self.bind(query)
        started = _time.perf_counter()
        query, _ = apply_filter_into_match(query)
        query, _ = apply_trim_and_fuse(query)
        clause = query.graph_table
        if clause is None:
            return self.framework.optimize(query)
        index = self.framework.ensure_index()
        sgt = _NaiveGraphTable(clause, self.framework.mapping, index)
        block = self.framework._relational_block(query, extra_leaves=[sgt])
        plan, report = self.framework._relational_optimizer().optimize(block)
        physical = self.framework._lower(plan)
        return OptimizedQuery(
            physical=physical,
            logical=plan,
            optimization_time=_time.perf_counter() - started,
            relational_report=report,
        )
