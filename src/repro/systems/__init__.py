"""The compared systems of Sec 5.1, as thin configurations of one engine.

All systems except Kùzu share the execution engine and differ only in
optimizer + physical join repertoire — exactly the paper's setup ("all
systems except Kùzu use DuckDB v0.9.2 as the relational execution engine,
differing only in their optimizers").
"""

from repro.systems.base import System, SystemResult, make_system, standard_systems

__all__ = ["System", "SystemResult", "make_system", "standard_systems"]
