"""System wrappers: a uniform run() interface with OT / OOM accounting.

=================  ==========================================================
name               configuration
=================  ==========================================================
``relgo``          converged optimizer, graph index, rules, EI  (Sec 4.2)
``relgo_norule``   RelGo without FilterIntoMatch / TrimAndFuse  (Fig 8)
``relgo_noei``     RelGo with stars as traditional multi-joins  (Fig 9)
``relgo_hash``     RelGo join orders, no graph index            (Fig 10)
``relgo_loworder`` RelGo with GLogue disabled (low-order stats ablation)
``duckdb``         graph-agnostic + DP optimizer + hash joins   (Sec 4.1)
``graindb``        graph-agnostic + DP optimizer + predefined joins
``umbra``          graph-agnostic + histogram cardinalities + graph index
``calcite``        graph-agnostic + exhaustive Volcano search   (Fig 4b)
``kuzu``           native-graph baseline, declaration-order plans
=================  ==========================================================
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.core.framework import RelGoConfig, RelGoFramework
from repro.core.spjm import SPJMQuery
from repro.core.sqlpgq import parse_and_bind
from repro.errors import OptimizationTimeout, OutOfMemoryError, QueryCancelled
from repro.relational.catalog import Catalog

SYSTEM_CONFIGS: dict[str, RelGoConfig] = {
    "relgo": RelGoConfig(),
    "relgo_norule": RelGoConfig(enable_rules=False),
    "relgo_noei": RelGoConfig(enable_expand_intersect=False),
    "relgo_hash": RelGoConfig(use_graph_index=False),
    "relgo_loworder": RelGoConfig(use_glogue=False),
    "duckdb": RelGoConfig(graph_aware=False, use_graph_index=False),
    "graindb": RelGoConfig(graph_aware=False, use_graph_index=True),
    "umbra": RelGoConfig(graph_aware=False, use_graph_index=True, histograms=True),
    "calcite": RelGoConfig(
        graph_aware=False, use_graph_index=False, join_enumeration="exhaustive"
    ),
}


@dataclass
class SystemResult:
    """One (system, query) measurement."""

    system: str
    query: str
    status: str  # "ok" | "OOM" | "OT" | "timeout" | "error"
    optimization_time: float = 0.0
    execution_time: float = 0.0
    rows: int = 0
    detail: str = ""

    @property
    def total_time(self) -> float:
        return self.optimization_time + self.execution_time

    def ok(self) -> bool:
        return self.status == "ok"


class System:
    """A named optimizer configuration bound to a catalog + graph."""

    def __init__(
        self,
        name: str,
        catalog: Catalog,
        graph_name: str | None = None,
        config: RelGoConfig | None = None,
        memory_budget_rows: int | None = None,
        optimizer_timeout: float | None = None,
        spill=False,
    ):
        if config is None:
            config = SYSTEM_CONFIGS[name]
        # Copy so per-system budget/timeout tweaks do not leak.
        self.config = RelGoConfig(**vars(config))
        if memory_budget_rows is not None:
            self.config.memory_budget_rows = memory_budget_rows
        if optimizer_timeout is not None and self.config.join_enumeration == "exhaustive":
            self.config.optimizer_timeout = optimizer_timeout
        # Paper-fidelity default: system wrappers measure the paper's OOM
        # entries, so spill stays disarmed (even when REPRO_SPILL_* is set
        # in the environment) unless a caller arms it explicitly.
        self.config.spill = spill
        self.name = name
        self.framework = RelGoFramework(catalog, graph_name, self.config)
        self.framework.prepare()
        # REPRO_SERVING routes text queries through a serving plan cache
        # (one per System, invalidated by this catalog's version).  CI's
        # tier1-serving leg runs the whole suite this way, so every
        # repeated query shape executes a rebound cached plan and must
        # still produce byte-identical results.
        self.plan_cache = None
        if os.environ.get("REPRO_SERVING"):
            from repro.serving.plan_cache import PlanCache

            self.plan_cache = PlanCache().bind_catalog(catalog)

    def bind(self, query: SPJMQuery | str) -> SPJMQuery:
        if isinstance(query, str):
            return parse_and_bind(query, self.framework.catalog)
        return query

    def optimize(self, query: SPJMQuery | str):
        if isinstance(query, str) and self.plan_cache is not None:
            from repro.serving.plan_cache import cached_optimize

            optimized, _ = cached_optimize(
                self.plan_cache, query, self.framework.catalog,
                self.framework.optimize,
            )
            return optimized
        return self.framework.optimize(self.bind(query))

    def run(self, query: SPJMQuery | str, query_name: str = "") -> SystemResult:
        """Optimize + execute with OT / OOM accounting."""
        result = SystemResult(system=self.name, query=query_name, status="ok")
        # With the plan cache armed, text skips the eager bind: parse/bind
        # happen inside optimize() only on a cache miss.
        cached_text = isinstance(query, str) and self.plan_cache is not None
        try:
            bound = query if cached_text else self.bind(query)
        except Exception as exc:  # bind errors are reported, not raised
            result.status = "error"
            result.detail = f"bind: {exc}"
            return result
        try:
            optimized = self.optimize(bound)
            result.optimization_time = optimized.optimization_time
        except OptimizationTimeout as exc:
            result.status = "OT"
            result.optimization_time = exc.elapsed
            return result
        except Exception as exc:
            if not cached_text:
                raise
            # Parse/bind failures surface here on the cached path; keep
            # the eager-bind path's classification.
            result.status = "error"
            result.detail = f"bind: {exc}"
            return result
        started = time.perf_counter()
        try:
            query_result = self.framework.execute(optimized)
            result.execution_time = time.perf_counter() - started
            result.rows = len(query_result)
        except OutOfMemoryError as exc:
            result.status = "OOM"
            result.execution_time = time.perf_counter() - started
            result.detail = str(exc)
        except QueryCancelled as exc:
            # Execution deadline / cancellation (QueryTimeout subclasses
            # QueryCancelled).  Distinct from "OT", which is the paper's
            # *optimizer*-budget entry and stays optimizer-only above.
            result.status = "timeout"
            result.execution_time = time.perf_counter() - started
            result.detail = str(exc)
        return result


def make_system(
    name: str,
    catalog: Catalog,
    graph_name: str | None = None,
    memory_budget_rows: int | None = None,
    optimizer_timeout: float | None = None,
    spill=False,
) -> System:
    """Instantiate one of the named systems (including ``kuzu``)."""
    if name == "kuzu":
        from repro.systems.kuzu_like import KuzuLikeSystem

        return KuzuLikeSystem(
            catalog, graph_name, memory_budget_rows=memory_budget_rows, spill=spill
        )
    return System(
        name,
        catalog,
        graph_name,
        memory_budget_rows=memory_budget_rows,
        optimizer_timeout=optimizer_timeout,
        spill=spill,
    )


def standard_systems(
    catalog: Catalog,
    graph_name: str | None = None,
    names: list[str] | None = None,
    memory_budget_rows: int | None = None,
    optimizer_timeout: float | None = None,
) -> dict[str, System]:
    names = names or ["relgo", "graindb", "duckdb", "umbra", "kuzu"]
    return {
        name: make_system(
            name,
            catalog,
            graph_name,
            memory_budget_rows=memory_budget_rows,
            optimizer_timeout=optimizer_timeout,
        )
        for name in names
    }
