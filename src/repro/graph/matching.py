"""Reference implementation of the matching operator ``M(P)`` (Def. 1).

A direct backtracking matcher over the graph index.  It is deliberately
simple — its job is to be *obviously correct* so that tests can check every
optimized physical plan (expand/intersect/join pipelines, graph-agnostic SPJ
translations) against it on small graphs.

Semantics (Sec 2.2 / 3.1): the default is **homomorphism** — pattern
elements need not map to distinct data elements.  ``isomorphism`` and
``edge_distinct`` apply the paper's *all-distinct* operator as a post filter
over vertices / edges respectively.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import PlanError
from repro.graph.index import GraphIndex
from repro.graph.pattern import PatternEdge, PatternGraph
from repro.graph.rgmapping import RGMapping
from repro.relational.expr import (
    Expr,
    compile_predicate,
    compile_predicate_columnar,
    referenced_columns,
)
from repro.relational.table import Table

Binding = dict[str, int]

HOMOMORPHISM = "homomorphism"
ISOMORPHISM = "isomorphism"
EDGE_DISTINCT = "edge_distinct"


def rowid_predicate(table: Table, predicate: Expr) -> Callable[[int], bool]:
    """Compile ``predicate`` into a check over a rowid of ``table``.

    Column references may be bare attribute names or qualified
    (``var.attr``); only the tail is resolved against the table schema.
    """
    names = sorted(referenced_columns(predicate))
    arrays = []
    layout: dict[str, int] = {}
    for i, name in enumerate(names):
        tail = name.rsplit(".", 1)[-1]
        arrays.append(table.column(tail))
        layout[name] = i
    pred = compile_predicate(predicate, layout)
    if len(arrays) == 1:
        only = arrays[0]
        return lambda rowid: pred((only[rowid],))
    return lambda rowid: pred(tuple(a[rowid] for a in arrays))


def rowid_selection(table: Table, predicate: Expr, num_rows: int | None = None):
    """Columnar sibling of :func:`rowid_predicate`.

    Compiles ``predicate`` into ``candidates -> surviving candidates`` over
    rowids of ``table``, evaluated column-at-a-time (the vectorized scan /
    filter path).  Returns the input object unchanged when every candidate
    survives.  ``num_rows`` caps the evaluated extent (a snapshot-pinned
    caller passes its pinned count); the default is the live row count.
    """
    names = sorted(referenced_columns(predicate))
    arrays = []
    layout: dict[str, int] = {}
    length = table.num_rows if num_rows is None else num_rows
    for i, name in enumerate(names):
        tail = name.rsplit(".", 1)[-1]
        # Vectorized views: typed columns filter via numpy boolean masks.
        arrays.append(table.vector(tail, min_rows=length))
        layout[name] = i
    selector = compile_predicate_columnar(predicate, layout)
    return lambda candidates: selector(arrays, candidates, length)


def rowid_mask(table: Table, predicate: Expr, num_rows: int | None = None):
    """``predicate`` evaluated over *every* rowid of ``table`` as a numpy
    boolean mask, or None when the vectorized path is unavailable.

    Expansion operators filter whole traversal batches with one fancy-index
    into this mask (``mask[targets]``) instead of a per-rowid Python call;
    the one-time cost is a single vectorized pass over the base table.
    Vectorizability is decided *structurally* via
    :func:`~repro.relational.expr.compile_predicate_mask`: predicates with
    no fully-vectorized shape (LIKE/IN forms, NULL-bearing or list-backed
    columns) decline, so a whole-table Python pass is never paid and
    callers keep their per-rowid checks.
    """
    from repro.exec import vector
    from repro.relational.expr import compile_predicate_mask

    if vector._np is None or not vector.numpy_enabled():
        return None
    names = sorted(referenced_columns(predicate))
    arrays = []
    layout: dict[str, int] = {}
    length = table.num_rows if num_rows is None else num_rows
    for i, name in enumerate(names):
        tail = name.rsplit(".", 1)[-1]
        arrays.append(table.vector(tail, min_rows=length))
        layout[name] = i
    mask_fn = compile_predicate_mask(predicate, layout)
    if mask_fn is None:
        return None
    return mask_fn(arrays, length)


def match_pattern(
    mapping: RGMapping,
    index: GraphIndex,
    pattern: PatternGraph,
    semantics: str = HOMOMORPHISM,
    start_rowids: list[int] | None = None,
) -> list[Binding]:
    """Enumerate all matches of ``pattern``; each binding maps every pattern
    vertex and edge variable to a rowid in its label's relation.

    ``start_rowids`` restricts the candidates of the traversal's start vertex
    — GLogue's sparsified sampling counts matches from a vertex sample and
    scales up (Sec 4.2.1, "sparsification technique").
    """
    if not pattern.is_connected():
        raise PlanError("the matching operator is defined over connected patterns")
    vertex_pred: dict[str, Callable[[int], bool] | None] = {}
    for name, pv in pattern.vertices.items():
        table = mapping.vertex_table(pv.label)
        vertex_pred[name] = (
            rowid_predicate(table, pv.predicate) if pv.predicate is not None else None
        )
    edge_pred: dict[str, Callable[[int], bool] | None] = {}
    for name, pe in pattern.edges.items():
        table = mapping.edge_table(pe.label)
        edge_pred[name] = (
            rowid_predicate(table, pe.predicate) if pe.predicate is not None else None
        )

    order = _edge_order(pattern)
    results: list[Binding] = []
    binding: Binding = {}

    start = order[0][0] if order else next(iter(pattern.vertices))

    def check_vertex(var: str, rowid: int) -> bool:
        pred = vertex_pred[var]
        return pred is None or pred(rowid)

    def extend(step: int) -> None:
        if step == len(order):
            results.append(dict(binding))
            return
        from_var, edge = order[step]
        to_var = edge.other(from_var)
        direction = edge.direction_from(from_var)
        em = mapping.edge(edge.label)
        # Endpoint labels must agree with the pattern's labels, otherwise
        # this edge label simply cannot match.
        src_pv = pattern.vertices[edge.src]
        dst_pv = pattern.vertices[edge.dst]
        if em.source_label != src_pv.label or em.target_label != dst_pv.label:
            return
        adjacency = index.adjacency(
            pattern.vertices[from_var].label, edge.label, direction
        )
        far = index.edge_index(edge.label).endpoint_rowids(direction)
        epred = edge_pred[edge.name]
        bound_to = binding.get(to_var)
        for edge_rowid in adjacency.edges_of(binding[from_var]):
            if epred is not None and not epred(edge_rowid):
                continue
            target = far[edge_rowid]
            if bound_to is not None:
                if target != bound_to:
                    continue
                binding[edge.name] = edge_rowid
                extend(step + 1)
                del binding[edge.name]
            else:
                if not check_vertex(to_var, target):
                    continue
                binding[to_var] = target
                binding[edge.name] = edge_rowid
                extend(step + 1)
                del binding[edge.name]
                del binding[to_var]

    start_table = mapping.vertex_table(pattern.vertices[start].label)
    candidates = (
        start_rowids if start_rowids is not None else range(start_table.num_rows)
    )
    for rowid in candidates:
        if not check_vertex(start, rowid):
            continue
        binding[start] = rowid
        extend(0)
        del binding[start]

    if semantics == HOMOMORPHISM:
        return results
    if semantics == ISOMORPHISM:
        return [b for b in results if _all_distinct(b, pattern, vertices=True)]
    if semantics == EDGE_DISTINCT:
        return [b for b in results if _all_distinct(b, pattern, vertices=False)]
    raise PlanError(f"unknown matching semantics {semantics!r}")


def traversal_start(pattern: PatternGraph) -> str:
    """The vertex variable the matcher enumerates first.

    Callers that pass ``start_rowids`` (GLogue sampling) must sample rowids
    of *this* variable's vertex relation.
    """
    order = _edge_order(pattern)
    return order[0][0] if order else next(iter(pattern.vertices))


def _edge_order(pattern: PatternGraph) -> list[tuple[str, PatternEdge]]:
    """Order edges so each step expands from an already-bound vertex."""
    if not pattern.edges:
        return []
    order: list[tuple[str, PatternEdge]] = []
    bound: set[str] = set()
    remaining = dict(pattern.edges)
    start = next(iter(sorted(pattern.vertices)))
    bound.add(start)
    while remaining:
        progressed = False
        for name in sorted(remaining):
            edge = remaining[name]
            if edge.src in bound or edge.dst in bound:
                from_var = edge.src if edge.src in bound else edge.dst
                order.append((from_var, edge))
                bound.add(edge.src)
                bound.add(edge.dst)
                del remaining[name]
                progressed = True
                break
        if not progressed:  # pragma: no cover - unreachable for connected P
            raise PlanError("pattern is not connected")
    return order


def _all_distinct(binding: Binding, pattern: PatternGraph, vertices: bool) -> bool:
    if vertices:
        elements = [
            (pattern.vertices[n].label, binding[n]) for n in pattern.vertices
        ]
    else:
        elements = [(pattern.edges[n].label, binding[n]) for n in pattern.edges]
    return len(set(elements)) == len(elements)


def count_matches(
    mapping: RGMapping,
    index: GraphIndex,
    pattern: PatternGraph,
    semantics: str = HOMOMORPHISM,
) -> int:
    """Convenience wrapper returning only the match count."""
    return len(match_pattern(mapping, index, pattern, semantics))
