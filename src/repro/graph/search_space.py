"""Search-space enumerators: graph-agnostic vs graph-aware (Thm 1, Fig 4a).

``agnostic_search_space(P)`` counts the plans a relational optimizer faces
after the graph-agnostic transformation (Lemma 1): all binary join trees —
bushy, commutativity counted, cross products excluded — over the translated
join graph, whose nodes are the ``n`` vertex relations and ``m`` edge
relations and whose edges connect each edge relation to its two endpoint
relations.  For a path pattern with ``m`` edges this join graph is a chain
of ``2m + 1`` relations and the count is ``2^(2m) · Catalan(2m)``.

``aware_search_space(P)`` counts decomposition trees under the paper's
constraints (induced connected sub-patterns; complete-star right children;
overlapping binary joins), using exactly the candidate enumeration of
:mod:`repro.graph.optimizer` so the counted space is the searched space.

Both return exact integers (Python bigints); the ratio grows exponentially
with pattern size, which is the content of Theorem 1.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import UnsupportedFeatureError
from repro.graph.optimizer import connected_proper_subsets
from repro.graph.pattern import PatternGraph


# ---------------------------------------------------------------------- #
# graph-agnostic: join trees over the translated SPJ join graph
# ---------------------------------------------------------------------- #


def translated_join_graph(pattern: PatternGraph) -> tuple[int, list[tuple[int, int]]]:
    """The SPJ translation's join graph: (node count, join edges).

    Nodes 0..n-1 are the pattern's vertex relations; nodes n..n+m-1 are the
    edge relations; each edge relation joins its two endpoint relations.
    """
    vertex_ids = {name: i for i, name in enumerate(sorted(pattern.vertices))}
    n = len(vertex_ids)
    edges: list[tuple[int, int]] = []
    for j, name in enumerate(sorted(pattern.edges)):
        pe = pattern.edges[name]
        edge_node = n + j
        edges.append((edge_node, vertex_ids[pe.src]))
        edges.append((edge_node, vertex_ids[pe.dst]))
    return n + len(pattern.edges), edges


def count_join_trees_chain(num_relations: int) -> int:
    """Ordered bushy join trees without cross products over a chain.

    ``f(k) = 2 Σ f(s) f(k − s)`` — equals ``2^(k-1) · Catalan(k-1)``.
    """
    return _chain_trees(num_relations)


@lru_cache(maxsize=None)
def _chain_trees(k: int) -> int:
    if k <= 1:
        return 1
    total = 0
    for s in range(1, k):
        total += _chain_trees(s) * _chain_trees(k - s)
    return 2 * total


def count_join_trees(num_nodes: int, join_edges: list[tuple[int, int]]) -> int:
    """Ordered bushy join trees without cross products over any join graph.

    Chain graphs use the O(k²) interval recurrence; general graphs use the
    subset DP (3^n submask enumeration), limited to 16 relations.
    """
    adjacency = [0] * num_nodes
    for a, b in join_edges:
        adjacency[a] |= 1 << b
        adjacency[b] |= 1 << a
    degrees = [bin(x).count("1") for x in adjacency]
    if _is_chain(num_nodes, adjacency, degrees):
        return count_join_trees_chain(num_nodes)
    if num_nodes > 16:
        raise UnsupportedFeatureError(
            "general join graphs are limited to 16 relations for exact counting"
        )
    full = (1 << num_nodes) - 1

    def connected(mask: int) -> bool:
        start = mask & -mask
        seen = start
        frontier = start
        while frontier:
            nxt = 0
            m = frontier
            while m:
                bit = m & -m
                m ^= bit
                nxt |= adjacency[bit.bit_length() - 1]
            nxt &= mask & ~seen
            seen |= nxt
            frontier = nxt
        return seen == mask

    counts: dict[int, int] = {}

    def count(mask: int) -> int:
        if mask in counts:
            return counts[mask]
        if mask & (mask - 1) == 0:
            counts[mask] = 1
            return 1
        total = 0
        # Enumerate submasks containing the lowest bit (unordered), double
        # for commutativity; both sides must be connected and joined.
        low = mask & -mask
        sub = (mask - 1) & mask
        while sub:
            if sub & low:
                rest = mask ^ sub
                if rest and connected(sub) and connected(rest):
                    # Cross-product exclusion: some join edge must cross.
                    crosses = any(
                        (adjacency[i] & rest)
                        for i in _bits(sub)
                    )
                    if crosses:
                        total += 2 * count(sub) * count(rest)
            sub = (sub - 1) & mask
        counts[mask] = total
        return total

    if not connected(full):
        return 0
    return count(full)


def _bits(mask: int):
    while mask:
        bit = mask & -mask
        mask ^= bit
        yield bit.bit_length() - 1


def _is_chain(num_nodes: int, adjacency: list[int], degrees: list[int]) -> bool:
    if num_nodes <= 2:
        return True
    if max(degrees) > 2 or degrees.count(1) != 2:
        return False
    # Connected with n-1 edges and max degree 2 and two endpoints => chain.
    edge_count = sum(degrees) // 2
    return edge_count == num_nodes - 1


def agnostic_search_space(pattern: PatternGraph) -> int:
    """Search-space size of the graph-agnostic approach for ``pattern``."""
    num_nodes, join_edges = translated_join_graph(pattern)
    return count_join_trees(num_nodes, join_edges)


# ---------------------------------------------------------------------- #
# graph-aware: decomposition trees
# ---------------------------------------------------------------------- #


def aware_search_space(pattern: PatternGraph, binary_join_limit: int = 64) -> int:
    """Search-space size of the graph-aware decomposition (paper Sec 3.1.3).

    Counts with the same candidate generation the optimizer searches:
    star steps (remove a vertex keeping connectivity — for a single edge
    this yields the two expand-from-either-endpoint plans of Fig 3) plus
    overlapping binary joins.
    """
    memo: dict[frozenset[str], int] = {}

    def count(vertex_set: frozenset[str]) -> int:
        if vertex_set in memo:
            return memo[vertex_set]
        if len(vertex_set) == 1:
            memo[vertex_set] = 1
            return 1
        sub = pattern.induced_subpattern(vertex_set)
        total = 0
        for name in sorted(vertex_set):
            rest_set = vertex_set - {name}
            rest = pattern.induced_subpattern(rest_set)
            if rest.num_vertices and rest.is_connected() and sub.incident_edges(name):
                total += count(frozenset(rest_set))
        if 4 <= len(vertex_set) <= binary_join_limit:
            for left_set in connected_proper_subsets(sub, vertex_set):
                remainder = vertex_set - left_set
                if not remainder:
                    continue
                border = {
                    v
                    for v in left_set
                    if any(nb in remainder for nb in sub.neighbors(v))
                }
                if not border:
                    continue
                right_set = frozenset(remainder | border)
                if right_set == vertex_set or len(right_set) < 2:
                    continue
                if not pattern.induced_subpattern(right_set).is_connected():
                    continue
                if min(vertex_set) not in left_set:
                    continue
                total += count(frozenset(left_set)) * count(right_set)
        memo[vertex_set] = total
        return total

    return count(frozenset(pattern.vertices))


def path_pattern(num_edges: int, vertex_label: str = "V", edge_label: str = "E") -> PatternGraph:
    """A path pattern with ``num_edges`` edges (the Fig 4a micro-benchmark)."""
    builder = PatternGraph.builder()
    for i in range(num_edges + 1):
        builder.vertex(f"v{i}", vertex_label)
    for i in range(num_edges):
        builder.edge(f"v{i}", f"v{i + 1}", edge_label)
    return builder.build()


def search_space_comparison(max_edges: int = 10) -> list[dict[str, float]]:
    """The Fig 4a series: per edge count, both spaces and their ratio."""
    rows = []
    for m in range(1, max_edges + 1):
        pattern = path_pattern(m)
        agnostic = agnostic_search_space(pattern)
        aware = aware_search_space(pattern)
        rows.append(
            {
                "edges": m,
                "agnostic": agnostic,
                "aware": aware,
                "ratio": agnostic / aware if aware else float("inf"),
            }
        )
    return rows
