"""Graph physical operators (Sec 3.2.2 of the paper) on the streaming engine.

These operators compute graph relations: rows of rowids, one column per
pattern variable (vertex or edge).  The column metadata is a
:class:`GraphVar` carrying the variable name, kind and label — the label is
static, so rows store bare rowids.

All operators share the relational engine's batched pull protocol
(:class:`repro.exec.Operator`): expansions stream bounded chunks, and only
the genuinely stateful operators (pattern hash joins, intersect caches,
distinct sets) hold — and charge — buffered rows.  The hash-build and
probe inner loops are the same :mod:`repro.exec.kernels` the relational
``HashJoin`` uses; there is one implementation, not two.

Operators:

* :class:`ScanVertex` — the plan entry point, matching a single-vertex
  pattern by scanning its vertex relation.
* :class:`ExpandEdge` + :class:`GetVertex` — Case II with a graph index:
  VE-index lookup for adjacent edges, then EV-index lookup for the far
  endpoint.
* :class:`Expand` — the fused operator TrimAndFuseRule produces: neighbors
  directly, edge column trimmed (multiplicity preserved — one output row per
  adjacent *edge*).
* :class:`ExpandIntersect` — Case III: close a complete star by intersecting
  the neighbor sets of all bound leaf vertices (wco-style).
* :class:`PatternHashJoin` — Case I: natural join of two graph relations on
  their common variables.
* :class:`EdgeTripleScan` — materializes ``(src, dst, edge)`` rowid triples
  of one edge relation; with the graph index it reads the EV columns, without
  it it performs the EVJoin of Eq. 3 as runtime hash joins (the no-index
  execution mode, e.g. RelGoHash).
* :class:`VertexFilter` / :class:`EdgeFilter` — attribute predicates over an
  already-bound variable (used when FilterIntoMatchRule is disabled).
* :class:`AllDistinct` — the paper's all-distinct operator for isomorphism /
  edge-distinct semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Iterator

from repro.errors import PlanError
from repro.exec.context import ExecutionContext, close_stream
from repro.exec.kernels import (
    ChunkSizer,
    build_hash_table,
    chunked,
    csr_expand_filtered,
    emit_batches,
    emit_columnar,
    expand_batches,
    filter_batches,
    grace_hash_join,
    probe_hash_table,
    probe_hash_table_columnar,
    replicate_columnar,
    rows_to_columnar,
    scalar_key,
    tuple_key,
)
from repro.exec.grouping import bindings_equal
from repro.exec.operator import Batch, Operator
from repro.exec.scheduler import morsel_bounds
from repro.exec.vector import (
    ColumnarBatch,
    as_values,
    index_vector,
    is_ndarray,
    take,
    vector_view,
)
from repro.graph.index import Adjacency, GraphIndex
from repro.graph.matching import rowid_mask, rowid_predicate, rowid_selection
from repro.graph.rgmapping import RGMapping
from repro.relational.expr import Expr


@dataclass(frozen=True)
class GraphVar:
    """One graph-relation column: pattern variable name, kind ('v'/'e'), label."""

    name: str
    kind: str
    label: str


class GraphOperator(Operator):
    """Base class; subclasses set ``output_vars`` in ``__init__``."""

    output_vars: list[GraphVar]

    def var_index(self, name: str) -> int:
        for i, var in enumerate(self.output_vars):
            if var.name == name:
                return i
        raise PlanError(f"variable {name!r} not in {[v.name for v in self.output_vars]}")


class ScanVertex(GraphOperator):
    """SCAN: match a single-vertex pattern by scanning its vertex relation.

    ``row_range`` restricts the scan to a contiguous ``(start, stop)``
    rowid slice — the morsel-driven scheduler clones the scan per morsel;
    emitted rowids stay global, so downstream expansions are unaffected.
    """

    #: Optional ``(start, stop)`` morsel bounds; None scans every vertex.
    row_range: tuple[int, int] | None = None

    def __init__(
        self,
        mapping: RGMapping,
        var: str,
        label: str,
        predicate: Expr | None = None,
    ):
        self.mapping = mapping
        self.var = var
        self.label = label
        self.predicate = predicate
        self.output_vars = [GraphVar(var, "v", label)]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._scan(ctx))

    def _scan(self, ctx: ExecutionContext) -> Iterator[Batch]:
        table = self.mapping.vertex_table(self.label)
        n = ctx.pin(table).num_rows
        first, last = morsel_bounds(self.row_range, n)
        size = ctx.batch_size
        check = (
            rowid_predicate(table, self.predicate)
            if self.predicate is not None
            else None
        )
        for start in range(first, last, size):
            stop = min(start + size, last)
            if check is None:
                yield [(i,) for i in range(start, stop)]
            else:
                yield [(i,) for i in range(start, stop) if check(i)]

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._scan_columnar(ctx))

    def _scan_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        """Zero-copy vertex scan: the single rowid column *is* ``range(n)``
        and each chunk is a selection over it; the attribute predicate, if
        any, vectorizes over the vertex table's base columns."""
        table = self.mapping.vertex_table(self.label)
        n = ctx.pin(table).num_rows
        first, last = morsel_bounds(self.row_range, n)
        size = ctx.batch_size
        rowids = index_vector(n)
        selector = (
            rowid_selection(table, self.predicate, num_rows=n)
            if self.predicate is not None
            else None
        )
        for start in range(first, last, size):
            chunk = range(start, min(start + size, last))
            if selector is None:
                sel = chunk
            else:
                # A chunk spanning the whole relation evaluates as
                # ``candidates=None`` — full-column compares, no per-chunk
                # index gather.
                sel = selector(None if len(chunk) == n else chunk)
                if sel is None:
                    sel = chunk
            if len(sel):
                yield ColumnarBatch([rowids], n, sel)

    def _label(self) -> str:
        pred = f" ({self.predicate})" if self.predicate is not None else ""
        return f"SCAN {self.var}:{self.label}{pred}"


def _expand_columnar(
    source: Iterator[ColumnarBatch],
    ctx: ExecutionContext,
    from_idx: int,
    adjacency: "Adjacency",
    edge_index,
    direction: str,
    trim_edge: bool,
    epred=None,
    vpred=None,
    emask=None,
    vmask=None,
) -> Iterator[ColumnarBatch]:
    """Shared columnar adjacency expansion.

    Walks each input batch's bound-vertex column once, accumulating a
    parent-position vector plus the new column's values — adjacent edge
    rowids when ``trim_edge`` is False (EXPAND_EDGE), or far endpoints of
    ``edge_index`` (fused EXPAND).  ``epred`` / ``vpred`` are optional
    per-rowid checks on the traversed edge / target vertex; ``emask`` /
    ``vmask`` are their whole-table boolean-mask equivalents (see
    :func:`~repro.graph.matching.rowid_mask`) when numpy is available.

    When the CSR vector views are ndarrays and every predicate has a mask,
    the whole batch expands as one repeat/cumsum/fancy-index pass
    (:func:`~repro.exec.kernels.csr_expand_vectors`) and predicates filter
    the expansion with one fancy-index per mask — the traversal hot loop of
    the typed-storage engine, with no per-vertex Python work.  Vectorized
    output is chunked at the full ``ctx.batch_size``: the chunks are
    column-backed (scalar-sized in-flight state), so the adaptive fan-out
    shrinking that bounds the Python walk's tuple chunks would only
    fragment the numpy work.

    The scalar fallback walks the index's *raw typed arrays* (never the
    ndarray views), so its list-built output columns hold plain Python
    ints — numpy scalars must not leak into row tuples.
    """
    offsets_v, edges_v = adjacency.vectors()
    far_v = edge_index.endpoint_vector(direction) if trim_edge else None
    np_ready = (
        (epred is None or emask is not None)
        and (vpred is None or vmask is not None)
        and is_ndarray(offsets_v)
        and is_ndarray(edges_v)
        and (not trim_edge or is_ndarray(far_v))
    )
    if np_ready:
        for cb in source:
            # Bound-vertex columns are rowids by construction (never NULL),
            # so the batch converts to an index array directly.
            vertices = cb.column_vector(from_idx)
            expanded = csr_expand_filtered(vertices, offsets_v, edges_v, emask)
            if expanded is None:
                continue
            parents, edge_ids = expanded
            new_column = edge_ids if far_v is None else far_v[edge_ids]
            if vmask is not None and far_v is not None:
                keep = vmask[new_column]
                if not keep.all():
                    parents, new_column = parents[keep], new_column[keep]
            total = len(parents)
            size = ctx.batch_size
            for start in range(0, total, size):
                stop = min(start + size, total)
                yield replicate_columnar(
                    cb, parents[start:stop], [new_column[start:stop]]
                )
        return
    offsets, edge_rowids = adjacency.offsets, adjacency.edge_rowids
    far = edge_index.endpoint_rowids(direction) if trim_edge else None
    sizer = ChunkSizer(ctx)
    for cb in source:
        vertices = cb.column(from_idx)
        parents: list[int] = []
        new_values: list[int] = []
        flushed = 0
        if epred is None and vpred is None:
            for j, v in enumerate(vertices):
                lo, hi = offsets[v], offsets[v + 1]
                if lo == hi:
                    continue
                parents.extend([j] * (hi - lo))
                edges = edge_rowids[lo:hi]
                if far is None:
                    new_values.extend(edges)
                else:
                    new_values.extend([far[e] for e in edges])
                if len(parents) >= sizer.size:
                    flushed += len(parents)
                    yield replicate_columnar(cb, parents, [new_values])
                    parents, new_values = [], []
        else:
            for j, v in enumerate(vertices):
                kept = 0
                for e in edge_rowids[offsets[v] : offsets[v + 1]]:
                    if epred is not None and not epred(e):
                        continue
                    if far is None:
                        new_values.append(e)
                    else:
                        target = far[e]
                        if vpred is not None and not vpred(target):
                            continue
                        new_values.append(target)
                    kept += 1
                if kept == 1:
                    parents.append(j)
                elif kept:
                    parents.extend([j] * kept)
                if len(parents) >= sizer.size:
                    flushed += len(parents)
                    yield replicate_columnar(cb, parents, [new_values])
                    parents, new_values = [], []
        sizer.observe(len(vertices), flushed + len(parents))
        if parents:
            yield replicate_columnar(cb, parents, [new_values])


class ExpandEdge(GraphOperator):
    """EXPAND_EDGE: append the adjacent-edge column via the VE-index."""

    def __init__(
        self,
        child: GraphOperator,
        index: GraphIndex,
        mapping: RGMapping,
        from_var: str,
        edge_var: str,
        edge_label: str,
        direction: str,
        edge_predicate: Expr | None = None,
    ):
        self.child = child
        self.index = index
        self.mapping = mapping
        self.from_var = from_var
        self.edge_var = edge_var
        self.edge_label = edge_label
        self.direction = direction
        self.edge_predicate = edge_predicate
        self.output_vars = list(child.output_vars) + [GraphVar(edge_var, "e", edge_label)]

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        from_idx = self.child.var_index(self.from_var)
        from_label = self.child.output_vars[from_idx].label
        adjacency = self.index.adjacency(from_label, self.edge_label, self.direction)
        offsets, edge_rowids = adjacency.offsets, adjacency.edge_rowids
        epred = None
        if self.edge_predicate is not None:
            epred = rowid_predicate(
                self.mapping.edge_table(self.edge_label), self.edge_predicate
            )

        if epred is None:

            def expand(row: tuple, out: list) -> None:
                v = row[from_idx]
                out.extend(
                    [row + (e,) for e in edge_rowids[offsets[v] : offsets[v + 1]]]
                )

        else:

            def expand(row: tuple, out: list) -> None:
                v = row[from_idx]
                out.extend(
                    [
                        row + (e,)
                        for e in edge_rowids[offsets[v] : offsets[v + 1]]
                        if epred(e)
                    ]
                )

        return emit_batches(
            ctx,
            self._label(),
            expand_batches(self.child.batches(ctx), expand, ctx),
        )

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        from_idx = self.child.var_index(self.from_var)
        from_label = self.child.output_vars[from_idx].label
        adjacency = self.index.adjacency(from_label, self.edge_label, self.direction)
        epred = emask = None
        if self.edge_predicate is not None:
            edge_table = self.mapping.edge_table(self.edge_label)
            epred = rowid_predicate(edge_table, self.edge_predicate)
            emask = rowid_mask(edge_table, self.edge_predicate)
        yield from _expand_columnar(
            self.child.columnar_batches(ctx),
            ctx,
            from_idx,
            adjacency,
            None,
            self.direction,
            trim_edge=False,
            epred=epred,
            emask=emask,
        )

    def _label(self) -> str:
        return f"EXPAND_EDGE {self.from_var} -[{self.edge_label} {self.direction}]-> {self.edge_var}"


class GetVertex(GraphOperator):
    """GET_VERTEX: append the far endpoint of a bound edge via the EV-index."""

    def __init__(
        self,
        child: GraphOperator,
        index: GraphIndex,
        mapping: RGMapping,
        edge_var: str,
        to_var: str,
        to_label: str,
        direction: str,
        vertex_predicate: Expr | None = None,
    ):
        self.child = child
        self.index = index
        self.mapping = mapping
        self.edge_var = edge_var
        self.to_var = to_var
        self.to_label = to_label
        self.direction = direction
        self.vertex_predicate = vertex_predicate
        self.output_vars = list(child.output_vars) + [GraphVar(to_var, "v", to_label)]

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        edge_idx = self.child.var_index(self.edge_var)
        edge_label = self.child.output_vars[edge_idx].label
        far = self.index.edge_index(edge_label).endpoint_rowids(self.direction)
        vpred = None
        if self.vertex_predicate is not None:
            vpred = rowid_predicate(
                self.mapping.vertex_table(self.to_label), self.vertex_predicate
            )
        for batch in self.child.batches(ctx):
            if vpred is None:
                yield [row + (far[row[edge_idx]],) for row in batch]
                continue
            out = []
            for row in batch:
                target = far[row[edge_idx]]
                if vpred(target):
                    out.append(row + (target,))
            if out:
                yield out

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        edge_idx = self.child.var_index(self.edge_var)
        edge_label = self.child.output_vars[edge_idx].label
        far = self.index.edge_index(edge_label).endpoint_vector(self.direction)
        vpred = None
        if self.vertex_predicate is not None:
            vpred = rowid_predicate(
                self.mapping.vertex_table(self.to_label), self.vertex_predicate
            )
        for cb in self.child.columnar_batches(ctx):
            # One gather through the EV column — native when both the bound
            # edge column and the index array live in the array domain.
            targets = take(far, cb.column_vector(edge_idx))
            if vpred is not None:
                # Normalize to Python values first: the filtered list below
                # becomes an output column, and numpy scalars must not leak
                # into row tuples.
                targets = as_values(targets)
                keep = [j for j, t in enumerate(targets) if vpred(t)]
                if not keep:
                    continue
                if len(keep) < len(targets):
                    cb = cb.take(keep)
                    targets = [targets[j] for j in keep]
            columns = [cb.column_vector(i) for i in range(cb.width)]
            columns.append(targets)
            yield ColumnarBatch(columns, len(targets), None)

    def _label(self) -> str:
        return f"GET_VERTEX {self.edge_var} -> {self.to_var}:{self.to_label}"


class Expand(GraphOperator):
    """EXPAND: the fused EXPAND_EDGE + GET_VERTEX (TrimAndFuseRule output).

    Emits one row per adjacent edge, but only the neighbor column — edge
    multiplicity (parallel edges) is preserved without materializing the
    edge variable.
    """

    def __init__(
        self,
        child: GraphOperator,
        index: GraphIndex,
        mapping: RGMapping,
        from_var: str,
        to_var: str,
        to_label: str,
        edge_label: str,
        direction: str,
        edge_predicate: Expr | None = None,
        vertex_predicate: Expr | None = None,
        closing: bool = False,
    ):
        self.child = child
        self.index = index
        self.mapping = mapping
        self.from_var = from_var
        self.to_var = to_var
        self.to_label = to_label
        self.edge_label = edge_label
        self.direction = direction
        self.edge_predicate = edge_predicate
        self.vertex_predicate = vertex_predicate
        # ``closing`` marks an expansion whose target is already bound: the
        # operator then checks equality instead of appending a column.
        self.closing = closing
        if closing:
            self.output_vars = list(child.output_vars)
        else:
            self.output_vars = list(child.output_vars) + [GraphVar(to_var, "v", to_label)]

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        from_idx = self.child.var_index(self.from_var)
        from_label = self.child.output_vars[from_idx].label
        adjacency = self.index.adjacency(from_label, self.edge_label, self.direction)
        offsets, edge_rowids = adjacency.offsets, adjacency.edge_rowids
        far = self.index.edge_index(self.edge_label).endpoint_rowids(self.direction)
        epred = None
        if self.edge_predicate is not None:
            epred = rowid_predicate(
                self.mapping.edge_table(self.edge_label), self.edge_predicate
            )
        vpred = None
        if self.vertex_predicate is not None:
            vpred = rowid_predicate(
                self.mapping.vertex_table(self.to_label), self.vertex_predicate
            )
        to_idx = self.child.var_index(self.to_var) if self.closing else -1

        if not self.closing and epred is None and vpred is None:
            # Fast path: emit one row per adjacent edge, inline loop with
            # bounded, fan-out-adaptive flushing — the traversal hot path.
            def stream() -> Iterator[Batch]:
                sizer = ChunkSizer(ctx)
                out: list[tuple] = []
                for batch in self.child.batches(ctx):
                    carry = len(out)
                    flushed = 0
                    for row in batch:
                        v = row[from_idx]
                        out.extend(
                            [
                                row + (far[e],)
                                for e in edge_rowids[offsets[v] : offsets[v + 1]]
                            ]
                        )
                        if len(out) >= sizer.size:
                            flushed += len(out)
                            yield out
                            out = []
                    sizer.observe(len(batch), flushed + len(out) - carry)
                if out:
                    yield out

            return emit_batches(ctx, self.cached_label(), stream())

        def expand(row: tuple, out: list) -> None:
            v = row[from_idx]
            bound = row[to_idx] if self.closing else None
            for pos in range(offsets[v], offsets[v + 1]):
                e = edge_rowids[pos]
                if epred is not None and not epred(e):
                    continue
                target = far[e]
                if self.closing:
                    if target == bound:
                        out.append(row)
                    continue
                if vpred is not None and not vpred(target):
                    continue
                out.append(row + (target,))

        return emit_batches(
            ctx,
            self._label(),
            expand_batches(self.child.batches(ctx), expand, ctx),
        )

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        from_idx = self.child.var_index(self.from_var)
        from_label = self.child.output_vars[from_idx].label
        adjacency = self.index.adjacency(from_label, self.edge_label, self.direction)
        edge_index = self.index.edge_index(self.edge_label)
        epred = emask = None
        if self.edge_predicate is not None:
            edge_table = self.mapping.edge_table(self.edge_label)
            epred = rowid_predicate(edge_table, self.edge_predicate)
            emask = rowid_mask(edge_table, self.edge_predicate)
        source = self.child.columnar_batches(ctx)
        if not self.closing:
            # Traversal hot path: one row per adjacent edge, neighbor
            # column only.
            vpred = vmask = None
            if self.vertex_predicate is not None:
                vertex_table = self.mapping.vertex_table(self.to_label)
                vpred = rowid_predicate(vertex_table, self.vertex_predicate)
                vmask = rowid_mask(vertex_table, self.vertex_predicate)
            yield from _expand_columnar(
                source,
                ctx,
                from_idx,
                adjacency,
                edge_index,
                self.direction,
                trim_edge=True,
                epred=epred,
                vpred=vpred,
                emask=emask,
                vmask=vmask,
            )
            return
        to_idx = self.child.var_index(self.to_var)
        offsets_v, edges_v = adjacency.vectors()
        far_v = edge_index.endpoint_vector(self.direction)
        np_ready = (
            (epred is None or emask is not None)
            and is_ndarray(offsets_v)
            and is_ndarray(edges_v)
            and is_ndarray(far_v)
        )
        # The scalar walk reads the raw typed arrays: plain Python values
        # only, whatever the batch's columns are backed by.
        offsets, edge_rowids = adjacency.offsets, adjacency.edge_rowids
        far = edge_index.endpoint_rowids(self.direction)
        for cb in source:
            if np_ready:
                bounds = vector_view(cb.column_vector(to_idx))
                if is_ndarray(bounds):
                    # Vectorized closing: expand the whole batch, then keep
                    # the expansions whose far endpoint equals the
                    # already-bound target (multiplicity = one kept
                    # position per parallel edge, exactly as the scalar
                    # walk counts hits).
                    vertices = cb.column_vector(from_idx)
                    expanded = csr_expand_filtered(
                        vertices, offsets_v, edges_v, emask
                    )
                    if expanded is None:
                        continue
                    parents, edge_ids = expanded
                    hit = far_v[edge_ids] == bounds[parents]
                    keep = parents[hit]
                    if len(keep):
                        yield cb.take(keep).compact()
                    continue
            vertices = cb.column(from_idx)
            bounds_l = cb.column(to_idx)
            keep_l: list[int] = []
            for j, (v, bound) in enumerate(zip(vertices, bounds_l)):
                hits = 0
                for e in edge_rowids[offsets[v] : offsets[v + 1]]:
                    if epred is not None and not epred(e):
                        continue
                    if far[e] == bound:
                        hits += 1
                if hits == 1:
                    keep_l.append(j)
                elif hits:
                    keep_l.extend([j] * hits)
            if keep_l:
                yield cb.take(keep_l).compact()

    def _label(self) -> str:
        kind = "EXPAND(closing)" if self.closing else "EXPAND"
        return f"{kind} {self.from_var} -[{self.edge_label} {self.direction}]-> {self.to_var}"


@dataclass(frozen=True)
class StarLeg:
    """One leg of a complete star: bound leaf -> (new) root.

    ``direction`` is the traversal direction *leaving the bound leaf*.
    ``edge_var`` is None when the edge column is trimmed.
    """

    from_var: str
    edge_label: str
    direction: str
    edge_var: str | None = None
    edge_predicate: Expr | None = None


class ExpandIntersect(GraphOperator):
    """EXPAND_INTERSECT: close a complete star by neighbor intersection.

    For each input row, each leg contributes a map
    ``neighbor rowid -> [edge rowids]`` from its leaf's adjacency; the root
    candidates are the intersection of the key sets.  Legs are processed in
    ascending adjacency-size order so the smallest set drives the probe.
    Homomorphism semantics: parallel edges multiply — either as explicit
    edge-variable combinations (``with edge vars``) or as row multiplicity
    (edge columns trimmed).

    The per-(leg, vertex) neighbor-map caches are bounded by the adjacency
    lists' total size — index-shaped acceleration state, like the graph
    index itself — so they are *not* charged against the memory budget,
    which models materialized row intermediates (charging them would let
    index-sized state flip the paper's calibrated OOM entries at scale).
    """

    def __init__(
        self,
        child: GraphOperator,
        index: GraphIndex,
        mapping: RGMapping,
        legs: list[StarLeg],
        to_var: str,
        to_label: str,
        vertex_predicate: Expr | None = None,
    ):
        if len(legs) < 2:
            raise PlanError("EXPAND_INTERSECT needs at least two legs; use EXPAND")
        self.child = child
        self.index = index
        self.mapping = mapping
        self.legs = legs
        self.to_var = to_var
        self.to_label = to_label
        self.vertex_predicate = vertex_predicate
        self.output_vars = list(child.output_vars)
        for leg in legs:
            if leg.edge_var is not None:
                self.output_vars.append(GraphVar(leg.edge_var, "e", leg.edge_label))
        self.output_vars.append(GraphVar(to_var, "v", to_label))

    def children(self) -> list[Operator]:
        return [self.child]

    def _leg_state(self):
        leg_state = []
        for leg in self.legs:
            from_idx = self.child.var_index(leg.from_var)
            from_label = self.child.output_vars[from_idx].label
            adjacency = self.index.adjacency(from_label, leg.edge_label, leg.direction)
            far = self.index.edge_index(leg.edge_label).endpoint_rowids(leg.direction)
            epred = None
            if leg.edge_predicate is not None:
                epred = rowid_predicate(
                    self.mapping.edge_table(leg.edge_label), leg.edge_predicate
                )
            leg_state.append((leg, from_idx, adjacency, far, epred))
        return leg_state

    def _vertex_check(self):
        if self.vertex_predicate is None:
            return None
        return rowid_predicate(
            self.mapping.vertex_table(self.to_label), self.vertex_predicate
        )

    def _neighbor_map_fn(self, leg_state, caches):
        def neighbor_map(i: int, v: int) -> dict[int, list[int]]:
            leg, from_idx, adjacency, far, epred = leg_state[i]
            nbrs = caches[i].get(v)
            if nbrs is None:
                nbrs = {}
                for pos in range(adjacency.offsets[v], adjacency.offsets[v + 1]):
                    e = adjacency.edge_rowids[pos]
                    if epred is not None and not epred(e):
                        continue
                    nbrs.setdefault(far[e], []).append(e)
                caches[i][v] = nbrs
            return nbrs

        return neighbor_map

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        if any(leg.edge_var is not None for leg in self.legs):
            # Explicit edge-variable combinations take the row path.
            return Operator.columnar_batches(self, ctx)
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        """Columnar star closing: bound-leaf columns are extracted once per
        batch; each row contributes ``multiplicity`` replicas per common
        neighbor through a parent-position vector (no row tuples)."""
        leg_state = self._leg_state()
        vpred = self._vertex_check()
        caches: list[dict[int, dict[int, list[int]]]] = [{} for _ in leg_state]
        neighbor_map = self._neighbor_map_fn(leg_state, caches)
        nlegs = len(leg_state)
        sizer = ChunkSizer(ctx)
        for cb in self.child.columnar_batches(ctx):
            leg_cols = [cb.column(state[1]) for state in leg_state]
            parents: list[int] = []
            neighbors: list[int] = []
            flushed = 0
            for j in range(len(cb)):
                per_leg = [neighbor_map(i, leg_cols[i][j]) for i in range(nlegs)]
                order = sorted(range(nlegs), key=lambda i: len(per_leg[i]))
                smallest = per_leg[order[0]]
                rest = order[1:]
                for nbr in smallest:
                    if any(nbr not in per_leg[i] for i in rest):
                        continue
                    if vpred is not None and not vpred(nbr):
                        continue
                    multiplicity = 1
                    for m in per_leg:
                        multiplicity *= len(m[nbr])
                    parents.extend([j] * multiplicity)
                    neighbors.extend([nbr] * multiplicity)
                if len(parents) >= sizer.size:
                    flushed += len(parents)
                    yield replicate_columnar(cb, parents, [neighbors])
                    parents, neighbors = [], []
            sizer.observe(len(cb), flushed + len(parents))
            if parents:
                yield replicate_columnar(cb, parents, [neighbors])

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        leg_state = self._leg_state()
        vpred = self._vertex_check()
        emit_edges = [leg.edge_var is not None for leg in self.legs]
        any_edges = any(emit_edges)
        # Neighbor maps are cached per (leg, vertex): input rows revisit the
        # same bound vertices constantly, and map building dominates EI cost.
        caches: list[dict[int, dict[int, list[int]]]] = [{} for _ in leg_state]
        if (
            len(leg_state) == 2
            and not any_edges
            and vpred is None
            and all(s[4] is None for s in leg_state)
        ):
            yield from self._stream_two_legs(ctx, leg_state, caches)
            return

        neighbor_map = self._neighbor_map_fn(leg_state, caches)

        def expand(row: tuple, out: list) -> None:
            # Build neighbor -> [edges] per leg; smallest first.
            per_leg = [
                neighbor_map(i, row[leg_state[i][1]])
                for i in range(len(leg_state))
            ]
            order = sorted(range(len(per_leg)), key=lambda i: len(per_leg[i]))
            smallest = per_leg[order[0]]
            common = [
                nbr
                for nbr in smallest
                if all(nbr in per_leg[i] for i in order[1:])
            ]
            for nbr in common:
                if vpred is not None and not vpred(nbr):
                    continue
                if any_edges:
                    combos = iter_product(
                        *(per_leg[i][nbr] for i in range(len(per_leg)))
                    )
                    for combo in combos:
                        emitted = tuple(
                            e for e, keep in zip(combo, emit_edges) if keep
                        )
                        out.append(row + emitted + (nbr,))
                else:
                    multiplicity = 1
                    for i in range(len(per_leg)):
                        multiplicity *= len(per_leg[i][nbr])
                    extended = row + (nbr,)
                    out.extend([extended] * multiplicity)

        yield from expand_batches(self.child.batches(ctx), expand, ctx)

    def _stream_two_legs(
        self, ctx: ExecutionContext, leg_state, caches
    ) -> Iterator[Batch]:
        # Two-leg fast path (triangle/square closing without edge vars):
        # intersect two cached neighbor maps per row, no sorting.
        (leg_a, idx_a, adj_a, far_a, _), (leg_b, idx_b, adj_b, far_b, _) = leg_state
        cache_a, cache_b = caches

        def expand(row: tuple, out: list) -> None:
            va, vb = row[idx_a], row[idx_b]
            nbrs_a = cache_a.get(va)
            if nbrs_a is None:
                nbrs_a = {}
                for e in adj_a.edge_rowids[adj_a.offsets[va] : adj_a.offsets[va + 1]]:
                    nbrs_a.setdefault(far_a[e], []).append(e)
                cache_a[va] = nbrs_a
            nbrs_b = cache_b.get(vb)
            if nbrs_b is None:
                nbrs_b = {}
                for e in adj_b.edge_rowids[adj_b.offsets[vb] : adj_b.offsets[vb + 1]]:
                    nbrs_b.setdefault(far_b[e], []).append(e)
                cache_b[vb] = nbrs_b
            if len(nbrs_b) < len(nbrs_a):
                nbrs_a, nbrs_b = nbrs_b, nbrs_a
            for nbr, edges_a in nbrs_a.items():
                edges_b = nbrs_b.get(nbr)
                if edges_b is None:
                    continue
                multiplicity = len(edges_a) * len(edges_b)
                extended = row + (nbr,)
                if multiplicity == 1:
                    out.append(extended)
                else:
                    out.extend([extended] * multiplicity)

        yield from expand_batches(self.child.batches(ctx), expand, ctx)

    def _label(self) -> str:
        legs = ", ".join(f"{leg.from_var}-[{leg.edge_label}]" for leg in self.legs)
        return f"EXPAND_INTERSECT ({legs}) -> {self.to_var}:{self.to_label}"


class EdgeTripleScan(GraphOperator):
    """Scan one edge relation as (src, dst, edge) rowid triples.

    With the graph index this reads the precomputed EV columns; without it,
    it executes the EVJoin of Eq. 3 as two runtime hash joins (building
    pk -> rowid maps over the endpoint tables), which is exactly what a
    relational engine without predefined joins must do.

    ``row_range`` restricts the scan to a contiguous ``(start, stop)``
    slice of the edge relation (morsel-driven scheduling); the scheduler
    only splits index-backed scans — the runtime EVJoin derives whole-table
    endpoint columns, which morsels would recompute.
    """

    #: Optional ``(start, stop)`` morsel bounds; None scans every edge.
    row_range: tuple[int, int] | None = None

    def __init__(
        self,
        mapping: RGMapping,
        edge_label: str,
        src_var: str,
        dst_var: str,
        edge_var: str | None,
        index: GraphIndex | None = None,
        edge_predicate: Expr | None = None,
        src_predicate: Expr | None = None,
        dst_predicate: Expr | None = None,
    ):
        self.mapping = mapping
        self.edge_label = edge_label
        self.src_var = src_var
        self.dst_var = dst_var
        self.edge_var = edge_var
        self.index = index
        self.edge_predicate = edge_predicate
        self.src_predicate = src_predicate
        self.dst_predicate = dst_predicate
        em = mapping.edge(edge_label)
        self.output_vars = [
            GraphVar(src_var, "v", em.source_label),
            GraphVar(dst_var, "v", em.target_label),
        ]
        if edge_var is not None:
            self.output_vars.append(GraphVar(edge_var, "e", edge_label))

    def _sources(self, ctx):
        """(src_rowids, dst_rowids, epred, spred, dpred) for this scan."""
        em = self.mapping.edge(self.edge_label)
        edge_table = self.mapping.edge_table(self.edge_label)
        if self.index is not None:
            ev = self.index.edge_index(self.edge_label)
            src_rowids, dst_rowids = ev.src_rowids, ev.dst_rowids
        else:
            # Runtime EVJoin: probe the endpoint tables' primary-key hash
            # indexes (built once per table, like any engine's PK index).
            # The foreign-key columns are sliced to the pinned extent, so
            # edges appended after the query's epoch are never resolved.
            n = ctx.pin(edge_table).num_rows
            src_map = self.mapping.vertex_table(em.source_label).pk_index()
            dst_map = self.mapping.vertex_table(em.target_label).pk_index()
            src_fk = edge_table.column(em.source_key)[:n]
            dst_fk = edge_table.column(em.target_key)[:n]
            src_rowids = list(map(src_map.__getitem__, src_fk))
            dst_rowids = list(map(dst_map.__getitem__, dst_fk))
        epred = (
            rowid_predicate(edge_table, self.edge_predicate)
            if self.edge_predicate is not None
            else None
        )
        spred = (
            rowid_predicate(
                self.mapping.vertex_table(em.source_label), self.src_predicate
            )
            if self.src_predicate is not None
            else None
        )
        dpred = (
            rowid_predicate(
                self.mapping.vertex_table(em.target_label), self.dst_predicate
            )
            if self.dst_predicate is not None
            else None
        )
        return src_rowids, dst_rowids, epred, spred, dpred

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        """Zero-copy triple scan: the EV columns (or the EVJoin-derived
        rowid lists) are shared across all batches; filters shrink the
        per-chunk selection vector."""
        src_rowids, dst_rowids, epred, spred, dpred = self._sources(ctx)
        if self.index is not None:
            ev = self.index.edge_index(self.edge_label)
            columns: list = [ev.near_vector("out"), ev.endpoint_vector("out")]
        else:
            columns = [vector_view(src_rowids), vector_view(dst_rowids)]
        n = min(
            ctx.pin(self.mapping.edge_table(self.edge_label)).num_rows,
            len(src_rowids),
        )
        first, last = morsel_bounds(self.row_range, n)
        if self.edge_var is not None:
            columns.append(index_vector(n))
        size = ctx.batch_size
        for start in range(first, last, size):
            chunk = range(start, min(start + size, last))
            if epred is None and spred is None and dpred is None:
                yield ColumnarBatch(columns, n, chunk)
                continue
            sel = [
                e
                for e in chunk
                if (epred is None or epred(e))
                and (spred is None or spred(src_rowids[e]))
                and (dpred is None or dpred(dst_rowids[e]))
            ]
            if sel:
                yield ColumnarBatch(columns, n, sel)

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        edge_table = self.mapping.edge_table(self.edge_label)
        src_rowids, dst_rowids, epred, spred, dpred = self._sources(ctx)
        with_edge = self.edge_var is not None
        n = min(ctx.pin(edge_table).num_rows, len(src_rowids))
        first, last = morsel_bounds(self.row_range, n)
        size = ctx.batch_size
        if epred is None and spred is None and dpred is None:
            # No filters: assemble the triples at C speed, chunk by chunk.
            for start in range(first, last, size):
                stop = min(start + size, last)
                if with_edge:
                    yield list(
                        zip(
                            src_rowids[start:stop],
                            dst_rowids[start:stop],
                            range(start, stop),
                        )
                    )
                else:
                    yield list(
                        zip(src_rowids[start:stop], dst_rowids[start:stop])
                    )
            return
        for start in range(first, last, size):
            stop = min(start + size, last)
            out: list[tuple] = []
            for e in range(start, stop):
                if epred is not None and not epred(e):
                    continue
                s, d = src_rowids[e], dst_rowids[e]
                if spred is not None and not spred(s):
                    continue
                if dpred is not None and not dpred(d):
                    continue
                out.append((s, d, e) if with_edge else (s, d))
            if out:
                yield out

    def _label(self) -> str:
        mode = "EV-index" if self.index is not None else "EVJoin"
        return (
            f"EDGE_SCAN {self.src_var} -[{self.edge_label}]-> {self.dst_var} ({mode})"
        )


class PatternHashJoin(GraphOperator):
    """Natural join of two graph relations on their common variables.

    The build side is chosen adaptively (smaller input builds, as in any
    hash join) without materializing the probe side: the right input is
    drained first, then left batches are buffered only until they outnumber
    it — at which point the right side builds and the remaining left input
    streams straight through the shared probe kernel.  Join *output* always
    streams, so only the inputs' buffered rows charge the memory budget;
    exploding star materializations (the NoEI / naive plans) still trip the
    paper's OOMs during their build drain.
    """

    def __init__(self, left: GraphOperator, right: GraphOperator):
        self.left = left
        self.right = right
        left_names = [v.name for v in left.output_vars]
        right_names = [v.name for v in right.output_vars]
        self.join_vars = [n for n in left_names if n in right_names]
        if not self.join_vars:
            raise PlanError("pattern join requires common variables (Eq. 2)")
        self.right_keep = [
            i for i, v in enumerate(right.output_vars) if v.name not in left_names
        ]
        self.output_vars = list(left.output_vars) + [
            right.output_vars[i] for i in self.right_keep
        ]

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    def _join_setup(self):
        l_idx = [self.left.var_index(n) for n in self.join_vars]
        r_idx = [self.right.var_index(n) for n in self.join_vars]
        keep = self.right_keep
        if len(r_idx) == 1:
            right_key, left_key = scalar_key(r_idx[0]), scalar_key(l_idx[0])
        else:
            right_key, left_key = tuple_key(r_idx), tuple_key(l_idx)
        trim = (
            (lambda row: ())
            if not keep
            else (lambda row: tuple(row[i] for i in keep))
        )
        return l_idx, r_idx, left_key, right_key, trim

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        """Columnar pattern join with the same adaptive build-side choice as
        the row path.  Both *buffered* inputs materialize as row tuples
        (they are exactly the state the memory budget charges — the NoEI
        OOMs trip here); the streaming probe side stays columnar, with keys
        extracted whole-column-at-a-time."""
        if ctx.spill_limit() is not None:
            # Grace join works through the row boundary; wrap its stream.
            stream = self._stream(ctx)
            try:
                yield from rows_to_columnar(stream)
            finally:
                close_stream(stream)
            return
        l_idx, _, left_key, right_key, trim = self._join_setup()
        size = ctx.batch_size
        right_buffer = ctx.buffer(f"{self._label()} build")
        left_buffer = ctx.buffer(f"{self._label()} lookahead")
        right_stream = None
        left_stream = None
        try:
            right_rows: list[tuple] = []
            right_stream = self.right.columnar_batches(ctx)
            for cb in right_stream:
                batch = cb.to_rows()
                right_rows.extend(batch)
                right_buffer.grow(len(batch))
            left_stream = self.left.columnar_batches(ctx)
            left_prefix: list[tuple] = []
            left_is_smaller = True
            for cb in left_stream:
                batch = cb.to_rows()
                left_prefix.extend(batch)
                if len(left_prefix) > len(right_rows):
                    left_is_smaller = False
                    left_buffer.release()
                    break
                left_buffer.grow(len(batch))
            if left_is_smaller:
                table = build_hash_table(chunked(left_prefix, size), left_key, None)
                lookup = table.get
                out: list[tuple] = []
                for rrow in right_rows:
                    matches = lookup(right_key(rrow))
                    if not matches:
                        continue
                    extra = trim(rrow)
                    out.extend([lrow + extra for lrow in matches])
                    if len(out) >= size:
                        yield ColumnarBatch.from_rows(out)
                        out = []
                if out:
                    yield ColumnarBatch.from_rows(out)
                return
            table = build_hash_table(
                chunked(right_rows, size), right_key, None, value_of=trim
            )
            del right_rows

            def left_batches() -> Iterator[ColumnarBatch]:
                for chunk in chunked(left_prefix, size):
                    yield ColumnarBatch.from_rows(chunk)
                yield from left_stream

            yield from probe_hash_table_columnar(left_batches(), table, l_idx, ctx)
        finally:
            # A budget trip during either buffering loop leaves that input
            # suspended in this (traceback-pinned) frame: close both so
            # upstream finallys release their buffers deterministically.
            close_stream(right_stream)
            close_stream(left_stream)
            right_buffer.release()
            left_buffer.release()

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        _, _, left_key, right_key, trim = self._join_setup()
        if ctx.spill_limit() is not None:
            # Out-of-core: the adaptive lookahead would buffer an unbounded
            # probe prefix, so always grace-build the right side (values
            # trimmed to right_keep — output stays left ++ right_keep).
            buffer = ctx.buffer(f"{self._label()} build")
            try:
                yield from grace_hash_join(
                    self.right.batches(ctx),
                    self.left.batches(ctx),
                    right_key,
                    left_key,
                    buffer,
                    ctx,
                    self._label(),
                    value_of=trim,
                )
            finally:
                buffer.release()
            return
        size = ctx.batch_size
        right_buffer = ctx.buffer(f"{self._label()} build")
        left_buffer = ctx.buffer(f"{self._label()} lookahead")
        right_stream = None
        left_stream = None
        try:
            right_rows: list[tuple] = []
            right_stream = self.right.batches(ctx)
            for batch in right_stream:
                right_rows.extend(batch)
                right_buffer.grow(len(batch))
            # Bounded lookahead on the left: once it outnumbers the right
            # side, the right side is the smaller build input for sure.
            left_stream = self.left.batches(ctx)
            left_prefix: list[tuple] = []
            left_is_smaller = True
            for batch in left_stream:
                left_prefix.extend(batch)
                if len(left_prefix) > len(right_rows):
                    # The left side turns out to be the probe side: its
                    # prefix is in-flight probe input, not build state, so
                    # it must not charge the budget.
                    left_is_smaller = False
                    left_buffer.release()
                    break
                left_buffer.grow(len(batch))
            if left_is_smaller:
                # Build on the (fully seen) left; probe the materialized
                # right.  Output stays left ++ right_keep.
                table = build_hash_table(chunked(left_prefix, size), left_key, None)
                lookup = table.get
                out: list[tuple] = []
                for rrow in right_rows:
                    matches = lookup(right_key(rrow))
                    if not matches:
                        continue
                    extra = trim(rrow)
                    out.extend([lrow + extra for lrow in matches])
                    if len(out) >= size:
                        yield out
                        out = []
                if out:
                    yield out
                return
            table = build_hash_table(
                chunked(right_rows, size), right_key, None, value_of=trim
            )
            del right_rows

            def left_batches() -> Iterator[Batch]:
                yield from chunked(left_prefix, size)
                yield from left_stream

            yield from probe_hash_table(left_batches(), table, left_key, size)
        finally:
            close_stream(right_stream)
            close_stream(left_stream)
            right_buffer.release()
            left_buffer.release()

    def _label(self) -> str:
        return f"PATTERN_HASH_JOIN on ({', '.join(self.join_vars)})"


def _filter_var_columnar(
    source: Iterator[ColumnarBatch], idx: int, check
) -> Iterator[ColumnarBatch]:
    """Refine selections by a per-rowid check on one bound-variable column."""
    for cb in source:
        column = cb.column(idx)
        keep = [j for j, rowid in enumerate(column) if check(rowid)]
        if len(keep) == len(column):
            yield cb
        elif keep:
            yield cb.take(keep)


class VertexFilter(GraphOperator):
    """Attribute predicate over a bound vertex variable."""

    def __init__(self, child: GraphOperator, mapping: RGMapping, var: str, predicate: Expr):
        self.child = child
        self.mapping = mapping
        self.var = var
        self.predicate = predicate
        self.output_vars = list(child.output_vars)

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        idx = self.child.var_index(self.var)
        label = self.child.output_vars[idx].label
        check = rowid_predicate(self.mapping.vertex_table(label), self.predicate)
        return emit_batches(
            ctx,
            self._label(),
            filter_batches(self.child.batches(ctx), lambda row: check(row[idx])),
        )

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        idx = self.child.var_index(self.var)
        label = self.child.output_vars[idx].label
        check = rowid_predicate(self.mapping.vertex_table(label), self.predicate)
        return emit_columnar(
            ctx,
            self._label(),
            _filter_var_columnar(self.child.columnar_batches(ctx), idx, check),
        )

    def _label(self) -> str:
        return f"VERTEX_FILTER {self.var} ({self.predicate})"


class EdgeFilter(GraphOperator):
    """Attribute predicate over a bound edge variable."""

    def __init__(self, child: GraphOperator, mapping: RGMapping, var: str, predicate: Expr):
        self.child = child
        self.mapping = mapping
        self.var = var
        self.predicate = predicate
        self.output_vars = list(child.output_vars)

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        idx = self.child.var_index(self.var)
        label = self.child.output_vars[idx].label
        check = rowid_predicate(self.mapping.edge_table(label), self.predicate)
        return emit_batches(
            ctx,
            self._label(),
            filter_batches(self.child.batches(ctx), lambda row: check(row[idx])),
        )

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        idx = self.child.var_index(self.var)
        label = self.child.output_vars[idx].label
        check = rowid_predicate(self.mapping.edge_table(label), self.predicate)
        return emit_columnar(
            ctx,
            self._label(),
            _filter_var_columnar(self.child.columnar_batches(ctx), idx, check),
        )

    def _label(self) -> str:
        return f"EDGE_FILTER {self.var} ({self.predicate})"


class AllDistinct(GraphOperator):
    """The all-distinct operator: keep rows whose vertex (or edge) bindings
    are pairwise distinct — upgrades homomorphism to isomorphism semantics.

    Distinctness only needs checking between bindings of the *same* label
    (cross-label bindings address different relations), so the operator
    precomputes those column pairs.  The columnar path compares whole
    columns pairwise — one vectorized ``!=`` per pair when the bound
    columns are integer ndarrays (rowids always are) — instead of building
    a Python set per row.  Binding equality follows the grouping engine's
    canonical-key rule (:func:`repro.exec.grouping.bindings_equal`): bound
    rowids are ints today, but any future float binding compares NaN-safe,
    matching ``GROUP BY`` / ``DISTINCT`` semantics.
    """

    def __init__(self, child: GraphOperator, kind: str = "v"):
        self.child = child
        self.kind = kind
        self.output_vars = list(child.output_vars)
        self._indices = [
            (i, var.label)
            for i, var in enumerate(child.output_vars)
            if var.kind == kind
        ]
        by_label: dict[str, list[int]] = {}
        for i, label in self._indices:
            by_label.setdefault(label, []).append(i)
        self._pairs = [
            (a, b)
            for columns in by_label.values()
            for pos, a in enumerate(columns)
            for b in columns[pos + 1 :]
        ]

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        pairs = self._pairs
        if not pairs:
            return emit_batches(ctx, self.cached_label(), self.child.batches(ctx))

        def distinct(row: tuple) -> bool:
            return not any(bindings_equal(row[a], row[b]) for a, b in pairs)

        return emit_batches(
            ctx, self._label(), filter_batches(self.child.batches(ctx), distinct)
        )

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        pairs = self._pairs
        if not pairs:
            yield from self.child.columnar_batches(ctx)
            return
        for cb in self.child.columnar_batches(ctx):
            vectors = {i: cb.column_vector(i) for i in {i for p in pairs for i in p}}
            if all(
                is_ndarray(v) and v.dtype.kind in "iu" for v in vectors.values()
            ):
                # Integer rowid columns: one whole-column comparison per
                # pair, AND-ed into a survivor mask (NaN impossible).
                mask = None
                for a, b in pairs:
                    unequal = vectors[a] != vectors[b]
                    mask = unequal if mask is None else mask & unequal
                if mask.all():
                    yield cb
                    continue
                keep = mask.nonzero()[0]
                if len(keep):
                    yield cb.take(keep)
                continue
            checked = {i: as_values(v) for i, v in vectors.items()}
            keep_l = [
                j
                for j in range(len(cb))
                if not any(
                    bindings_equal(checked[a][j], checked[b][j]) for a, b in pairs
                )
            ]
            if len(keep_l) == len(cb):
                yield cb
            elif keep_l:
                yield cb.take(keep_l)

    def _label(self) -> str:
        return f"ALL_DISTINCT ({self.kind})"


# Re-exported for naive-engine modelling (see systems.kuzu_like); the class
# itself lives with the shared protocol in repro.exec.
from repro.exec.operator import MaterializeOp  # noqa: E402  (re-export)

__all__ = [
    "GraphVar",
    "GraphOperator",
    "ScanVertex",
    "ExpandEdge",
    "GetVertex",
    "Expand",
    "StarLeg",
    "ExpandIntersect",
    "EdgeTripleScan",
    "PatternHashJoin",
    "VertexFilter",
    "EdgeFilter",
    "AllDistinct",
    "MaterializeOp",
]
