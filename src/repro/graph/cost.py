"""Cardinality estimation and the cost model of Sec 4.2.1.

Cardinalities
-------------
``CardinalityEstimator.estimate(P')`` returns the expected ``|M(P')|``:

* patterns within GLogue's window (≤ max_k vertices) read the high-order
  statistic directly;
* larger patterns are decomposed recursively — peel a vertex ``u`` whose
  removal keeps the pattern connected, then multiply the rest's cardinality
  by the star-expansion factor.  When the star window around ``u`` fits in
  GLogue, the factor is the *conditional* ratio of two GLogue counts (this
  is where high-order statistics beat independence assumptions, e.g. on
  triangle closures); otherwise it falls back to average-degree ×
  closing-probability independence estimates (the "low-order only" mode the
  paper says degrades plan quality).
* vertex/edge constraint selectivities multiply on top, estimated from the
  relational column statistics of the mapped tables.

Costs (verbatim from the paper)
-------------------------------
With a graph index:

* ``P'_r`` single edge  → EXPAND_EDGE + GET_VERTEX: ``|M(P'_l)| · d̄``
* ``P'_r`` complete star → EXPAND_INTERSECT: ``|M(P'_l)| ·`` (average
  intersection work, approximated by the smallest leg degree)
* ``P'_r`` arbitrary    → HASH_JOIN: ``|M(P'_l)| · |M(P'_r)|``

Without a graph index every join is a HASH_JOIN costed as the product of the
two input cardinalities.  A small multiple of the *output* cardinality is
added in all cases so that equal-work plans are ranked by result size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.glogue import GLogue
from repro.graph.pattern import PatternEdge, PatternGraph
from repro.relational.catalog import Catalog
from repro.relational.statistics import predicate_selectivity


@dataclass(frozen=True)
class StarStep:
    """A star expansion: new vertex ``center`` attached by ``legs`` to the
    already-matched sub-pattern; each leg is (bound leaf var, pattern edge)."""

    center: str
    legs: tuple[tuple[str, PatternEdge], ...]


class CardinalityEstimator:
    """Estimates ``|M(P')|`` for arbitrary connected patterns."""

    def __init__(
        self,
        glogue: GLogue,
        catalog: Catalog,
        use_glogue: bool = True,
    ):
        self.glogue = glogue
        self.catalog = catalog
        self.use_glogue = use_glogue
        self._memo: dict[tuple, float] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def estimate(self, pattern: PatternGraph) -> float:
        key = pattern.canonical_code()
        if key in self._memo:
            return self._memo[key]
        structural = self.estimate_structural(pattern.without_predicates())
        selectivity = self.constraint_selectivity(pattern)
        value = max(structural * selectivity, 1e-6)
        self._memo[key] = value
        return value

    def estimate_structural(self, pattern: PatternGraph) -> float:
        if self.use_glogue and self.glogue.covers(pattern):
            return self.glogue.pattern_count(pattern)
        if pattern.num_vertices == 1:
            label = next(iter(pattern.vertices.values())).label
            return float(self.glogue.vertex_count(label))
        if pattern.num_vertices == 2 and pattern.num_edges == 1:
            edge = next(iter(pattern.edges.values()))
            return float(self.glogue.edge_count(edge.label))
        # Peel the highest-degree removable vertex: its star benefits most
        # from the conditional-window correction.
        candidate = None
        for name in sorted(pattern.vertices):
            rest = pattern.remove_vertex(name)
            if rest.num_vertices and rest.is_connected():
                if candidate is None or pattern.degree(name) > pattern.degree(candidate):
                    candidate = name
        if candidate is None:
            # Disconnected after any removal should not happen for connected
            # patterns, but fall back to independence over one edge.
            return 1.0
        rest = pattern.remove_vertex(candidate)
        legs = tuple(
            (e.other(candidate), e) for e in pattern.incident_edges(candidate)
        )
        factor = self.expansion_factor(rest, StarStep(candidate, legs), pattern)
        return self.estimate_structural(rest) * factor

    def expansion_factor(
        self,
        base: PatternGraph,
        step: StarStep,
        full: PatternGraph,
    ) -> float:
        """Expected output/input ratio of closing ``step`` over ``base``.

        Tries the GLogue conditional window first: the induced pattern on
        {center} ∪ leaves versus the same window without the center.
        """
        leaves = {leaf for leaf, _ in step.legs}
        if self.use_glogue and 1 + len(leaves) <= self.glogue.max_k:
            window_vertices = leaves | {step.center}
            window = full.induced_subpattern(window_vertices).without_predicates()
            window_base = window.remove_vertex(step.center)
            if window_base.num_vertices and window_base.is_connected():
                with_center = self.glogue.pattern_count(window)
                without = self.glogue.pattern_count(window_base)
                if without > 0:
                    return with_center / without
        return self._independence_factor(step, full)

    def _independence_factor(self, step: StarStep, full: PatternGraph) -> float:
        center_label = full.vertices[step.center].label
        factor = 1.0
        for i, (leaf, edge) in enumerate(step.legs):
            leaf_label = full.vertices[leaf].label
            direction = edge.direction_from(leaf)
            degree = self.glogue.average_degree(leaf_label, edge.label, direction)
            if i == 0:
                factor *= degree
            else:
                nv = self.glogue.vertex_count(center_label)
                factor *= degree / nv if nv else 0.0
        return factor

    # ------------------------------------------------------------------ #
    # constraint selectivities
    # ------------------------------------------------------------------ #

    def constraint_selectivity(self, pattern: PatternGraph) -> float:
        out = 1.0
        for pv in pattern.vertices.values():
            if pv.predicate is not None:
                table_name = self.glogue.mapping.vertex(pv.label).table_name
                out *= predicate_selectivity(
                    pv.predicate, self.catalog.stats(table_name)
                )
        for pe in pattern.edges.values():
            if pe.predicate is not None:
                table_name = self.glogue.mapping.edge(pe.label).table_name
                out *= predicate_selectivity(
                    pe.predicate, self.catalog.stats(table_name)
                )
        return out

    def vertex_selectivity(self, pattern: PatternGraph, vertex: str) -> float:
        pv = pattern.vertices[vertex]
        if pv.predicate is None:
            return 1.0
        table_name = self.glogue.mapping.vertex(pv.label).table_name
        return predicate_selectivity(pv.predicate, self.catalog.stats(table_name))


# Weight of reading/writing one output row relative to one unit of join work;
# keeps the model ranking equal-work plans by output size.
OUTPUT_WEIGHT = 0.1


class CostModel:
    """The physical cost model; see module docstring for the formulas."""

    def __init__(
        self,
        estimator: CardinalityEstimator,
        use_graph_index: bool = True,
    ):
        self.estimator = estimator
        self.glogue = estimator.glogue
        self.use_graph_index = use_graph_index

    def scan_cost(self, pattern: PatternGraph) -> tuple[float, float]:
        """(cardinality, cost) of matching a single-vertex pattern."""
        card = self.estimator.estimate(pattern)
        vertex = next(iter(pattern.vertices.values()))
        table_rows = self.glogue.vertex_count(vertex.label)
        return card, float(table_rows) + OUTPUT_WEIGHT * card

    def expand_cost(
        self,
        base: PatternGraph,
        base_card: float,
        step: StarStep,
        result: PatternGraph,
    ) -> tuple[float, float]:
        """(result cardinality, join cost) of a star expansion."""
        result_card = self.estimator.estimate(result)
        legs = step.legs
        if not self.use_graph_index:
            # Every leg is a hash join against the edge relation; the paper
            # costs a hash join as the product of the two input cardinalities.
            cost = 0.0
            current = base_card
            for i, (_, edge) in enumerate(legs):
                edge_rows = self.glogue.edge_count(edge.label)
                cost += current * edge_rows
                if i == 0:
                    # After the first leg the intermediate grows by d̄.
                    leaf, e0 = legs[0]
                    d = self.glogue.average_degree(
                        result.vertices[leaf].label, e0.label, e0.direction_from(leaf)
                    )
                    current = base_card * max(d, 0.1)
            return result_card, cost + OUTPUT_WEIGHT * result_card
        degrees = []
        for leaf, edge in legs:
            label = result.vertices[leaf].label
            degrees.append(
                self.glogue.average_degree(label, edge.label, edge.direction_from(leaf))
            )
        if len(legs) == 1:
            cost = base_card * max(degrees[0], 0.1)
        else:
            # EXPAND_INTERSECT: intersection work per input tuple is bounded
            # by the smallest adjacency plus probe costs into the others.
            cost = base_card * (min(degrees) + len(legs))
        return result_card, cost + OUTPUT_WEIGHT * result_card

    def join_cost(
        self,
        left_card: float,
        right_card: float,
        result: PatternGraph,
    ) -> tuple[float, float]:
        """(result cardinality, cost) of a pattern hash join (Case I).

        The paper costs HASH_JOIN as the product of the cardinalities of the
        two relations being joined (Sec 4.2.1) — deliberately pessimistic,
        which is why decomposition plans rarely choose Case I when index-backed
        expansions are available.
        """
        result_card = self.estimator.estimate(result)
        cost = left_card * right_card
        return result_card, cost + OUTPUT_WEIGHT * result_card
