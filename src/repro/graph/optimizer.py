"""The graph-aware optimizer: decomposition-tree search and plan lowering.

Search (Sec 3.1.2 / 4.2.1)
--------------------------
The optimizer explores decomposition trees whose nodes are **induced,
connected sub-patterns** of the query pattern ``P`` and whose leaves are
Minimum Matching Components (single vertices and complete stars):

* **Star step** — remove a vertex ``u`` whose removal keeps the sub-pattern
  connected; the right child is the complete star ``P(u; N(u))``, realized
  physically by EXPAND (one leg) or EXPAND_INTERSECT (≥ 2 legs).
* **Binary join** — split into two overlapping induced connected
  sub-patterns joined on their common vertices (Case I, HASH_JOIN).

Memoization is keyed by the sub-pattern's vertex set (induced sub-patterns
of a fixed ``P`` are uniquely determined by it), so the search is a shortest
path through exactly the GLogue-shaped space the paper describes.

Lowering (Sec 3.2.2)
--------------------
``lower_plan`` turns the winning decomposition tree into physical graph
operators.  Flags reproduce the paper's ablations:

* ``use_graph_index=False`` — every step becomes EVJoin-based hash joins
  (the RelGoHash variant / no-index execution);
* ``enable_expand_intersect=False`` — complete stars are implemented as
  "traditional multiple joins" (the RelGoNoEI variant of Fig 9);
* ``needed_edge_vars`` — the TrimAndFuseRule outcome: edge variables absent
  from the set are trimmed and EXPAND_EDGE + GET_VERTEX fuse into EXPAND.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.graph.cost import CardinalityEstimator, CostModel, StarStep
from repro.graph.index import GraphIndex
from repro.graph.pattern import PatternEdge, PatternGraph
from repro.graph.physical import (
    AllDistinct,
    EdgeTripleScan,
    Expand,
    ExpandEdge,
    ExpandIntersect,
    GetVertex,
    GraphOperator,
    PatternHashJoin,
    ScanVertex,
    StarLeg,
)
from repro.graph.rgmapping import RGMapping


@dataclass
class GraphPlan:
    """One node of the chosen decomposition tree (a logical graph plan)."""

    pattern: PatternGraph
    kind: str  # "scan" | "expand" | "join"
    cardinality: float
    cost: float
    child: "GraphPlan | None" = None  # expand: the P'_l sub-plan
    step: StarStep | None = None  # expand: the star being closed
    left: "GraphPlan | None" = None  # join children
    right: "GraphPlan | None" = None

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.kind == "scan":
            v = next(iter(self.pattern.vertices.values()))
            return f"{pad}MATCH_SCAN {v.name}:{v.label} (card≈{self.cardinality:.1f})"
        if self.kind == "expand":
            assert self.step is not None and self.child is not None
            legs = ", ".join(
                f"{leaf}-[{e.label}]" for leaf, e in self.step.legs
            )
            op = "EXPAND" if len(self.step.legs) == 1 else "EXPAND_INTERSECT"
            lines = [
                f"{pad}{op} -> {self.step.center} via ({legs}) "
                f"(card≈{self.cardinality:.1f})"
            ]
            lines.append(self.child.explain(indent + 1))
            return "\n".join(lines)
        assert self.left is not None and self.right is not None
        lines = [f"{pad}PATTERN_JOIN (card≈{self.cardinality:.1f})"]
        lines.append(self.left.explain(indent + 1))
        lines.append(self.right.explain(indent + 1))
        return "\n".join(lines)

    def operators(self) -> list[str]:
        """Flat list of operator kinds, for plan-shape assertions in tests."""
        if self.kind == "scan":
            return ["scan"]
        if self.kind == "expand":
            assert self.child is not None and self.step is not None
            op = "expand" if len(self.step.legs) == 1 else "intersect"
            return self.child.operators() + [op]
        assert self.left is not None and self.right is not None
        return self.left.operators() + self.right.operators() + ["join"]


@dataclass
class GraphOptimizerConfig:
    """Knobs reproducing the paper's system variants."""

    use_graph_index: bool = True
    enable_expand_intersect: bool = True
    enable_binary_joins: bool = True
    # Patterns with at most this many vertices search binary joins; larger
    # ones rely on star steps only (keeps the search polynomial in practice).
    binary_join_limit: int = 8


class GraphOptimizer:
    """Cost-based decomposition search over one pattern."""

    def __init__(
        self,
        mapping: RGMapping,
        estimator: CardinalityEstimator,
        config: GraphOptimizerConfig | None = None,
    ):
        self.mapping = mapping
        self.estimator = estimator
        self.config = config or GraphOptimizerConfig()
        self.cost_model = CostModel(
            estimator, use_graph_index=self.config.use_graph_index
        )

    def optimize(self, pattern: PatternGraph) -> GraphPlan:
        if not pattern.is_connected():
            raise PlanError("can only optimize connected patterns")
        memo: dict[frozenset[str], GraphPlan] = {}
        return self._best(pattern, frozenset(pattern.vertices), pattern, memo)

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #

    def _best(
        self,
        full: PatternGraph,
        vertex_set: frozenset[str],
        sub: PatternGraph,
        memo: dict[frozenset[str], GraphPlan],
    ) -> GraphPlan:
        if vertex_set in memo:
            return memo[vertex_set]
        if len(vertex_set) == 1:
            card, cost = self.cost_model.scan_cost(sub)
            plan = GraphPlan(sub, "scan", card, cost)
            memo[vertex_set] = plan
            return plan
        best: GraphPlan | None = None
        for plan in self._candidates(full, vertex_set, sub, memo):
            if best is None or plan.cost < best.cost:
                best = plan
        if best is None:  # pragma: no cover - connected patterns always split
            raise PlanError(f"no decomposition found for {sub!r}")
        memo[vertex_set] = best
        return best

    def _candidates(self, full, vertex_set, sub, memo):
        # Star steps: peel each vertex whose removal keeps connectivity.
        for name in sorted(vertex_set):
            rest_set = vertex_set - {name}
            rest = full.induced_subpattern(rest_set)
            if not rest.num_vertices or not rest.is_connected():
                continue
            child = self._best(full, rest_set, rest, memo)
            legs = tuple((e.other(name), e) for e in sub.incident_edges(name))
            if not legs:
                continue
            step = StarStep(name, legs)
            card, join_cost = self.cost_model.expand_cost(
                rest, child.cardinality, step, sub
            )
            yield GraphPlan(
                sub,
                "expand",
                card,
                child.cost + join_cost,
                child=child,
                step=step,
            )
        # Binary joins (Case I).
        if (
            self.config.enable_binary_joins
            and 4 <= len(vertex_set) <= self.config.binary_join_limit
        ):
            yield from self._binary_joins(full, vertex_set, sub, memo)

    def _binary_joins(self, full, vertex_set, sub, memo):
        for left_set in connected_proper_subsets(sub, vertex_set):
            remainder = vertex_set - left_set
            if not remainder:
                continue
            border = {
                v
                for v in left_set
                if any(n in remainder for n in sub.neighbors(v))
            }
            if not border:
                continue
            right_set = frozenset(remainder | border)
            if right_set == vertex_set or len(right_set) < 2:
                continue
            right_sub = full.induced_subpattern(right_set)
            if not right_sub.is_connected():
                continue
            # Orientation dedup: keep the split where the left side holds
            # the lexicographically smallest vertex.
            if min(vertex_set) not in left_set:
                continue
            left_sub = full.induced_subpattern(left_set)
            left_plan = self._best(full, frozenset(left_set), left_sub, memo)
            right_plan = self._best(full, right_set, right_sub, memo)
            card, join_cost = self.cost_model.join_cost(
                left_plan.cardinality, right_plan.cardinality, sub
            )
            yield GraphPlan(
                sub,
                "join",
                card,
                left_plan.cost + right_plan.cost + join_cost,
                left=left_plan,
                right=right_plan,
            )


def connected_proper_subsets(
    pattern: PatternGraph, vertex_set: frozenset[str]
) -> list[frozenset[str]]:
    """All connected, proper, non-empty induced vertex subsets (|S| ≥ 2)."""
    names = sorted(vertex_set)
    found: set[frozenset[str]] = set()
    # Grow connected sets BFS-style from each seed (standard enumeration).
    frontier: list[frozenset[str]] = [frozenset({n}) for n in names]
    seen: set[frozenset[str]] = set(frontier)
    while frontier:
        current = frontier.pop()
        if 2 <= len(current) < len(vertex_set):
            found.add(current)
        if len(current) >= len(vertex_set) - 1:
            continue
        expandable = {
            nbr
            for v in current
            for nbr in pattern.neighbors(v)
            if nbr in vertex_set and nbr not in current
        }
        for nbr in expandable:
            nxt = current | {nbr}
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return sorted(found, key=lambda s: (len(s), sorted(s)))


# ---------------------------------------------------------------------- #
# lowering
# ---------------------------------------------------------------------- #


@dataclass
class LoweringConfig:
    """Physical-implementation switches (paper ablations)."""

    use_graph_index: bool = True
    enable_expand_intersect: bool = True
    # Edge variables that must survive into the output; everything else is
    # trimmed and the corresponding EXPAND_EDGE/GET_VERTEX pair is fused.
    needed_edge_vars: frozenset[str] = frozenset()
    # When False, EXPAND_EDGE + GET_VERTEX are kept as separate operators
    # and all edge columns are carried (the RelGoNoRule behaviour).
    fuse: bool = True
    semantics: str = "homomorphism"


def lower_plan(
    plan: GraphPlan,
    mapping: RGMapping,
    index: GraphIndex | None,
    config: LoweringConfig,
) -> GraphOperator:
    """Lower a decomposition tree into executable graph operators."""
    if config.use_graph_index and index is None:
        raise PlanError("lowering with use_graph_index=True requires an index")
    op = _lower(plan, mapping, index, config)
    if config.semantics == "isomorphism":
        op = AllDistinct(op, kind="v")
    elif config.semantics == "edge_distinct":
        op = AllDistinct(op, kind="e")
    return op


def _keep_edge(edge: PatternEdge, config: LoweringConfig) -> bool:
    if not config.fuse:
        return True
    return edge.name in config.needed_edge_vars


def _lower(
    plan: GraphPlan,
    mapping: RGMapping,
    index: GraphIndex | None,
    config: LoweringConfig,
) -> GraphOperator:
    if plan.kind == "scan":
        vertex = next(iter(plan.pattern.vertices.values()))
        return ScanVertex(mapping, vertex.name, vertex.label, vertex.predicate)
    if plan.kind == "join":
        assert plan.left is not None and plan.right is not None
        return PatternHashJoin(
            _lower(plan.left, mapping, index, config),
            _lower(plan.right, mapping, index, config),
        )
    assert plan.kind == "expand" and plan.child is not None and plan.step is not None
    child_op = _lower(plan.child, mapping, index, config)
    step = plan.step
    center = plan.pattern.vertices[step.center]
    if not config.use_graph_index:
        return _lower_star_hash(child_op, mapping, plan, config, index=None)
    assert index is not None
    if len(step.legs) == 1:
        leaf, edge = step.legs[0]
        direction = edge.direction_from(leaf)
        if _keep_edge(edge, config):
            expanded = ExpandEdge(
                child_op,
                index,
                mapping,
                from_var=leaf,
                edge_var=edge.name,
                edge_label=edge.label,
                direction=direction,
                edge_predicate=edge.predicate,
            )
            return GetVertex(
                expanded,
                index,
                mapping,
                edge_var=edge.name,
                to_var=center.name,
                to_label=center.label,
                direction=direction,
                vertex_predicate=center.predicate,
            )
        return Expand(
            child_op,
            index,
            mapping,
            from_var=leaf,
            to_var=center.name,
            to_label=center.label,
            edge_label=edge.label,
            direction=direction,
            edge_predicate=edge.predicate,
            vertex_predicate=center.predicate,
        )
    if config.enable_expand_intersect:
        legs = [
            StarLeg(
                from_var=leaf,
                edge_label=edge.label,
                direction=edge.direction_from(leaf),
                edge_var=edge.name if _keep_edge(edge, config) else None,
                edge_predicate=edge.predicate,
            )
            for leaf, edge in step.legs
        ]
        return ExpandIntersect(
            child_op,
            index,
            mapping,
            legs=legs,
            to_var=center.name,
            to_label=center.label,
            vertex_predicate=center.predicate,
        )
    # RelGoNoEI: M(P') = M(P'_l) ⋈ M(P(u; V_s)) with the complete star
    # computed as a traditional multiple join of its edge relations — the
    # star materialization is what explodes on dense stars (Fig 9's OOM).
    return _lower_star_standalone(child_op, mapping, plan, config, index)


def _lower_star_standalone(
    child_op: GraphOperator,
    mapping: RGMapping,
    plan: GraphPlan,
    config: LoweringConfig,
    index: GraphIndex | None,
) -> GraphOperator:
    """NoEI lowering: materialize M(star) by joining its edge relations on
    the center variable, then hash join with the left child (Case I)."""
    assert plan.step is not None
    step = plan.step
    center = plan.pattern.vertices[step.center]
    star_op: GraphOperator | None = None
    for i, (leaf, edge) in enumerate(step.legs):
        center_is_src = edge.src == center.name
        triples = EdgeTripleScan(
            mapping,
            edge.label,
            src_var=edge.src,
            dst_var=edge.dst,
            edge_var=edge.name if _keep_edge(edge, config) else None,
            index=index,
            edge_predicate=edge.predicate,
            # The center's constraint filters every leg cheaply; leaf
            # constraints were already applied when the leaves were matched.
            src_predicate=center.predicate if center_is_src and i == 0 else None,
            dst_predicate=center.predicate if not center_is_src and i == 0 else None,
        )
        star_op = triples if star_op is None else PatternHashJoin(star_op, triples)
    assert star_op is not None
    return PatternHashJoin(child_op, star_op)


def _lower_star_hash(
    child_op: GraphOperator,
    mapping: RGMapping,
    plan: GraphPlan,
    config: LoweringConfig,
    index: GraphIndex | None,
) -> GraphOperator:
    """Implement a star step as successive joins with edge-triple scans.

    The first leg *introduces* the center vertex; each further leg joins the
    full edge relation on both endpoints — the "traditional multiple join"
    whose intermediates blow up on dense stars (Fig 9's OOM).
    """
    assert plan.step is not None
    step = plan.step
    center = plan.pattern.vertices[step.center]
    current = child_op
    for leaf, edge in step.legs:
        src_var, dst_var = edge.src, edge.dst
        src_pred = center.predicate if edge.src == center.name else None
        dst_pred = center.predicate if edge.dst == center.name else None
        triples = EdgeTripleScan(
            mapping,
            edge.label,
            src_var=src_var,
            dst_var=dst_var,
            edge_var=edge.name if _keep_edge(edge, config) else None,
            index=index,
            edge_predicate=edge.predicate,
            src_predicate=src_pred,
            dst_predicate=dst_pred,
        )
        current = PatternHashJoin(current, triples)
    return current
