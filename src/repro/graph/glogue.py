"""GLogue: the high-order statistics catalog (adapted from GLogS, Sec 4.2.1).

GLogue stores cardinalities ``|M(P')|`` of small structural patterns (up to
``max_k`` vertices, default 3 as in the paper).  Three tiers:

* **exact, free** — single-vertex and single-edge counts are table sizes;
  per-(vertex label, edge label, direction) average degrees come from the
  VE-index CSR.
* **exact, cheap** — all two-edge patterns (wedges/stars): computed from CSR
  degree arrays in one pass, ``Σ_v d_a(v)·d_b(v)``, without enumerating a
  single match.
* **sampled** — larger / cyclic small patterns (triangles): counted by the
  reference matcher restricted to a *sparsified sample* of start vertices,
  scaled by the inverse sampling ratio.  This mirrors GLogS's sparsification;
  the sample is deterministic under ``seed``.

Entries are keyed by the structural canonical code, so isomorphic
sub-patterns share one entry regardless of variable names.  Constraint
selectivities are *not* baked in — the cost model multiplies them on top
(that separation is what lets FilterIntoMatchRule re-cost patterns after a
filter is pushed in).
"""

from __future__ import annotations

import random

from repro.graph.index import IN, OUT, GraphIndex
from repro.graph.matching import match_pattern, traversal_start
from repro.graph.pattern import PatternGraph
from repro.graph.rgmapping import RGMapping


class GLogue:
    """Pattern-cardinality catalog over one property graph."""

    def __init__(
        self,
        mapping: RGMapping,
        index: GraphIndex,
        max_k: int = 3,
        sample_ratio: float = 0.05,
        min_sample: int = 64,
        seed: int = 42,
    ):
        self.mapping = mapping
        self.index = index
        self.max_k = max_k
        self.sample_ratio = sample_ratio
        self.min_sample = min_sample
        self.seed = seed
        self._cache: dict[tuple, float] = {}
        self._degree_cache: dict[tuple[str, str, str], float] = {}

    # ------------------------------------------------------------------ #
    # low-order statistics
    # ------------------------------------------------------------------ #

    def vertex_count(self, label: str) -> int:
        return self.mapping.vertex_table(label).num_rows

    def edge_count(self, edge_label: str) -> int:
        return self.mapping.edge_table(edge_label).num_rows

    def average_degree(self, vertex_label: str, edge_label: str, direction: str) -> float:
        """Average number of ``edge_label`` edges per ``vertex_label`` vertex
        in ``direction`` — the ``d̄`` of the paper's EXPAND cost."""
        key = (vertex_label, edge_label, direction)
        if key not in self._degree_cache:
            if self.index.has_adjacency(vertex_label, edge_label, direction):
                value = self.index.average_degree(vertex_label, edge_label, direction)
            else:
                value = 0.0
            self._degree_cache[key] = value
        return self._degree_cache[key]

    # ------------------------------------------------------------------ #
    # pattern cardinalities
    # ------------------------------------------------------------------ #

    def pattern_count(self, pattern: PatternGraph) -> float:
        """Estimated ``|M(P')|`` for a structural pattern with ≤ max_k
        vertices; raises for larger patterns (the cost model decomposes
        those recursively)."""
        structural = pattern.without_predicates()
        key = structural.canonical_code()
        if key in self._cache:
            return self._cache[key]
        value = self._compute(structural)
        self._cache[key] = value
        return value

    def covers(self, pattern: PatternGraph) -> bool:
        return pattern.num_vertices <= self.max_k

    def _compute(self, pattern: PatternGraph) -> float:
        n, m = pattern.num_vertices, pattern.num_edges
        if n == 1 and m == 0:
            label = next(iter(pattern.vertices.values())).label
            return float(self.vertex_count(label))
        if m == 1 and n <= 2:
            edge = next(iter(pattern.edges.values()))
            if not self._edge_endpoints_consistent(pattern, edge.name):
                return 0.0
            return float(self.edge_count(edge.label))
        if m == 2 and n == 3:
            exact = self._two_path_count(pattern)
            if exact is not None:
                return exact
        return self._sampled_count(pattern)

    def _edge_endpoints_consistent(self, pattern: PatternGraph, edge_name: str) -> bool:
        edge = pattern.edges[edge_name]
        em = self.mapping.edge(edge.label)
        return (
            em.source_label == pattern.vertices[edge.src].label
            and em.target_label == pattern.vertices[edge.dst].label
        )

    def _two_path_count(self, pattern: PatternGraph) -> float | None:
        """Exact count of a 2-edge pattern via shared-middle degree products."""
        # Find the vertex incident to both edges.
        middle = None
        for name in pattern.vertices:
            if len(pattern.incident_edges(name)) == 2:
                middle = name
                break
        if middle is None:
            return None
        edges = pattern.incident_edges(middle)
        if len(edges) != 2:
            return None
        e1, e2 = edges
        for e in (e1, e2):
            if not self._edge_endpoints_consistent(pattern, e.name):
                return 0.0
        label = pattern.vertices[middle].label
        d1 = e1.direction_from(middle)
        d2 = e2.direction_from(middle)
        if not (
            self.index.has_adjacency(label, e1.label, d1)
            and self.index.has_adjacency(label, e2.label, d2)
        ):
            return 0.0
        adj1 = self.index.adjacency(label, e1.label, d1)
        adj2 = self.index.adjacency(label, e2.label, d2)
        total = 0
        o1, o2 = adj1.offsets, adj2.offsets
        for v in range(len(o1) - 1):
            total += (o1[v + 1] - o1[v]) * (o2[v + 1] - o2[v])
        return float(total)

    def _sampled_count(self, pattern: PatternGraph) -> float:
        """Sparsified-sample estimate: match from a vertex sample, scale up."""
        start = traversal_start(pattern)
        label = pattern.vertices[start].label
        table = self.mapping.vertex_table(label)
        n = table.num_rows
        if n == 0:
            return 0.0
        sample_size = max(self.min_sample, int(n * self.sample_ratio))
        if sample_size >= n:
            matches = match_pattern(self.mapping, self.index, pattern)
            return float(len(matches))
        rng = random.Random(self.seed ^ hash(pattern.canonical_code()) & 0xFFFFFFFF)
        sample = rng.sample(range(n), sample_size)
        matches = match_pattern(
            self.mapping, self.index, pattern, start_rowids=sample
        )
        return len(matches) * (n / sample_size)

    # ------------------------------------------------------------------ #
    # derived statistics
    # ------------------------------------------------------------------ #

    def closing_probability(
        self, src_label: str, edge_label: str, dst_label: str
    ) -> float:
        """Probability that a random (src, dst) vertex pair is connected by an
        ``edge_label`` edge — the selectivity of closing an extra star leg."""
        nv_src = self.vertex_count(src_label)
        nv_dst = self.vertex_count(dst_label)
        if nv_src == 0 or nv_dst == 0:
            return 0.0
        return min(1.0, self.edge_count(edge_label) / (nv_src * nv_dst))

    def stats_summary(self) -> dict[str, float]:
        """A compact description used by reports and tests."""
        return {
            "cached_patterns": float(len(self._cache)),
            "max_k": float(self.max_k),
            "sample_ratio": self.sample_ratio,
        }
