"""The graph index: EV-index and VE-index (Sec 3.2.1 of the paper).

Following GRainDB's *predefined join*, the index materializes adjacency
relationships between relations without materializing a graph:

* **EV-index** — for each edge relation, two extra integer columns
  (``src_rowids`` / ``dst_rowids``) holding the rowid of the corresponding
  tuple in the source / target vertex relation.  Routing an edge tuple to a
  joinable vertex tuple is a single list index, no hash lookup.
* **VE-index** — for each vertex relation and incident edge label and
  direction, a CSR structure (``offsets`` + ``edge_rowids``) listing the
  adjacent edge tuples of every vertex tuple.  Combined with the EV-index
  this yields each vertex's adjacent edges *and* neighbors, which is what
  the EXPAND_EDGE / GET_VERTEX / EXPAND_INTERSECT physical operators walk.

All index arrays are **typed** (``array.array('q')``): indexing still
yields plain Python ints for the row-protocol walks, while the
``*_vector()`` accessors expose cached numpy views so the columnar
expansion kernels gather adjacency natively.  The CSR build itself runs as
a numpy stable argsort when numpy is enabled, falling back to the classic
count-and-fill pass.

Directions: ``"out"`` adjacency lists the edges whose *source* is the
vertex; ``"in"`` lists edges whose *target* is the vertex.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import CatalogError, SchemaError
from repro.exec import vector
from repro.graph.rgmapping import RGMapping

OUT = "out"
IN = "in"


def typed_rowids(values) -> array:
    """An int sequence as a typed ``array.array('q')`` rowid column."""
    if isinstance(values, array) and values.typecode == "q":
        return values
    np = vector._np
    if np is not None and isinstance(values, np.ndarray):
        out = array("q")
        out.frombytes(values.astype("int64", copy=False).tobytes())
        return out
    return array("q", values)


@dataclass
class EdgeIndex:
    """EV-index of one edge relation: endpoint rowids per edge tuple."""

    edge_label: str
    src_rowids: Sequence[int]
    dst_rowids: Sequence[int]
    _vectors: dict = field(default_factory=dict, repr=False, compare=False)

    def endpoint_rowids(self, direction: str) -> Sequence[int]:
        """Rowids of the *far* endpooint when traversing in ``direction``.

        Traversing ``out`` (vertex is the source) lands on targets;
        traversing ``in`` lands on sources.
        """
        return self.dst_rowids if direction == OUT else self.src_rowids

    def near_rowids(self, direction: str) -> Sequence[int]:
        return self.src_rowids if direction == OUT else self.dst_rowids

    def endpoint_vector(self, direction: str) -> Sequence[int]:
        """Vectorized (cached ndarray) view of :meth:`endpoint_rowids`."""
        return vector.cached_vector(
            self._vectors, ("far", direction), self.endpoint_rowids(direction)
        )

    def near_vector(self, direction: str) -> Sequence[int]:
        return vector.cached_vector(
            self._vectors, ("near", direction), self.near_rowids(direction)
        )


@dataclass
class Adjacency:
    """VE-index of one (vertex label, edge label, direction): CSR arrays.

    Edges adjacent to vertex rowid ``v`` are
    ``edge_rowids[offsets[v]:offsets[v + 1]]``.
    """

    vertex_label: str
    edge_label: str
    direction: str
    offsets: Sequence[int]
    edge_rowids: Sequence[int]
    _vectors: dict = field(default_factory=dict, repr=False, compare=False)

    def edges_of(self, vertex_rowid: int) -> Sequence[int]:
        return self.edge_rowids[self.offsets[vertex_rowid] : self.offsets[vertex_rowid + 1]]

    def degree(self, vertex_rowid: int) -> int:
        return self.offsets[vertex_rowid + 1] - self.offsets[vertex_rowid]

    def vectors(self) -> tuple[Sequence[int], Sequence[int]]:
        """``(offsets, edge_rowids)`` as cached vectorized views."""
        return (
            vector.cached_vector(self._vectors, "offsets", self.offsets),
            vector.cached_vector(self._vectors, "edges", self.edge_rowids),
        )

    @property
    def num_edges(self) -> int:
        return len(self.edge_rowids)


@dataclass
class GraphIndex:
    """All EV/VE indexes of one property graph.

    An index is immutable once built; refreshing after appends means
    building a *new* index (rebuild-and-swap) whose ``version`` is larger.
    ``vertex_rows`` / ``edge_rows`` record, per label, the table extents
    the build covered — the executor clamps its table snapshots to these
    counts so a query always reads graph structure and tuple attributes at
    the same version (rows appended after the build are invisible to graph
    plans until the index is rebuilt).
    """

    graph_name: str
    ev: dict[str, EdgeIndex] = field(default_factory=dict)
    ve: dict[tuple[str, str, str], Adjacency] = field(default_factory=dict)
    version: int = 0
    vertex_rows: dict[str, int] = field(default_factory=dict)
    edge_rows: dict[str, int] = field(default_factory=dict)

    def edge_index(self, edge_label: str) -> EdgeIndex:
        try:
            return self.ev[edge_label]
        except KeyError:
            raise CatalogError(f"no EV-index for edge label {edge_label!r}") from None

    def adjacency(self, vertex_label: str, edge_label: str, direction: str) -> Adjacency:
        try:
            return self.ve[(vertex_label, edge_label, direction)]
        except KeyError:
            raise CatalogError(
                f"no VE-index for ({vertex_label!r}, {edge_label!r}, {direction!r})"
            ) from None

    def has_adjacency(self, vertex_label: str, edge_label: str, direction: str) -> bool:
        return (vertex_label, edge_label, direction) in self.ve

    def average_degree(self, vertex_label: str, edge_label: str, direction: str) -> float:
        adj = self.adjacency(vertex_label, edge_label, direction)
        vertices = len(adj.offsets) - 1
        if vertices == 0:
            return 0.0
        return adj.num_edges / vertices


def build_graph_index(mapping: RGMapping) -> GraphIndex:
    """Construct the EV- and VE-indexes for every edge mapping.

    This is the paper's "construct the graph indexes during the RGMapping
    process": each edge tuple's foreign keys are resolved to endpoint rowids
    through the vertex tables' primary-key indexes (raising on dangling
    references, since ``λˢ``/``λᵗ`` must be total), then CSR adjacency is
    built by a numpy stable argsort when available, else the classic
    count-and-fill pass.
    """
    from repro.relational.table import current_epoch

    index = GraphIndex(graph_name=mapping.name, version=current_epoch())
    for vertex_label, vm in mapping.vertices.items():
        index.vertex_rows[vertex_label] = mapping.catalog.table(
            vm.table_name
        ).num_rows
    for edge_label, em in sorted(mapping.edges.items()):
        edge_table = mapping.catalog.table(em.table_name)
        src_table = mapping.catalog.table(mapping.vertex(em.source_label).table_name)
        dst_table = mapping.catalog.table(mapping.vertex(em.target_label).table_name)
        src_map = src_table.pk_index()
        dst_map = dst_table.pk_index()
        try:
            src_rowids = typed_rowids(
                map(src_map.__getitem__, edge_table.column(em.source_key))
            )
            dst_rowids = typed_rowids(
                map(dst_map.__getitem__, edge_table.column(em.target_key))
            )
        except KeyError as dangling:
            raise SchemaError(
                f"edge {edge_label!r} has a dangling endpoint key "
                f"{dangling.args[0]!r}; λ-functions must be total"
            ) from None
        index.ev[edge_label] = EdgeIndex(edge_label, src_rowids, dst_rowids)
        index.edge_rows[edge_label] = len(src_rowids)
        index.ve[(em.source_label, edge_label, OUT)] = _build_csr(
            src_rowids, src_table.num_rows, edge_label, em.source_label, OUT
        )
        index.ve[(em.target_label, edge_label, IN)] = _build_csr(
            dst_rowids, dst_table.num_rows, edge_label, em.target_label, IN
        )
    return index


def _build_csr(
    endpoint_rowids: Sequence[int],
    num_vertices: int,
    edge_label: str,
    vertex_label: str,
    direction: str,
) -> Adjacency:
    np = vector._np
    if np is not None and vector.numpy_enabled():
        ends = np.asarray(endpoint_rowids, dtype=np.int64)
        counts = np.bincount(ends, minlength=num_vertices) if len(ends) else (
            np.zeros(num_vertices, dtype=np.int64)
        )
        offsets_v = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets_v[1:])
        # Stable sort by endpoint == the count-and-fill order (edge rowids
        # ascending within each vertex's slice).
        edges_v = np.argsort(ends, kind="stable").astype(np.int64)
        adjacency = Adjacency(
            vertex_label,
            edge_label,
            direction,
            typed_rowids(offsets_v),
            typed_rowids(edges_v),
        )
        adjacency._vectors = {"offsets": offsets_v, "edges": edges_v}
        return adjacency
    counts = [0] * num_vertices
    for v in endpoint_rowids:
        counts[v] += 1
    offsets = array("q", bytes(8 * (num_vertices + 1)))
    for i, c in enumerate(counts):
        offsets[i + 1] = offsets[i] + c
    cursor = offsets[:-1]
    edge_rowids = array("q", bytes(8 * len(endpoint_rowids)))
    for edge_rowid, v in enumerate(endpoint_rowids):
        edge_rowids[cursor[v]] = edge_rowid
        cursor[v] += 1
    return Adjacency(vertex_label, edge_label, direction, offsets, edge_rowids)
