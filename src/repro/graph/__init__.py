"""The property-graph substrate.

Everything graph-side lives here: the RGMapping from relations to a property
graph (Sec 2.1 of the paper), the GRainDB-style graph index (Sec 3.2.1), the
pattern-graph model and matching semantics (Sec 2.2), the reference matcher,
the graph physical operators (EXPAND / EXPAND_INTERSECT, Sec 3.2.2), the
GLogue statistics catalog and the GLogS-style decomposition optimizer
(Sec 4.2.1), and the search-space enumerators behind Theorem 1 / Fig 4a.
"""

from repro.graph.rgmapping import EdgeMapping, RGMapping, VertexMapping
from repro.graph.index import GraphIndex, build_graph_index
from repro.graph.pattern import PatternEdge, PatternGraph, PatternVertex

__all__ = [
    "RGMapping",
    "VertexMapping",
    "EdgeMapping",
    "GraphIndex",
    "build_graph_index",
    "PatternGraph",
    "PatternVertex",
    "PatternEdge",
]
