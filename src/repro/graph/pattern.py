"""Pattern graphs: the ``P`` in the matching operator ``M(P)``.

A pattern graph is a small directed, labeled multigraph whose vertices and
edges may carry **constraints** (predicates over element attributes — the
``(P, Ψ)`` extension of Sec 4.2.3 that FilterIntoMatchRule produces).

Beyond the data model, this module provides the structural operations the
graph-aware optimizer is built on:

* induced sub-patterns and connectivity (decomposition-tree nodes must be
  *induced connected* sub-patterns of ``P``, Sec 3.1.2);
* complete-star extraction (the MMC right children);
* a **canonical code** stable under variable renaming, used to memoize the
  decomposition search and to key GLogue entries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from repro.errors import PlanError
from repro.relational.expr import Expr, and_


@dataclass(frozen=True)
class PatternVertex:
    """A pattern vertex: variable ``name``, vertex ``label``, optional constraint."""

    name: str
    label: str
    predicate: Expr | None = None

    def pred_key(self) -> str:
        return "" if self.predicate is None else str(self.predicate)


@dataclass(frozen=True)
class PatternEdge:
    """A directed pattern edge from variable ``src`` to ``dst``."""

    name: str
    label: str
    src: str
    dst: str
    predicate: Expr | None = None

    def other(self, vertex: str) -> str:
        if vertex == self.src:
            return self.dst
        if vertex == self.dst:
            return self.src
        raise PlanError(f"vertex {vertex!r} is not an endpoint of edge {self.name!r}")

    def direction_from(self, vertex: str) -> str:
        """Traversal direction when leaving ``vertex`` along this edge."""
        if vertex == self.src:
            return "out"
        if vertex == self.dst:
            return "in"
        raise PlanError(f"vertex {vertex!r} is not an endpoint of edge {self.name!r}")

    def pred_key(self) -> str:
        return "" if self.predicate is None else str(self.predicate)


class PatternGraph:
    """An immutable-by-convention pattern graph."""

    def __init__(self, vertices: list[PatternVertex], edges: list[PatternEdge]):
        self.vertices: dict[str, PatternVertex] = {}
        for v in vertices:
            if v.name in self.vertices:
                raise PlanError(f"duplicate pattern vertex {v.name!r}")
            self.vertices[v.name] = v
        self.edges: dict[str, PatternEdge] = {}
        for e in edges:
            if e.name in self.edges:
                raise PlanError(f"duplicate pattern edge {e.name!r}")
            if e.src not in self.vertices or e.dst not in self.vertices:
                raise PlanError(f"edge {e.name!r} references unknown vertices")
            self.edges[e.name] = e
        self._incident: dict[str, list[PatternEdge]] = {v: [] for v in self.vertices}
        for e in self.edges.values():
            self._incident[e.src].append(e)
            if e.dst != e.src:
                self._incident[e.dst].append(e)
        self._canonical: tuple | None = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def builder() -> "PatternBuilder":
        return PatternBuilder()

    @staticmethod
    def single_vertex(vertex: PatternVertex) -> "PatternGraph":
        return PatternGraph([vertex], [])

    # ------------------------------------------------------------------ #
    # basic structure
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def vertex_names(self) -> list[str]:
        return sorted(self.vertices)

    def incident_edges(self, vertex: str) -> list[PatternEdge]:
        """Edges touching ``vertex`` (both directions)."""
        return self._incident[vertex]

    def neighbors(self, vertex: str) -> set[str]:
        return {e.other(vertex) for e in self._incident[vertex]}

    def edges_between(self, a: str, b: str) -> list[PatternEdge]:
        """All edges with endpoints {a, b}, either direction."""
        return [e for e in self._incident[a] if e.other(a) == b]

    def degree(self, vertex: str) -> int:
        return len(self._incident[vertex])

    def is_connected(self) -> bool:
        if not self.vertices:
            return False
        start = next(iter(self.vertices))
        seen = {start}
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for nbr in self.neighbors(v):
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return len(seen) == len(self.vertices)

    # ------------------------------------------------------------------ #
    # sub-patterns
    # ------------------------------------------------------------------ #

    def induced_subpattern(self, vertex_names: set[str] | frozenset[str]) -> "PatternGraph":
        """The sub-pattern induced by ``vertex_names`` (all internal edges kept)."""
        vertices = [self.vertices[n] for n in sorted(vertex_names)]
        edges = [
            e
            for e in self.edges.values()
            if e.src in vertex_names and e.dst in vertex_names
        ]
        return PatternGraph(vertices, edges)

    def remove_vertex(self, vertex: str) -> "PatternGraph":
        return self.induced_subpattern(set(self.vertices) - {vertex})

    def star_of(self, center: str, leaves: set[str] | None = None) -> "PatternGraph":
        """The complete star ``P(center; leaves)`` inside this pattern.

        Leaves default to all neighbors of ``center``.  The star contains the
        center, the leaves, and every edge between the center and a leaf
        (NOT edges among leaves — a star has none by construction).
        """
        if leaves is None:
            leaves = self.neighbors(center)
        names = {center} | leaves
        vertices = [self.vertices[n] for n in sorted(names)]
        edges = [
            e
            for e in self._incident[center]
            if e.other(center) in leaves
        ]
        return PatternGraph(vertices, edges)

    def is_complete_star_within(self, center: str, host: "PatternGraph") -> bool:
        """Whether ``star_of(center)`` taken in ``host`` has all leaves here."""
        return host.neighbors(center) <= set(self.vertices)

    def with_vertex_constraint(self, vertex: str, predicate: Expr) -> "PatternGraph":
        """A copy with ``predicate`` AND-ed onto the vertex's constraint."""
        old = self.vertices[vertex]
        combined = predicate if old.predicate is None else and_(old.predicate, predicate)
        vertices = [
            replace(v, predicate=combined) if v.name == vertex else v
            for v in self.vertices.values()
        ]
        return PatternGraph(vertices, list(self.edges.values()))

    def without_predicates(self) -> "PatternGraph":
        """The structural skeleton: same shape and labels, no constraints.

        GLogue keys its cardinality entries on structural patterns only;
        constraint selectivities are folded in by the cost model.
        """
        vertices = [replace(v, predicate=None) for v in self.vertices.values()]
        edges = [replace(e, predicate=None) for e in self.edges.values()]
        return PatternGraph(vertices, edges)

    def with_edge_constraint(self, edge: str, predicate: Expr) -> "PatternGraph":
        old = self.edges[edge]
        combined = predicate if old.predicate is None else and_(old.predicate, predicate)
        edges = [
            replace(e, predicate=combined) if e.name == edge else e
            for e in self.edges.values()
        ]
        return PatternGraph(list(self.vertices.values()), edges)

    # ------------------------------------------------------------------ #
    # canonical code
    # ------------------------------------------------------------------ #

    def canonical_code(self) -> tuple:
        """A hashable code equal for patterns identical up to renaming.

        Computed by 1-WL style color refinement followed by exhaustive
        permutation within residual color classes (patterns are small — the
        paper's MMC-constrained optimizer never sees more than ~10 vertices,
        and refinement usually leaves singleton classes).
        """
        if self._canonical is not None:
            return self._canonical
        names = sorted(self.vertices)
        colors: dict[str, tuple] = {
            n: (self.vertices[n].label, self.vertices[n].pred_key()) for n in names
        }
        for _ in range(len(names)):
            signature: dict[str, tuple] = {}
            for n in names:
                incident = sorted(
                    (
                        e.label,
                        e.direction_from(n),
                        colors[e.other(n)],
                        e.pred_key(),
                    )
                    for e in self._incident[n]
                )
                signature[n] = (colors[n], tuple(incident))
            # Re-index signatures to compact colors.
            distinct = sorted(set(signature.values()))
            remap = {sig: i for i, sig in enumerate(distinct)}
            new_colors = {n: (remap[signature[n]], colors[n]) for n in names}
            if len(set(new_colors.values())) == len(set(colors.values())):
                colors = new_colors
                break
            colors = new_colors
        # Group by final color; permute within groups for the minimal code.
        groups: dict[tuple, list[str]] = {}
        for n in names:
            groups.setdefault(colors[n], []).append(n)
        ordered_groups = [groups[c] for c in sorted(groups)]
        best: tuple | None = None
        for perm in _group_permutations(ordered_groups):
            index = {n: i for i, n in enumerate(perm)}
            vertex_part = tuple(
                (self.vertices[n].label, self.vertices[n].pred_key()) for n in perm
            )
            edge_part = tuple(
                sorted(
                    (index[e.src], index[e.dst], e.label, e.pred_key())
                    for e in self.edges.values()
                )
            )
            code = (vertex_part, edge_part)
            if best is None or code < best:
                best = code
        assert best is not None
        self._canonical = best
        return best

    def isomorphic_to(self, other: "PatternGraph") -> bool:
        return self.canonical_code() == other.canonical_code()

    def __repr__(self) -> str:
        vs = ", ".join(f"{v.name}:{v.label}" for v in self.vertices.values())
        es = ", ".join(
            f"{e.src}-[{e.label}]->{e.dst}" for e in self.edges.values()
        )
        return f"Pattern({vs} | {es})"


def _group_permutations(groups: list[list[str]]):
    """All orderings that permute names only within their color group."""
    per_group = [list(itertools.permutations(g)) for g in groups]
    for combo in itertools.product(*per_group):
        yield [n for group in combo for n in group]


class PatternBuilder:
    """Fluent builder: ``PatternGraph.builder().vertex(...).edge(...).build()``."""

    def __init__(self) -> None:
        self._vertices: list[PatternVertex] = []
        self._edges: list[PatternEdge] = []
        self._auto_edge = 0

    def vertex(
        self, name: str, label: str, predicate: Expr | None = None
    ) -> "PatternBuilder":
        self._vertices.append(PatternVertex(name, label, predicate))
        return self

    def edge(
        self,
        src: str,
        dst: str,
        label: str,
        name: str | None = None,
        predicate: Expr | None = None,
    ) -> "PatternBuilder":
        if name is None:
            self._auto_edge += 1
            name = f"_e{self._auto_edge}"
        self._edges.append(PatternEdge(name, label, src, dst, predicate))
        return self

    def build(self) -> PatternGraph:
        pattern = PatternGraph(self._vertices, self._edges)
        if pattern.num_vertices and not pattern.is_connected():
            raise PlanError("pattern graphs must be connected (Sec 2.2)")
        return pattern
