"""RGMapping: the relations-to-graph mapping of Sec 2.1.

An :class:`RGMapping` declares which relations are **vertex relations** and
which are **edge relations**, and materializes the two total functions
``λˢ`` and ``λᵗ`` that send each edge tuple to its source / target vertex
tuple through primary-/foreign-key relationships.  Tuples are mapped to graph
elements as:

* identifier — the tuple's rowid (the paper: "the row ID of the tuple in the
  relation can be directly used as the ID", with the relation name as a
  disambiguating prefix; we keep (label, rowid) pairs);
* label — the mapping's label (defaults to the relation name);
* attributes — the declared property columns.

The mapping is *virtual*: no graph is materialized (the GRainDB design the
paper adopts), only the graph index derives physical structures from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError, SchemaError
from repro.relational.catalog import Catalog


@dataclass(frozen=True)
class VertexMapping:
    """Maps one relation to vertices with ``label``.

    ``key`` is the column holding the vertex identifier (the relation's
    primary key); ``properties`` are the exposed attribute columns (defaults
    to every column).
    """

    label: str
    table_name: str
    key: str
    properties: tuple[str, ...]


@dataclass(frozen=True)
class EdgeMapping:
    """Maps one relation to edges with ``label``.

    ``source_key``/``target_key`` are the foreign-key columns in the edge
    relation; ``source_label``/``target_label`` name the endpoint vertex
    mappings; together with the vertex keys they realize ``λˢ`` and ``λᵗ``.
    """

    label: str
    table_name: str
    source_label: str
    source_key: str
    target_label: str
    target_key: str
    properties: tuple[str, ...]


@dataclass
class RGMapping:
    """A named property graph defined over a catalog's relations."""

    name: str
    catalog: Catalog
    vertices: dict[str, VertexMapping] = field(default_factory=dict)
    edges: dict[str, EdgeMapping] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_vertex(
        self,
        table_name: str,
        label: str | None = None,
        key: str | None = None,
        properties: list[str] | None = None,
    ) -> VertexMapping:
        """Declare a vertex relation.

        ``key`` defaults to the table's primary key; ``label`` to the table
        name; ``properties`` to all columns.
        """
        table = self.catalog.table(table_name)
        label = label or table_name
        if label in self.vertices or label in self.edges:
            raise CatalogError(f"label {label!r} already used in graph {self.name!r}")
        key = key or table.schema.primary_key
        if key is None:
            raise SchemaError(
                f"vertex table {table_name!r} needs a primary key (or explicit key)"
            )
        if not table.schema.has_column(key):
            raise SchemaError(f"no column {key!r} in {table_name!r}")
        props = tuple(properties) if properties is not None else tuple(
            table.schema.column_names
        )
        for p in props:
            if not table.schema.has_column(p):
                raise SchemaError(f"no property column {p!r} in {table_name!r}")
        mapping = VertexMapping(label, table_name, key, props)
        self.vertices[label] = mapping
        return mapping

    def add_edge(
        self,
        table_name: str,
        source: tuple[str, str],
        target: tuple[str, str],
        label: str | None = None,
        properties: list[str] | None = None,
    ) -> EdgeMapping:
        """Declare an edge relation.

        Args:
            table_name: the edge relation.
            source: ``(source_vertex_label, fk_column_in_edge_table)``.
            target: ``(target_vertex_label, fk_column_in_edge_table)``.
            label: edge label, defaulting to the table name.
            properties: exposed attribute columns (defaults to all).
        """
        table = self.catalog.table(table_name)
        label = label or table_name
        if label in self.edges or label in self.vertices:
            raise CatalogError(f"label {label!r} already used in graph {self.name!r}")
        source_label, source_key = source
        target_label, target_key = target
        for endpoint_label in (source_label, target_label):
            if endpoint_label not in self.vertices:
                raise CatalogError(
                    f"edge {label!r} references unknown vertex label {endpoint_label!r}"
                )
        for fk in (source_key, target_key):
            if not table.schema.has_column(fk):
                raise SchemaError(f"no column {fk!r} in {table_name!r}")
        props = tuple(properties) if properties is not None else tuple(
            table.schema.column_names
        )
        mapping = EdgeMapping(
            label, table_name, source_label, source_key, target_label, target_key, props
        )
        self.edges[label] = mapping
        return mapping

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def vertex(self, label: str) -> VertexMapping:
        try:
            return self.vertices[label]
        except KeyError:
            raise CatalogError(
                f"no vertex label {label!r} in graph {self.name!r}"
            ) from None

    def edge(self, label: str) -> EdgeMapping:
        try:
            return self.edges[label]
        except KeyError:
            raise CatalogError(
                f"no edge label {label!r} in graph {self.name!r}"
            ) from None

    def vertex_table(self, label: str):
        return self.catalog.table(self.vertex(label).table_name)

    def edge_table(self, label: str):
        return self.catalog.table(self.edge(label).table_name)

    def vertex_labels(self) -> list[str]:
        return sorted(self.vertices)

    def edge_labels(self) -> list[str]:
        return sorted(self.edges)

    def edge_labels_between(self, source_label: str, target_label: str) -> list[str]:
        """Edge labels whose endpoints are exactly (source_label, target_label)."""
        return sorted(
            label
            for label, em in self.edges.items()
            if em.source_label == source_label and em.target_label == target_label
        )

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check that ``λˢ`` and ``λᵗ`` are total functions.

        Every foreign-key value of every edge tuple must resolve to exactly
        one vertex tuple (resolution uses the vertex table's PK index, which
        itself rejects duplicates).  Raises :class:`SchemaError` on dangling
        references.
        """
        for label, em in self.edges.items():
            table = self.catalog.table(em.table_name)
            for endpoint_label, fk in (
                (em.source_label, em.source_key),
                (em.target_label, em.target_key),
            ):
                vm = self.vertex(endpoint_label)
                vtable = self.catalog.table(vm.table_name)
                fk_values = table.column(fk)
                for rowid, value in enumerate(fk_values):
                    if value is None or vtable.pk_lookup(value) is None:
                        raise SchemaError(
                            f"edge {label!r} tuple {rowid} has dangling "
                            f"{fk}={value!r} into {vm.table_name!r}"
                        )

    def __repr__(self) -> str:
        return (
            f"RGMapping({self.name!r}, vertices={sorted(self.vertices)}, "
            f"edges={sorted(self.edges)})"
        )
