"""Parameterized plan cache: fingerprints, templates, rebinding.

Repeated query *shapes* dominate a serving workload, and for short queries
the frontend (lexer → parser → binder → optimizer) costs more than
execution.  The cache removes that cost for repeats:

1. **Fingerprint** — a regex scan normalizes the query text: string and
   number literals become ``?``, comments drop, whitespace collapses.  The
   literal values are collected *in text order*, which is exactly the slot
   numbering the parameterizing parser assigns (each NUMBER / STRING token
   in token order), so slot ``i`` of any query matching the fingerprint
   rebinds to that query's i-th literal.
2. **Template** — on a miss, the query is parsed with
   ``Parser(parameterize=True)``: expression-position literals become
   :class:`~repro.relational.expr.ParamLiteral` nodes carrying their slot,
   while structurally-consumed literals (LIMIT count, LIKE / STARTS WITH
   patterns, IN-list members, implicit-alias projections) are **baked** —
   their values are part of the plan shape, so the cache keys template
   *variants* by the baked values.  The optimized physical plan is stored
   with the set of slots its ParamLiterals carry.
3. **Rebind** — on a hit, the plan tree is re-walked: operators whose
   expressions hold ParamLiterals are shallow-cloned with the literals
   substituted (:func:`~repro.relational.expr.substitute_params`); subtrees
   without parameters are *shared* with the template, which is safe because
   plan nodes are execution-immutable (the PR 5 scheduler already executes
   one tree concurrently).

**Safety valve** — ``and_()`` dedups conjuncts by string, constant folding
may merge literals, and other transforms can drop a ParamLiteral from the
final plan (e.g. ``x = 5 AND x = 5`` collapses to one conjunct, losing a
slot).  After optimizing, the cache compares the slots actually present in
the physical plan against the slots the parser handed out; on any mismatch
the query still executes, but the template is **not cached** — correctness
never depends on a transform being parameter-preserving.

Invalidation: each entry is stamped with the catalog's schema/statistics
``version``; a stale stamp is a miss (the entry is dropped and re-optimized
under the new catalog).  Capacity is LRU-bounded.
"""

from __future__ import annotations

import copy
import re
import threading
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ParameterError
from repro.exec.operator import Operator
from repro.graph.physical import StarLeg
from repro.relational.expr import Expr, param_slots, substitute_params
from repro.relational.logical import AggregateSpec

# ---------------------------------------------------------------------- #
# fingerprinting
# ---------------------------------------------------------------------- #

#: One alternation pass over the query text.  Order matters: strings and
#: comments must win over the identifier / number rules so quoted text is
#: never tokenized.  Mirrors the lexer: ``''`` escapes inside strings,
#: ``--`` comments to end of line, numbers are ``\d+(\.\d+)?`` (the lexer's
#: trailing-dot rule: ``1.x`` lexes as NUMBER 1, ``.``, IDENT).
_SCAN = re.compile(
    r"""
      '(?:[^']|'')*'            # string literal (with '' escapes)
    | --[^\n]*                  # line comment
    | [^\W\d]\w*                # identifier / keyword
    | \d+(?:\.\d+)?             # number literal
    | \?                        # DB-API parameter placeholder
    """,
    re.VERBOSE,
)


class _Placeholder:
    """Sentinel occupying a ``?`` placeholder's slot until params merge."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "?"


PLACEHOLDER = _Placeholder()

#: The only bindable parameter types — exactly the value types SQL text
#: literals can express, so a params-bound query and its literal-spliced
#: twin always share one fingerprint key.  bool is excluded explicitly:
#: it is an int subclass but the text form (TRUE/FALSE) is a keyword, not
#: a scanner literal, and would split the keyspace.
_BINDABLE = (int, float, str)


@dataclass(frozen=True)
class Fingerprint:
    """Normalized query text + its literals, in text (= slot) order."""

    normalized: str
    values: tuple[Any, ...]
    type_names: tuple[str, ...]

    @property
    def key(self) -> tuple[str, tuple[str, ...]]:
        """Cache key: normalized text + literal *types* (an int vs float in
        the same slot binds typed kernels differently, so they get separate
        templates)."""
        return (self.normalized, self.type_names)


def scan_text(sql: str) -> tuple[str, tuple[Any, ...]]:
    """Normalize ``sql`` and collect its slot values, without parsing.

    String/number literals carry their value; ``?`` placeholders carry the
    :data:`PLACEHOLDER` sentinel (merged against params later).  Both
    normalize to ``?`` in the text, which is why a prepared statement and
    a literal-spliced query of the same shape share one normalized form.
    """
    values: list[Any] = []

    def norm(match: re.Match) -> str:
        text = match.group(0)
        head = text[0]
        if head == "'":
            values.append(text[1:-1].replace("''", "'"))
            return "?"
        if text.startswith("--"):
            return " "
        if head.isdigit():
            values.append(float(text) if "." in text else int(text))
            return "?"
        if head == "?":
            values.append(PLACEHOLDER)
            return "?"
        return text
    normalized = " ".join(_SCAN.sub(norm, sql).split())
    return normalized, tuple(values)


def merge_params(values: tuple[Any, ...], params) -> tuple[Any, ...]:
    """Fill every :data:`PLACEHOLDER` slot in ``values`` from ``params``.

    Raises :class:`~repro.errors.ParameterError` on count mismatch or a
    value outside the bindable literal types (int/float/str).
    """
    slots = [i for i, v in enumerate(values) if v is PLACEHOLDER]
    given = () if params is None else tuple(params)
    if len(given) != len(slots):
        raise ParameterError(
            f"statement has {len(slots)} '?' placeholder(s) but "
            f"{len(given)} parameter(s) were bound"
        )
    for value in given:
        if not isinstance(value, _BINDABLE) or isinstance(value, bool):
            raise ParameterError(
                f"cannot bind parameter {value!r}: only int, float and str "
                "values are bindable"
            )
    if not slots:
        return values
    merged = list(values)
    for i, value in zip(slots, given):
        merged[i] = value
    return tuple(merged)


def fingerprint(sql: str, params=None) -> Fingerprint:
    """Scan ``sql`` into a :class:`Fingerprint` without parsing it.

    ``params`` binds ``?`` placeholders positionally (DB-API style); the
    merged values land in the same slot numbering inline literals use, so
    ``age = ?`` with ``params=[28]`` and ``age = 28`` produce identical
    fingerprints — and therefore share one cached plan template.
    """
    normalized, raw = scan_text(sql)
    vals = merge_params(raw, params)
    return Fingerprint(normalized, vals, tuple(type(v).__name__ for v in vals))


# ---------------------------------------------------------------------- #
# template rebinding
# ---------------------------------------------------------------------- #

#: Attribute names that can carry expressions with ParamLiterals.  The
#: rebind walk only descends into these (plus operator children), so it
#: never touches bulk data attributes (CSR arrays, pointer columns).
_EXPR_ATTRS = (
    "predicate",
    "edge_predicate",
    "src_predicate",
    "dst_predicate",
    "vertex_predicate",
    "condition",
    "residual",
    "exprs",
    "keys",
    "group_by",
    "aggregates",
    "legs",
)

_CHILD_ATTRS = ("child", "left", "right", "graph_op", "plans")


def _rebind_item(item: Any, values) -> Any:
    """Rebind one element of an expression-bearing attribute; returns the
    input object when nothing underneath holds a parameter."""
    if isinstance(item, Expr):
        return substitute_params(item, values)
    if isinstance(item, tuple):
        parts = tuple(_rebind_item(p, values) for p in item)
        if all(a is b for a, b in zip(parts, item)):
            return item
        return parts
    if isinstance(item, list):
        parts = [_rebind_item(p, values) for p in item]
        if all(a is b for a, b in zip(parts, item)):
            return item
        return parts
    if isinstance(item, AggregateSpec):
        if item.arg is None:
            return item
        arg = substitute_params(item.arg, values)
        return item if arg is item.arg else AggregateSpec(item.func, arg, item.alias)
    if isinstance(item, StarLeg):
        if item.edge_predicate is None:
            return item
        pred = substitute_params(item.edge_predicate, values)
        return item if pred is item.edge_predicate else replace(
            item, edge_predicate=pred
        )
    return item


def _collect_item_slots(item: Any, out: set[int]) -> None:
    if isinstance(item, Expr):
        out.update(param_slots(item))
    elif isinstance(item, (tuple, list)):
        for part in item:
            _collect_item_slots(part, out)
    elif isinstance(item, AggregateSpec):
        if item.arg is not None:
            out.update(param_slots(item.arg))
    elif isinstance(item, StarLeg):
        if item.edge_predicate is not None:
            out.update(param_slots(item.edge_predicate))


def plan_param_slots(plan: Operator) -> set[int]:
    """Every ParamLiteral slot reachable in ``plan`` (the safety valve's
    "what survived optimization" side)."""
    out: set[int] = set()
    seen: set[int] = set()

    def visit(op) -> None:
        if id(op) in seen:
            return
        seen.add(id(op))
        for attr in _EXPR_ATTRS:
            item = getattr(op, attr, None)
            if item is not None:
                _collect_item_slots(item, out)
        for attr in _CHILD_ATTRS:
            node = getattr(op, attr, None)
            if isinstance(node, Operator):
                visit(node)
            elif isinstance(node, list):
                for sub in node:
                    if isinstance(sub, Operator):
                        visit(sub)

    visit(plan)
    return out


def bind_plan(plan: Operator, values) -> Operator:
    """The template plan with every ParamLiteral bound to ``values[slot]``.

    Operators on a path to a substituted expression are shallow-cloned
    (with their memoized ``_label_text`` dropped — labels print literal
    values); untouched subtrees are shared with the template.  Sharing is
    safe: execution never mutates plan nodes (per-query state lives in the
    ExecutionContext and operator-local generator frames).
    """

    def visit(op: Operator) -> Operator:
        clone = None

        def mutate(attr: str, value: Any) -> None:
            nonlocal clone
            if clone is None:
                clone = copy.copy(op)
                clone.__dict__.pop("_label_text", None)
            setattr(clone, attr, value)

        for attr in _EXPR_ATTRS:
            item = getattr(op, attr, None)
            if item is not None:
                bound = _rebind_item(item, values)
                if bound is not item:
                    mutate(attr, bound)
        for attr in _CHILD_ATTRS:
            node = getattr(op, attr, None)
            if isinstance(node, Operator):
                rebound = visit(node)
                if rebound is not node:
                    mutate(attr, rebound)
            elif isinstance(node, list) and node and isinstance(node[0], Operator):
                rebound_list = [visit(sub) for sub in node]
                if any(a is not b for a, b in zip(rebound_list, node)):
                    mutate(attr, rebound_list)
        return clone if clone is not None else op

    return visit(plan)


# ---------------------------------------------------------------------- #
# the cache
# ---------------------------------------------------------------------- #


@dataclass
class PlanTemplate:
    """One cached optimized plan, parameterized over its expr slots."""

    optimized: Any  # OptimizedQuery — the template's physical plan holds ParamLiterals
    expr_slots: frozenset[int]
    baked_slots: frozenset[int]
    catalog_version: int

    def bind(self, values) -> Operator:
        if not self.expr_slots:
            return self.optimized.physical
        return bind_plan(self.optimized.physical, values)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    uncacheable: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "uncacheable": self.uncacheable,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


#: Default LRU capacity (distinct (fingerprint, baked-values) variants).
DEFAULT_CAPACITY = 256


class PlanCache:
    """LRU of :class:`PlanTemplate` keyed by fingerprint + baked values.

    Thread-safe: sessions of one Database share a single cache under a
    lock (lookups are dict operations; optimization happens outside the
    lock, so a slow optimize never blocks other sessions' hits).  A racy
    double-optimize of the same shape is benign — last store wins.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = max(1, capacity)
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: dict[tuple, dict[tuple, PlanTemplate]] = {}
        self._order: list[tuple] = []  # LRU order of (key, baked) pairs

    def lookup(
        self, fp: Fingerprint, baked_probe: "dict[frozenset[int], tuple] | None" = None
    ) -> PlanTemplate | None:
        """The live template for ``fp``, or None (a miss).

        A fingerprint's variants differ in which slots their parser run
        baked — but every variant of one normalized text bakes the *same*
        slot set (baking is decided by grammar position, not value), so the
        first variant's ``baked_slots`` selects this query's baked values.
        """
        with self._lock:
            bucket = self._entries.get(fp.key)
            if bucket:
                baked_key = next(iter(bucket.values())).baked_slots
                variant = tuple(fp.values[s] for s in sorted(baked_key))
                entry = bucket.get(variant)
                if entry is not None:
                    if entry.catalog_version != self._catalog_version():
                        self.stats.invalidations += 1
                        self._evict(fp.key, variant)
                    else:
                        self.stats.hits += 1
                        self._touch((fp.key, variant))
                        return entry
            self.stats.misses += 1
            return None

    def store(self, fp: Fingerprint, template: PlanTemplate) -> None:
        variant = tuple(fp.values[s] for s in sorted(template.baked_slots))
        with self._lock:
            bucket = self._entries.setdefault(fp.key, {})
            if variant not in bucket:
                self._order.append((fp.key, variant))
            bucket[variant] = template
            self._touch((fp.key, variant))
            while len(self._order) > self.capacity:
                old_key, old_variant = self._order[0]
                self._evict(old_key, old_variant)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._order.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    # -- internals (caller holds the lock) ------------------------------ #

    _catalog_version_fn = None

    def bind_catalog(self, catalog) -> "PlanCache":
        """Attach the catalog whose ``version`` gates entry liveness."""
        self._catalog_version_fn = lambda: catalog.version
        return self

    def _catalog_version(self) -> int:
        fn = self._catalog_version_fn
        return fn() if fn is not None else 0

    def _touch(self, pair: tuple) -> None:
        try:
            self._order.remove(pair)
        except ValueError:
            pass
        self._order.append(pair)

    def _evict(self, key: tuple, variant: tuple) -> None:
        bucket = self._entries.get(key)
        if bucket is not None:
            bucket.pop(variant, None)
            if not bucket:
                self._entries.pop(key, None)
        try:
            self._order.remove((key, variant))
        except ValueError:
            pass


# ---------------------------------------------------------------------- #
# the one cache-or-optimize flow (shared by Database and System wrappers)
# ---------------------------------------------------------------------- #


def compile_template(cache, fp, sql, catalog, optimize, params=None, on_ddl=None):
    """The cache-miss path: parse, bind, optimize, store if rebindable.

    Shared by :func:`cached_optimize` and the prepared-statement handle
    (which skips the fingerprint scan but still compiles here on its first
    execute and after an epoch invalidation).  Returns ``(optimized,
    template_or_None)``; DDL (dispatched to ``on_ddl``) returns
    ``(None, None)``.
    """
    from repro.core.sqlpgq.ast import AstCreateGraph
    from repro.core.sqlpgq.binder import bind_query
    from repro.core.sqlpgq.parser import Parser

    parser = Parser(sql, parameterize=True, params=params)
    statement = parser.parse_statement()
    if on_ddl is not None and isinstance(statement, AstCreateGraph):
        on_ddl(statement)
        return None, None
    query = bind_query(statement, catalog)
    optimized = optimize(query)
    # Safety valve: cache only when every ParamLiteral the parser handed
    # out is still present in the physical plan (and none appeared out of
    # thin air).  ``and_()``'s string-dedup, constant folding, or a rule
    # rewrite can eliminate a parameter (e.g. ``x = 5 AND x = 5``
    # collapses to one conjunct) — such a plan is correct for THIS query
    # but not rebindable, so it executes uncached.
    if plan_param_slots(optimized.physical) != parser.expr_slots:
        cache.stats.uncacheable += 1
        return optimized, None
    template = PlanTemplate(
        optimized=optimized,
        expr_slots=frozenset(parser.expr_slots),
        baked_slots=frozenset(parser.baked_slots),
        catalog_version=catalog.version,
    )
    cache.store(fp, template)
    return optimized, template


def cached_optimize(cache, sql, catalog, optimize, on_ddl=None, params=None):
    """Resolve SQL/PGQ text to an ``OptimizedQuery`` through ``cache``.

    On a hit the returned query carries the rebound physical plan (a
    copy-on-write clone of the template's); on a miss the text is parsed
    in parameterized mode, bound against ``catalog``, run through
    ``optimize`` and stored when the safety valve passes.  DDL statements
    are dispatched to ``on_ddl`` and return ``(None, False)`` (without it,
    DDL raises through ``bind_query``).  ``params`` binds ``?``
    placeholders positionally — merged before fingerprinting, so the
    params path and the literal path share cache entries.  Returns
    ``(optimized, hit)``.
    """
    fp = fingerprint(sql, params)
    entry = cache.lookup(fp)
    if entry is not None:
        bound = entry.bind(fp.values)
        return replace(entry.optimized, physical=bound), True
    optimized, _ = compile_template(
        cache, fp, sql, catalog, optimize, params=params, on_ddl=on_ddl
    )
    if optimized is None:
        return None, False
    return optimized, False
