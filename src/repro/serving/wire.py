"""Wire front-end: a length-prefixed JSON-framed socket protocol.

The serving layer so far is in-process: callers hold a
:class:`~repro.serving.database.Database` and connect sessions directly.
This module puts a socket in front of it so the engine can serve clients
in other processes — and so the test suite can exercise the full
session/pool/cache stack through a real network boundary
(``REPRO_WIRE=1`` swaps every ``Database.connect()`` for a socket-backed
:class:`~repro.serving.client.Client`).

**Framing.**  Every message is a *frame*: a 4-byte big-endian length
followed by that many bytes of UTF-8 JSON (one object).  Frames above
:data:`MAX_FRAME` bytes are a protocol violation.  Requests carry a
client-chosen ``seq``; every reply echoes it, so a client can pipeline
requests over one connection and demultiplex replies.

**Frame types** (request → replies):

====================  =====================================================
``hello``             version handshake → ``hello_ok`` (session id)
``execute``           queue sql (or a prepared ``stmt_id``) with optional
                      ``params``/``timeout`` on the shared worker pool
                      → ``accepted`` (query id); never blocks the
                      connection
``poll``              is the query done?  optional bounded ``wait_s``
                      long-poll → ``status``
``fetch``             consume the next ≤ ``max_rows`` result rows,
                      long-polling up to ``wait_s``
                      → ``rows`` (``done`` flags the final chunk, which
                      carries the execution stats) | ``pending`` | ``error``
``cancel``            cooperative cancel → ``cancel_ok``
``prepare``           prepared statement → ``prepared`` (stmt id)
``close_stmt``        release a prepared statement → ``close_stmt_ok``
``close``             close the session → ``close_ok``, then disconnect
====================  =====================================================

**Errors.**  Query failures travel as ``error`` frames whose payload is
:func:`repro.errors.error_to_wire` — a stable code plus the structured
constructor data — so :class:`~repro.errors.QueryTimeout`,
:class:`~repro.errors.OutOfMemoryError` and
:class:`~repro.errors.AdmissionError` re-raise *typed* on the client.
Framing violations (oversized frame, malformed JSON, unknown frame type)
get :data:`~repro.errors.PROTOCOL_ERROR_CODE` and the connection is
closed: a peer that cannot frame correctly cannot be trusted with a
session.

**Blocking model.**  One reader thread per connection; it never blocks on
query progress.  ``fetch``/``poll`` long-polls are resolved by the
query's done-callback (running on the pool worker that finished it) or by
a daemon timer expiring the wait — which is why a ``cancel`` frame can
always race a completion and still get service.
"""

from __future__ import annotations

import itertools
import json
import socket
import struct
import threading
from typing import Any

from repro.errors import (
    PROTOCOL_ERROR_CODE,
    ReproError,
    error_to_wire,
)

__all__ = [
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Server",
    "recv_frame",
    "send_frame",
]

#: Wire protocol version; bumped on any incompatible frame change.
PROTOCOL_VERSION = 1

#: Hard per-frame byte limit (both directions).  Large results are
#: streamed in ``fetch`` chunks, so no legitimate frame approaches this.
MAX_FRAME = 16 * 1024 * 1024

#: Server-side cap on one long-poll wait; clients re-issue to wait longer
#: (keeps every registered timer short-lived).
MAX_WAIT_S = 30.0

#: Default ``fetch`` chunk size when the client does not ask for one.
DEFAULT_FETCH_ROWS = 1024


class ProtocolError(ReproError):
    """The peer violated the framing protocol (oversized frame, malformed
    JSON, unknown frame type, bad handshake).  Maps to
    :data:`~repro.errors.PROTOCOL_ERROR_CODE` on the wire."""


# ---------------------------------------------------------------------- #
# framing
# ---------------------------------------------------------------------- #

_HEADER = struct.Struct(">I")


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Serialize ``payload`` and write one length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None  # clean EOF between frames, or mid-frame truncation
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` on EOF; :class:`ProtocolError` on garbage."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds MAX_FRAME")
    body = _recv_exact(sock, length)
    if body is None:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


# ---------------------------------------------------------------------- #
# the server
# ---------------------------------------------------------------------- #


class _WireQuery:
    """One in-flight query on a connection: the future + a fetch cursor."""

    __slots__ = ("pending", "offset")

    def __init__(self, pending):
        self.pending = pending
        self.offset = 0


class _Waiter:
    """One outstanding long-poll (``fetch``/``poll``): exactly one of the
    done-callback or the expiry timer claims it and sends the reply."""

    __slots__ = ("_claimed", "_lock", "timer")

    def __init__(self):
        self._lock = threading.Lock()
        self._claimed = False
        self.timer: threading.Timer | None = None

    def claim(self) -> bool:
        with self._lock:
            if self._claimed:
                return False
            self._claimed = True
        if self.timer is not None:
            self.timer.cancel()
        return True


class _Connection:
    """Server side of one client socket: a session plus its reader thread."""

    def __init__(self, server: "Server", sock: socket.socket, conn_id: int):
        self.server = server
        self.sock = sock
        self.conn_id = conn_id
        # _local_connect, not connect(): under REPRO_WIRE=1 connect() is
        # swapped to return wire clients, and a server-side session built
        # through it would recurse into this very server.
        self.session = server.database._local_connect()
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._queries: dict[int, _WireQuery] = {}
        self._statements: dict[int, Any] = {}
        self._ids = itertools.count(1)
        self._cleaned = False
        self.thread = threading.Thread(
            target=self._serve, name=f"repro-wire-conn-{conn_id}", daemon=True
        )

    # -- plumbing -------------------------------------------------------- #

    def _send(self, payload: dict) -> None:
        try:
            with self._send_lock:
                send_frame(self.sock, payload)
        except OSError:
            pass  # peer gone; the reader thread handles the disconnect

    def _send_error(self, seq, exc: BaseException) -> None:
        self._send({"seq": seq, "type": "error", "error": error_to_wire(exc)})

    def _protocol_error(self, seq, message: str) -> None:
        self._send(
            {
                "seq": seq,
                "type": "error",
                "error": {"code": PROTOCOL_ERROR_CODE, "message": message},
            }
        )

    # -- reader loop ----------------------------------------------------- #

    def _serve(self) -> None:
        try:
            while True:
                try:
                    frame = recv_frame(self.sock)
                except ProtocolError as exc:
                    # Framing is broken; one best-effort error, then hang up.
                    self._protocol_error(None, str(exc))
                    return
                except OSError:
                    return
                if frame is None:  # EOF (including mid-stream disconnect)
                    return
                if not self._dispatch(frame):
                    return
        finally:
            self._cleanup()

    def _dispatch(self, frame: dict) -> bool:
        seq = frame.get("seq")
        kind = frame.get("type")
        handler = getattr(self, f"_on_{kind}", None) if isinstance(kind, str) else None
        if handler is None:
            self._protocol_error(seq, f"unknown frame type: {kind!r}")
            return False
        try:
            return handler(seq, frame)
        except ReproError as exc:
            self._send_error(seq, exc)
            return True
        except Exception as exc:  # noqa: BLE001 - server bug, not a wire fault
            self._send_error(seq, exc)
            return True

    # -- frame handlers --------------------------------------------------- #

    def _on_hello(self, seq, frame) -> bool:
        protocol = frame.get("protocol")
        if protocol != PROTOCOL_VERSION:
            self._protocol_error(
                seq,
                f"protocol version mismatch: client {protocol!r}, "
                f"server {PROTOCOL_VERSION}",
            )
            return False
        self._send(
            {
                "seq": seq,
                "type": "hello_ok",
                "protocol": PROTOCOL_VERSION,
                "session_id": self.session.session_id,
            }
        )
        return True

    def _on_execute(self, seq, frame) -> bool:
        params = frame.get("params")
        timeout = frame.get("timeout")
        stmt_id = frame.get("stmt_id")
        if stmt_id is not None:
            with self._lock:
                statement = self._statements.get(stmt_id)
            if statement is None:
                self._protocol_error(seq, f"unknown stmt_id: {stmt_id}")
                return True
            pending = statement.submit(params, timeout=timeout)
        else:
            sql = frame.get("sql")
            if not isinstance(sql, str):
                self._protocol_error(seq, "execute frame requires sql or stmt_id")
                return True
            pending = self.session.submit(sql, timeout=timeout, params=params)
        with self._lock:
            query_id = next(self._ids)
            self._queries[query_id] = _WireQuery(pending)
        self._send({"seq": seq, "type": "accepted", "query_id": query_id})
        return True

    def _on_poll(self, seq, frame) -> bool:
        query = self._query(seq, frame)
        if query is None:
            return True
        wait_s = min(float(frame.get("wait_s") or 0.0), MAX_WAIT_S)

        def reply(_pending=None) -> None:
            self._send(
                {"seq": seq, "type": "status", "done": query.pending.done()}
            )

        if wait_s <= 0 or query.pending.done():
            reply()
            return True
        self._longpoll(query, wait_s, on_done=reply, on_expiry=reply)
        return True

    def _on_fetch(self, seq, frame) -> bool:
        query = self._query(seq, frame)
        if query is None:
            return True
        wait_s = min(float(frame.get("wait_s") or 0.0), MAX_WAIT_S)
        max_rows = int(frame.get("max_rows") or DEFAULT_FETCH_ROWS)
        if query.pending.done():
            self._reply_fetch(seq, frame.get("query_id"), query, max_rows)
            return True
        if wait_s <= 0:
            self._send({"seq": seq, "type": "pending"})
            return True
        self._longpoll(
            query,
            wait_s,
            on_done=lambda _p=None: self._reply_fetch(
                seq, frame.get("query_id"), query, max_rows
            ),
            on_expiry=lambda: self._send({"seq": seq, "type": "pending"}),
        )
        return True

    def _on_cancel(self, seq, frame) -> bool:
        query_id = frame.get("query_id")
        with self._lock:
            query = self._queries.get(query_id)
        if query is not None:
            query.pending.cancel(str(frame.get("reason") or "cancelled by client"))
        # Idempotent: cancelling a finished/unknown query is not an error.
        self._send({"seq": seq, "type": "cancel_ok", "known": query is not None})
        return True

    def _on_prepare(self, seq, frame) -> bool:
        sql = frame.get("sql")
        if not isinstance(sql, str):
            self._protocol_error(seq, "prepare frame requires sql")
            return True
        statement = self.session.prepare(sql)
        with self._lock:
            stmt_id = next(self._ids)
            self._statements[stmt_id] = statement
        self._send({"seq": seq, "type": "prepared", "stmt_id": stmt_id})
        return True

    def _on_close_stmt(self, seq, frame) -> bool:
        with self._lock:
            statement = self._statements.pop(frame.get("stmt_id"), None)
        if statement is not None:
            statement.close()
        self._send({"seq": seq, "type": "close_stmt_ok"})
        return True

    def _on_close(self, seq, frame) -> bool:
        self._send({"seq": seq, "type": "close_ok"})
        return False  # reader exits; _cleanup closes the session

    # -- long-poll / fetch internals -------------------------------------- #

    def _query(self, seq, frame) -> _WireQuery | None:
        query_id = frame.get("query_id")
        with self._lock:
            query = self._queries.get(query_id)
        if query is None:
            self._protocol_error(seq, f"unknown query_id: {query_id}")
        return query

    def _longpoll(self, query: _WireQuery, wait_s, on_done, on_expiry) -> None:
        waiter = _Waiter()

        def done_cb(_pending) -> None:
            if waiter.claim():
                on_done()

        def expire() -> None:
            if waiter.claim():
                on_expiry()

        timer = threading.Timer(wait_s, expire)
        timer.daemon = True
        waiter.timer = timer
        timer.start()
        query.pending.add_done_callback(done_cb)

    def _reply_fetch(self, seq, query_id, query: _WireQuery, max_rows: int) -> None:
        """Send the next chunk (or the error) of a *finished* query.

        Serialized per connection by ``_send_lock``-free design: the
        cursor is only advanced here, and a client awaits each fetch reply
        before issuing the next, so offsets never interleave."""
        try:
            result = query.pending.result(timeout=0)
        except TimeoutError:  # pragma: no cover - only called when done
            self._send({"seq": seq, "type": "pending"})
            return
        except BaseException as exc:  # noqa: BLE001 - shipped to the client
            with self._lock:
                self._queries.pop(query_id, None)
            self._send_error(seq, exc)
            return
        chunk = result.rows[query.offset : query.offset + max_rows]
        query.offset += len(chunk)
        done = query.offset >= len(result.rows)
        frame: dict = {
            "seq": seq,
            "type": "rows",
            "columns": list(result.columns),
            "rows": [list(row) for row in chunk],
            "done": done,
        }
        if done:
            frame["stats"] = {
                "execution_time": result.execution_time,
                "rows_produced": result.rows_produced,
                "peak_buffered_rows": result.peak_buffered_rows,
            }
            with self._lock:
                self._queries.pop(query_id, None)
        self._send(frame)

    # -- teardown ---------------------------------------------------------- #

    def _cleanup(self) -> None:
        with self._lock:
            if self._cleaned:
                return
            self._cleaned = True
            queries = list(self._queries.values())
            self._queries.clear()
            self._statements.clear()
        for query in queries:
            query.pending.cancel("client disconnected")
        self.session.close()  # cancels + drains; releases leases and spill
        try:
            self.sock.close()
        except OSError:
            pass
        self.server._forget(self)

    def shutdown(self) -> None:
        """Force-disconnect (server close): unblocks the reader thread."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class Server:
    """Serve a :class:`~repro.serving.database.Database` over a socket.

    ``Server(db)`` binds ``127.0.0.1`` on an ephemeral port (see
    :attr:`address`), spawns an accept thread, and gives every accepted
    connection its own session and reader thread.  Queries run on the
    database's shared worker pool — a flood of connections cannot spawn
    unbounded query threads.

    ``close()`` is a barrier: it stops accepting, force-disconnects every
    connection (whose cleanup cancels in-flight queries and closes its
    session, releasing leases and spill directories), and joins every
    server thread.
    """

    def __init__(self, database, host: str = "127.0.0.1", port: int = 0):
        self.database = database
        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._conns: set[_Connection] = set()
        self._conn_ids = itertools.count(1)
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-wire-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if self._closed:
                    sock.close()
                    return
                conn = _Connection(self, sock, next(self._conn_ids))
                self._conns.add(conn)
            conn.thread.start()

    def _forget(self, conn: _Connection) -> None:
        with self._lock:
            self._conns.discard(conn)

    @property
    def connections(self) -> int:
        with self._lock:
            return len(self._conns)

    def close(self) -> None:
        """Stop accepting, disconnect every client, join all threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
        # A thread blocked in accept() does not reliably observe a close()
        # from another thread; a throwaway connection wakes it so it can
        # see the closed flag and exit.
        try:
            with socket.create_connection(self.address, timeout=1.0):
                pass
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in conns:
            conn.shutdown()
        for conn in conns:
            conn.thread.join()
        self._accept_thread.join()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
