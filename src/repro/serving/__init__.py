"""Serving layer: sessions, plan cache, admission — the long-lived shell.

The paper's evaluation runs one query at a time; a serving deployment runs
*many*, concurrently, against data that keeps growing.  This package is the
thin stateful tier that turns the single-shot framework into that:

* :class:`~repro.serving.database.Database` — catalog + config + shared
  :class:`~repro.exec.governor.MemoryGovernor` + shared
  :class:`~repro.serving.plan_cache.PlanCache`; ``connect()`` opens
  sessions.
* :class:`~repro.serving.database.Session` — submits SQL / SQL-PGQ text;
  ``execute`` is synchronous, ``submit`` returns a cancellable
  :class:`~repro.serving.database.PendingQuery`; ``close()`` tears down
  everything in flight.
* :mod:`~repro.serving.plan_cache` — parameterized plan caching: repeated
  query shapes skip lexer/parser/binder/optimizer entirely, rebinding
  literals into a cached optimized plan.

Single-shot semantics are unchanged: a Database with a default config and
an unbounded governor executes exactly what ``RelGoFramework.run`` would —
the serving tier adds reuse and admission, never different answers.
"""

from repro.serving.database import Database, PendingQuery, Session
from repro.serving.plan_cache import (
    CacheStats,
    Fingerprint,
    PlanCache,
    PlanTemplate,
    bind_plan,
    cached_optimize,
    fingerprint,
    plan_param_slots,
)

__all__ = [
    "Database",
    "Session",
    "PendingQuery",
    "PlanCache",
    "PlanTemplate",
    "CacheStats",
    "Fingerprint",
    "fingerprint",
    "bind_plan",
    "cached_optimize",
    "plan_param_slots",
]
