"""Serving layer: sessions, plan cache, admission, pool, wire — the shell.

The paper's evaluation runs one query at a time; a serving deployment runs
*many*, concurrently, against data that keeps growing.  This package is the
thin stateful tier that turns the single-shot framework into that:

* :class:`~repro.serving.database.Database` — catalog + config + shared
  :class:`~repro.exec.governor.MemoryGovernor` + shared
  :class:`~repro.serving.plan_cache.PlanCache` + shared
  :class:`~repro.serving.pool.WorkerPool`; ``connect()`` opens sessions.
* :class:`~repro.serving.database.Session` — submits SQL / SQL-PGQ text;
  ``execute`` is synchronous (with optional DB-API ``?`` ``params``),
  ``submit`` queues a cancellable
  :class:`~repro.serving.database.PendingQuery` on the shared pool,
  ``prepare`` returns a
  :class:`~repro.serving.prepared.PreparedStatement`; ``close()`` tears
  down everything in flight.
* :mod:`~repro.serving.plan_cache` — parameterized plan caching: repeated
  query shapes skip lexer/parser/binder/optimizer entirely, rebinding
  literals into a cached optimized plan.
* :mod:`~repro.serving.wire` / :mod:`~repro.serving.client` — a
  length-prefixed JSON-framed socket protocol
  (:class:`~repro.serving.wire.Server`) and its blocking
  :class:`~repro.serving.client.Client`, a drop-in ``Session`` over the
  network; every :class:`~repro.errors.ReproError` maps to a stable wire
  code (:data:`~repro.errors.WIRE_CODES`) so typed failures round-trip.

Single-shot semantics are unchanged: a Database with a default config and
an unbounded governor executes exactly what ``RelGoFramework.run`` would —
the serving tier adds reuse, admission and transport, never different
answers.
"""

from repro.errors import (
    INTERNAL_ERROR_CODE,
    PROTOCOL_ERROR_CODE,
    WIRE_CODES,
    error_code,
    error_from_wire,
    error_to_wire,
)
from repro.serving.client import Client, WirePendingQuery, WirePreparedStatement
from repro.serving.database import Database, PendingQuery, Session
from repro.serving.plan_cache import (
    CacheStats,
    Fingerprint,
    PlanCache,
    PlanTemplate,
    bind_plan,
    cached_optimize,
    fingerprint,
    plan_param_slots,
)
from repro.serving.pool import WorkerPool
from repro.serving.prepared import PreparedStatement
from repro.serving.wire import ProtocolError, Server

__all__ = [
    # stateful shell
    "Database",
    "Session",
    "PendingQuery",
    "PreparedStatement",
    "WorkerPool",
    # wire front-end
    "Server",
    "Client",
    "WirePendingQuery",
    "WirePreparedStatement",
    "ProtocolError",
    # wire error codes
    "WIRE_CODES",
    "INTERNAL_ERROR_CODE",
    "PROTOCOL_ERROR_CODE",
    "error_code",
    "error_to_wire",
    "error_from_wire",
    # plan cache
    "PlanCache",
    "PlanTemplate",
    "CacheStats",
    "Fingerprint",
    "fingerprint",
    "bind_plan",
    "cached_optimize",
    "plan_param_slots",
]
