"""Explicit prepared statements: bind params straight into a plan template.

``Session.execute(sql)`` already amortizes the frontend through the plan
cache, but every call still pays the *fingerprint scan* (a regex pass over
the text) plus the shared-cache lookup.  A :class:`PreparedStatement`
hoists that per-call work to ``prepare`` time:

* **prepare** — one :func:`~repro.serving.plan_cache.scan_text` pass
  captures the normalized text and the inline-literal/placeholder slot
  layout.  Nothing is parsed or optimized yet (the first ``execute``
  compiles, because compilation needs bound parameter values — a ``?`` in
  a structural position like ``LIMIT ?`` is baked into the plan shape).
* **execute(params)** — merges ``params`` into the captured slots and
  binds directly into the statement-local template:
  ``template.bind(values)`` rebinds ParamLiterals copy-on-write.  No
  fingerprint scan, no literal re-splice, no shared-cache probe on the
  hot path.
* **invalidation** — every template is stamped with the catalog version
  (the same epoch the shared plan cache uses).  DDL bumps the version;
  the next ``execute`` sees the stale stamp and transparently
  re-prepares against the new schema.

Templates are keyed per (parameter type signature, baked values): an
``int`` vs ``float`` in the same slot binds different typed kernels, and
a baked slot's value is part of the plan shape.  Misses fall back to the
shared :class:`~repro.serving.plan_cache.PlanCache` (so a statement
prepared after identical ad-hoc traffic starts hot) and then to a full
compile.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.sqlpgq.binder import execute_ddl
from repro.errors import SessionClosed
from repro.exec.context import QueryResult
from repro.serving.plan_cache import (
    Fingerprint,
    PlanTemplate,
    compile_template,
    merge_params,
    scan_text,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (database imports us)
    from repro.serving.database import PendingQuery, Session

__all__ = ["PreparedStatement"]

#: Statement-local template variants kept per handle.  Baked placeholders
#: (``LIMIT ?``) key one variant per distinct value; the shared cache is
#: LRU-bounded, so the local mirror is bounded too (FIFO, oldest out).
_MAX_LOCAL_VARIANTS = 32


class PreparedStatement:
    """A reusable handle for one SQL/PGQ statement (from ``Session.prepare``).

    Thread-safe: concurrent ``execute`` calls on one handle are allowed
    (each gets its own :class:`~repro.exec.context.QueryHandle`, snapshot
    pin and lease; the template dict is lock-protected and templates are
    execution-immutable).  ``close()`` releases the handle; the session
    closes any statements still open when it closes.
    """

    def __init__(self, session: "Session", sql: str):
        self.session = session
        self.sql = sql
        normalized, raw = scan_text(sql)
        self._normalized = normalized
        self._raw_values = raw
        self._lock = threading.Lock()
        # (type_names, baked_values) -> PlanTemplate; baked slot set is a
        # property of the normalized text, learned from the first compile.
        self._templates: dict[tuple, PlanTemplate] = {}
        self._baked_slots: frozenset[int] | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def execute(
        self,
        params: Sequence[Any] | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Bind ``params`` and run the statement to completion.

        Raises :class:`~repro.errors.ParameterError` when ``params`` does
        not match the statement's ``?`` placeholders (count or type).
        """
        self._check_open()
        handle = self.session._register_handle(timeout)
        try:
            plan = self._resolve_plan(params)
            if plan is None:  # DDL: applied as a side effect of resolving
                return QueryResult(
                    columns=["status"], rows=[("ok",)],
                    execution_time=0.0, rows_produced=1,
                )
            return self.session._run(plan, handle)
        finally:
            self.session._unregister_handle(handle)

    def submit(
        self,
        params: Sequence[Any] | None = None,
        timeout: float | None = None,
    ) -> "PendingQuery":
        """Queue an execution on the shared worker pool (async twin of
        :meth:`execute`); plan resolution happens on the worker through
        the statement's template fast path."""
        self._check_open()
        return self.session._submit_prepared(self, params, timeout)

    # ------------------------------------------------------------------ #
    # plan resolution (the no-scan hot path)
    # ------------------------------------------------------------------ #

    def _resolve_plan(self, params: Sequence[Any] | None):
        """Executable physical plan for ``params`` (None for DDL).

        Fast path: merge params → statement-local template → ``bind``.
        Fallbacks: shared plan cache (mirrored locally on hit), then a
        full parse/bind/optimize via ``compile_template``.
        """
        database = self.session.database
        merged = merge_params(self._raw_values, params)
        type_names = tuple(type(v).__name__ for v in merged)
        version = database.catalog.version

        with self._lock:
            if self._baked_slots is not None:
                key = (
                    type_names,
                    tuple(merged[s] for s in sorted(self._baked_slots)),
                )
                entry = self._templates.get(key)
                if entry is not None:
                    if entry.catalog_version == version:
                        return entry.bind(merged)
                    # DDL epoch moved: drop every stale template and
                    # transparently re-prepare below.
                    self._templates.clear()
                    self._baked_slots = None

        # Shared-cache probe: identical ad-hoc traffic (or another
        # session's prepare) may have compiled this shape already.
        fp = Fingerprint(self._normalized, merged, type_names)
        entry = database.plan_cache.lookup(fp)
        if entry is not None:
            self._remember(entry, type_names, merged)
            return entry.bind(merged)

        optimized, template = compile_template(
            database.plan_cache,
            fp,
            self.sql,
            database.catalog,
            lambda query: database.framework().optimize(query),
            params=params,
            on_ddl=lambda statement: execute_ddl(statement, database.catalog),
        )
        if optimized is None:
            return None  # DDL
        if template is not None:
            self._remember(template, type_names, merged)
        # Uncacheable (safety valve) plans execute directly, uncached.
        return optimized.physical

    def _remember(
        self, template: PlanTemplate, type_names: tuple, merged: tuple
    ) -> None:
        with self._lock:
            self._baked_slots = template.baked_slots
            key = (
                type_names,
                tuple(merged[s] for s in sorted(template.baked_slots)),
            )
            self._templates[key] = template
            while len(self._templates) > _MAX_LOCAL_VARIANTS:
                self._templates.pop(next(iter(self._templates)))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release the handle (idempotent); further ``execute`` raises."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._templates.clear()
        self.session._forget_statement(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosed(f"prepared statement is closed: {self.sql!r}")
        if self.session.closed:
            raise SessionClosed(f"session {self.session.session_id} is closed")

    def __enter__(self) -> "PreparedStatement":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self._templates)} template(s)"
        return f"PreparedStatement({self.sql!r}, {state})"
