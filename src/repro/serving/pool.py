"""Shared bounded worker pool: the serving layer's concurrency core.

PR 9's ``Session.submit`` spawned one daemon thread per in-flight query,
so N sessions × M submissions meant N×M threads — unbounded fan-out the
moment clients misbehave.  This module replaces that with one
:class:`WorkerPool` owned by the :class:`~repro.serving.database.Database`:

* **Bounded.**  At most ``size`` worker threads exist, ever; they are
  spawned on demand (a Database that never sees a ``submit`` starts no
  threads) and joined by :meth:`close`.
* **FIFO admission.**  Tasks run in submission order.  The queue sits
  *ahead* of the :class:`~repro.exec.governor.MemoryGovernor` lease: a
  queued query holds no memory lease, no snapshot pin and no spill
  directory — it is just an entry in a deque — so a saturated pool
  degrades into queueing latency instead of resource exhaustion.
* **Cancellation-aware.**  Tasks expose ``run()`` and ``abandon()``;
  cancelling a *queued* task completes it immediately via ``abandon()``
  without waiting for a worker (see
  :class:`~repro.serving.database.PendingQuery`), so ``Session.close()``
  never blocks behind other sessions' work.

Size resolution: explicit constructor argument, else ``REPRO_WORKERS``,
else :data:`DEFAULT_WORKERS`.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Protocol

from repro.errors import SessionClosed

__all__ = ["DEFAULT_WORKERS", "PoolTask", "WorkerPool", "resolve_workers"]

#: Default worker count: enough to overlap I/O-ish queries on small boxes
#: without oversubscribing CI runners; serving deployments size it via
#: ``REPRO_WORKERS`` or ``Database(workers=...)``.
DEFAULT_WORKERS = 4


def resolve_workers(size: int | None) -> int:
    """An explicit size wins; otherwise ``REPRO_WORKERS``; else default."""
    if size is not None:
        if size < 1:
            raise ValueError(f"worker pool size must be >= 1, got {size}")
        return size
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return DEFAULT_WORKERS
    try:
        parsed = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be an integer, got {raw!r}"
        ) from None
    if parsed < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {parsed}")
    return parsed


class PoolTask(Protocol):
    """What the pool runs: a unit of work that can also be refused."""

    def run(self) -> None:  # pragma: no cover - protocol
        """Execute on a worker thread; must not raise (tasks capture their
        own errors — a future that let an exception escape would kill the
        shared worker's usefulness for attribution)."""

    def abandon(self, reason: str) -> None:  # pragma: no cover - protocol
        """Complete the task without running it (queue drained at close)."""


class WorkerPool:
    """A fixed-size FIFO thread pool with deterministic shutdown.

    Threads are named ``repro-pool-<n>`` and spawned lazily: the first
    ``submit`` starts worker 0, and a new worker starts whenever a task is
    queued with no idle worker and the pool is below ``size``.  ``close``
    drains still-queued tasks through ``abandon`` and joins every worker —
    after it returns, the pool owns zero threads.
    """

    def __init__(self, size: int | None = None, name: str = "repro-pool"):
        self.size = resolve_workers(size)
        self.name = name
        self._cond = threading.Condition()
        self._queue: deque[PoolTask] = deque()
        self._workers: list[threading.Thread] = []
        self._idle = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit(self, task: PoolTask) -> None:
        """Queue ``task`` (FIFO).  Raises ``SessionClosed`` after close."""
        with self._cond:
            if self._closed:
                raise SessionClosed("worker pool is closed")
            self._queue.append(task)
            if self._idle == 0 and len(self._workers) < self.size:
                worker = threading.Thread(
                    target=self._work,
                    name=f"{self.name}-{len(self._workers)}",
                    daemon=True,
                )
                self._workers.append(worker)
                worker.start()
            else:
                self._cond.notify()

    # ------------------------------------------------------------------ #
    # worker loop
    # ------------------------------------------------------------------ #

    def _work(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._idle += 1
                    try:
                        self._cond.wait()
                    finally:
                        self._idle -= 1
                if not self._queue:  # closed and drained
                    return
                task = self._queue.popleft()
            task.run()

    # ------------------------------------------------------------------ #
    # lifecycle / observability
    # ------------------------------------------------------------------ #

    def close(self, timeout: float | None = None) -> None:
        """Refuse new work, abandon queued tasks, join every worker.

        Running tasks are *not* interrupted here — cancellation flows
        through each query's :class:`~repro.exec.context.QueryHandle`
        (the Database cancels sessions before closing the pool), so a
        worker finishes its current task cooperatively and exits.
        """
        with self._cond:
            if self._closed:
                workers = list(self._workers)
            else:
                self._closed = True
                drained = list(self._queue)
                self._queue.clear()
                workers = list(self._workers)
                self._cond.notify_all()
            abandoned = locals().get("drained", [])
        for task in abandoned:
            task.abandon("worker pool closed")
        for worker in workers:
            worker.join(timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def worker_count(self) -> int:
        """Workers ever started (bounded by ``size``; daemons until close)."""
        with self._cond:
            return len(self._workers)

    @property
    def queued_tasks(self) -> int:
        with self._cond:
            return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerPool(size={self.size}, workers={self.worker_count}, "
            f"queued={self.queued_tasks}, closed={self._closed})"
        )
