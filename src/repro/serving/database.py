"""The serving layer: Database / Session / PendingQuery.

Everything below this module already exists — the SQL/PGQ frontend, the
converged optimizer, the streaming executor with its governor, handles,
deadlines and spill.  This module is the *stateful shell* a long-lived
process needs around them:

* :class:`Database` — owns one catalog, one :class:`RelGoConfig`, one
  :class:`~repro.exec.governor.MemoryGovernor` (admission control shared by
  every session), one :class:`~repro.serving.plan_cache.PlanCache`
  (optimized plans shared by every session) and one
  :class:`~repro.serving.pool.WorkerPool` (a bounded set of query worker
  threads shared by every session — ``submit`` queues FIFO instead of
  spawning a thread per query).
* :class:`Session` — a connection.  ``execute(sql)`` runs SQL / SQL-PGQ
  text synchronously; ``submit(sql)`` returns a :class:`PendingQuery`
  queued on the shared pool; ``prepare(sql)`` returns a
  :class:`~repro.serving.prepared.PreparedStatement`.  Every query gets a
  :class:`~repro.exec.context.QueryHandle`, so anything in flight is
  cancellable, and ``close()`` cancels + drains everything the session
  started — no leaked threads, leases or spill directories.
* :class:`PendingQuery` — a cancellable future over one submitted query.

Consistency model (MVCC-lite, PR 9): the executor pins every table the
plan touches to one epoch at query start, so queries see an immutable
snapshot while writers append freely.  The serving layer adds nothing on
top — it just guarantees each ``execute`` call goes through
``execute_plan`` and therefore through snapshot pinning.  A *queued*
PendingQuery holds nothing: no snapshot pin, no memory lease, no spill
directory — admission to the pool comes strictly before the governor
lease, so a saturated pool degrades into queueing latency.

Plan-cache flow per ``execute``::

    fingerprint(sql, params)               (regex scan, no parsing)
      ├─ hit  -> template.bind(values)     (rebind ParamLiterals; no
      │                                     lexer/parser/binder/optimizer)
      └─ miss -> parse(parameterize=True) -> bind -> optimize
                 -> safety valve -> cache.store -> execute

``params`` (DB-API ``?`` placeholders) merge into the same slot order the
scan assigns inline literals, so ``age = ?`` with ``params=[28]`` and
``age = 28`` share one cache entry.  Precedence: explicit ``params`` bind
placeholders *only* — inline literals in the same statement are still
normalized by the fingerprint scan and rebound per-execution like always;
the two mechanisms compose rather than conflict.

DDL (``CREATE PROPERTY GRAPH``) bypasses the cache and bumps the
catalog version, which invalidates every cached plan optimized under the
old schema (and every prepared statement compiled under it).
"""

from __future__ import annotations

import itertools
import os
import threading
import warnings
from typing import Any, Callable, Sequence

from repro.core.framework import OptimizedQuery, RelGoConfig, RelGoFramework
from repro.core.sqlpgq.binder import execute_ddl
from repro.errors import QueryCancelled, SessionClosed
from repro.exec.context import QueryHandle, QueryResult, execute_plan, resolve_timeout
from repro.exec.governor import MemoryGovernor, resolve_governor
from repro.relational.catalog import Catalog
from repro.serving.plan_cache import DEFAULT_CAPACITY, PlanCache, cached_optimize
from repro.serving.pool import WorkerPool
from repro.serving.prepared import PreparedStatement

#: Result returned for DDL statements (no rows to stream; the side effect
#: already happened when this is built).
def _ddl_result() -> QueryResult:
    return QueryResult(
        columns=["status"], rows=[("ok",)], execution_time=0.0, rows_produced=1
    )


class Database:
    """One catalog + config + governor + plan cache + worker pool.

    The Database owns no query state — that lives in sessions — so it is
    safe to share across threads.  ``close()`` closes every open session,
    then shuts the worker pool down (joining its threads).

    ``workers`` bounds the shared pool (default: ``REPRO_WORKERS`` or 4);
    pool threads are spawned lazily on the first ``submit``, so a Database
    used only for synchronous ``execute`` owns zero threads.
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        config: RelGoConfig | None = None,
        governor: MemoryGovernor | None = None,
        cache_capacity: int = DEFAULT_CAPACITY,
        workers: int | None = None,
    ):
        self.catalog = catalog if catalog is not None else Catalog()
        self.config = config if config is not None else RelGoConfig()
        # None -> the process-global governor (unbounded by default), same
        # resolution rule as execute_plan, but pinned once so every session
        # of this Database shares one admission domain.
        self.governor = resolve_governor(governor)
        self.plan_cache = PlanCache(cache_capacity).bind_catalog(self.catalog)
        self.pool = WorkerPool(workers)
        self._lock = threading.Lock()
        self._sessions: dict[int, "Session"] = {}
        self._session_ids = itertools.count(1)
        self._framework: RelGoFramework | None = None
        self._framework_version = -1
        self._wire_server = None  # lazily started under REPRO_WIRE=1
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def connect(self):
        """Open a session.

        With ``REPRO_WIRE=1`` in the environment this transparently starts
        an in-process :class:`~repro.serving.wire.Server` (once) and
        returns a socket-backed :class:`~repro.serving.client.Client`
        instead of an in-process :class:`Session` — same surface, so the
        whole serving suite runs through a real network boundary.
        """
        if os.environ.get("REPRO_WIRE"):
            return self._wire_connect()
        return self._local_connect()

    def _local_connect(self) -> "Session":
        """The in-process session path (what the wire server itself uses —
        a server-side connection must never recurse into the swap-in)."""
        with self._lock:
            if self._closed:
                raise SessionClosed("database is closed")
            session = Session(self, next(self._session_ids))
            self._sessions[session.session_id] = session
        return session

    def _wire_connect(self):
        from repro.serving.client import Client
        from repro.serving.wire import Server

        with self._lock:
            if self._closed:
                raise SessionClosed("database is closed")
            if self._wire_server is None:
                self._wire_server = Server(self)
            server = self._wire_server
        return Client(server.address)

    def serve(self, host: str = "127.0.0.1", port: int = 0):
        """Start (or return) the wire server for this database."""
        from repro.serving.wire import Server

        with self._lock:
            if self._closed:
                raise SessionClosed("database is closed")
            if self._wire_server is None:
                self._wire_server = Server(self, host=host, port=port)
            return self._wire_server

    def close(self) -> None:
        """Close the wire server (if any), every session, then the pool.

        Session close cancels in-flight queries and waits them out, so by
        the time the pool is closed its queue is empty and its workers are
        idle — ``pool.close`` just joins them.  After ``close()`` returns
        the Database owns zero threads.
        """
        with self._lock:
            self._closed = True
            sessions = list(self._sessions.values())
            server = self._wire_server
            self._wire_server = None
        if server is not None:
            server.close()
        for session in sessions:
            session.close()
        self.pool.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _forget(self, session: "Session") -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)

    @property
    def open_sessions(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------ #
    # optimization plumbing (shared by all sessions)
    # ------------------------------------------------------------------ #

    def warmup(self) -> None:
        """Offline warm-up: graph index, statistics, GLogue.

        Bumps the catalog version (DDL-equivalent), then re-anchors the
        cached framework to the *post*-warmup version so the warmed GLogue
        survives until the next real schema/statistics change.
        """
        framework = self.framework()
        framework.prepare()
        with self._lock:
            self._framework_version = self.catalog.version

    def prepare(self) -> None:
        """Deprecated alias for :meth:`warmup`.

        ``prepare`` now belongs to statements (:meth:`Session.prepare`
        returns a :class:`PreparedStatement`); the offline warm-up kept the
        old name only until callers migrate.
        """
        warnings.warn(
            "Database.prepare() is deprecated; use Database.warmup()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.warmup()

    def framework(self) -> RelGoFramework:
        """The optimizer bound to the current catalog version.

        Rebuilt whenever the version moved (new graph, new statistics), so
        cached estimator state can never leak across schema changes —
        mirroring how the plan cache invalidates its entries.
        """
        with self._lock:
            version = self.catalog.version
            if self._framework is None or self._framework_version != version:
                self._framework = RelGoFramework(self.catalog, config=self.config)
                self._framework_version = version
            return self._framework

    def _prepare_plan(
        self, sql: str, params: Sequence[Any] | None = None
    ) -> "tuple[Any, OptimizedQuery | None, bool]":
        """Resolve SQL text to an executable physical plan.

        Returns ``(plan, optimized_or_None, cache_hit)``; ``plan`` is None
        for DDL statements (already applied as a side effect).  ``params``
        bind ``?`` placeholders positionally.
        """
        optimized, hit = cached_optimize(
            self.plan_cache,
            sql,
            self.catalog,
            lambda query: self.framework().optimize(query),
            on_ddl=lambda statement: execute_ddl(statement, self.catalog),
            params=params,
        )
        if optimized is None:
            return None, None, False
        return optimized.physical, optimized, hit


class Session:
    """One connection: ``execute``, asynchronous ``submit``, ``prepare``.

    A session is *not* a thread-confined object — ``submit`` runs queries
    on the database's shared worker pool against the same session — but
    its bookkeeping is lock-protected, and ``close()`` is a barrier: it
    cancels every in-flight handle, waits out every pending query (queued
    ones complete immediately as cancelled, without occupying a worker),
    and only then returns.
    """

    def __init__(self, database: Database, session_id: int):
        self.database = database
        self.session_id = session_id
        self._lock = threading.Lock()
        self._handles: set[QueryHandle] = set()
        self._pending: list[PendingQuery] = []
        self._statements: list[PreparedStatement] = []
        self._closed = False

    # ------------------------------------------------------------------ #
    # query execution
    # ------------------------------------------------------------------ #

    def execute(
        self,
        sql: str,
        timeout: float | None = None,
        params: Sequence[Any] | None = None,
    ) -> QueryResult:
        """Parse/bind/optimize (or cache-hit) and run ``sql`` to completion.

        ``timeout`` overrides the config deadline for this query only.
        ``params`` bind DB-API ``?`` placeholders positionally (int/float/
        str), reusing the prepared-statement binding path — a
        placeholder-bound query shares its cached plan template with the
        literal-spliced form of the same shape.  DDL returns an empty
        result with a ``status`` column.
        """
        handle = self._register_handle(timeout)
        try:
            plan, _, _ = self.database._prepare_plan(sql, params=params)
            if plan is None:
                return _ddl_result()
            return self._run(plan, handle)
        finally:
            self._unregister_handle(handle)

    def submit(
        self,
        sql: str,
        timeout: float | None = None,
        params: Sequence[Any] | None = None,
    ) -> "PendingQuery":
        """Queue ``sql`` on the shared worker pool; returns a future.

        FIFO across all sessions of the database.  A queued query holds no
        resources (no lease, no snapshot pin); its deadline clock starts
        at ``submit`` — time spent queued counts against the timeout, so a
        saturated pool surfaces as :class:`~repro.errors.QueryTimeout`
        rather than invisible latency.
        """
        handle = self._register_handle(timeout)
        pending = PendingQuery(self, sql, handle, params=params)
        with self._lock:
            self._pending.append(pending)
        try:
            self.database.pool.submit(pending)
        except SessionClosed:
            self._forget_pending(pending)
            self._unregister_handle(handle)
            raise
        return pending

    def _submit_prepared(
        self,
        statement: PreparedStatement,
        params: Sequence[Any] | None,
        timeout: float | None,
    ) -> "PendingQuery":
        """Queue a prepared-statement execution on the shared pool (the
        statement's template fast path runs on the worker)."""
        handle = self._register_handle(timeout)
        pending = PendingQuery(
            self,
            statement.sql,
            handle,
            params=params,
            resolver=lambda: statement._resolve_plan(params),
        )
        with self._lock:
            self._pending.append(pending)
        try:
            self.database.pool.submit(pending)
        except SessionClosed:
            self._forget_pending(pending)
            self._unregister_handle(handle)
            raise
        return pending

    def prepare(self, sql: str) -> PreparedStatement:
        """Compile ``sql`` once; execute it many times with bound params.

        The returned :class:`PreparedStatement` scans the text a single
        time at prepare; each ``execute(params)`` binds directly into the
        cached plan template — no fingerprint scan, no literal re-splice.
        DDL bumping the catalog version transparently re-prepares on the
        next execute.
        """
        with self._lock:
            if self._closed:
                raise SessionClosed(f"session {self.session_id} is closed")
            statement = PreparedStatement(self, sql)
            self._statements.append(statement)
        return statement

    def _run(self, plan, handle: QueryHandle) -> QueryResult:
        config = self.database.config
        return execute_plan(
            plan,
            memory_budget_rows=config.memory_budget_rows,
            batch_size=config.batch_size,
            columnar=config.columnar,
            parallelism=config.parallelism,
            handle=handle,
            governor=self.database.governor,
            spill=config.spill,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Cancel everything in flight, drain it, detach from the db.

        Idempotent; after it returns no pool task, memory lease or spill
        directory started by this session remains live.  Queued (not yet
        running) queries complete immediately as cancelled; running ones
        stop cooperatively at their next batch boundary.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
            pending = list(self._pending)
            statements = list(self._statements)
        for statement in statements:
            statement.close()
        for p in pending:
            p.cancel("session closed")
        for handle in handles:
            handle.cancel("session closed")
        for p in pending:
            p._await_done()
        with self._lock:
            self._pending.clear()
            self._handles.clear()
            self._statements.clear()
        self.database._forget(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # handle bookkeeping
    # ------------------------------------------------------------------ #

    def _register_handle(self, timeout: float | None) -> QueryHandle:
        deadline = resolve_timeout(
            timeout if timeout is not None else self.database.config.query_timeout
        )
        handle = QueryHandle(deadline)
        with self._lock:
            if self._closed:
                raise SessionClosed(f"session {self.session_id} is closed")
            self._handles.add(handle)
        return handle

    def _unregister_handle(self, handle: QueryHandle) -> None:
        with self._lock:
            self._handles.discard(handle)

    def _forget_pending(self, pending: "PendingQuery") -> None:
        with self._lock:
            try:
                self._pending.remove(pending)
            except ValueError:
                pass

    def _forget_statement(self, statement: PreparedStatement) -> None:
        with self._lock:
            try:
                self._statements.remove(statement)
            except ValueError:
                pass


class PendingQuery:
    """A cancellable future over one submitted query.

    Runs on the database's shared :class:`~repro.serving.pool.WorkerPool`
    (it *is* the pool task: the pool calls :meth:`run`).  Three states:

    * **queued** — in the pool's FIFO, holding no resources.  ``cancel``
      here completes the future immediately with
      :class:`~repro.errors.QueryCancelled`; no worker is consumed.
    * **running** — a worker is executing it; ``cancel`` flows through the
      :class:`~repro.exec.context.QueryHandle` and takes effect at the
      next batch boundary.
    * **done** — ``result()`` returns the :class:`QueryResult` or
      re-raises the query's error with the originating query text and
      session id attached as an exception note.
    """

    def __init__(
        self,
        session: Session,
        sql: str,
        handle: QueryHandle,
        params: Sequence[Any] | None = None,
        resolver: Callable[[], Any] | None = None,
    ):
        self.session = session
        self.sql = sql
        self.handle = handle
        self.params = params
        self._resolver = resolver
        self._result: QueryResult | None = None
        self._error: BaseException | None = None
        self._lock = threading.Lock()
        self._started = False
        self._done = threading.Event()
        self._callbacks: list[Callable[["PendingQuery"], None]] = []

    # -- pool task protocol --------------------------------------------- #

    def run(self) -> None:
        """Execute on a pool worker (no-op if cancelled while queued)."""
        with self._lock:
            if self._done.is_set():
                return  # cancelled (or abandoned) before a worker got here
            self._started = True
        try:
            if self._resolver is not None:
                plan = self._resolver()
            else:
                plan, _, _ = self.session.database._prepare_plan(
                    self.sql, params=self.params
                )
            result = _ddl_result() if plan is None else self.session._run(
                plan, self.handle
            )
            self._finish(result=result)
        except BaseException as exc:  # noqa: BLE001 - rethrown in result()
            self._finish(error=exc)

    def abandon(self, reason: str) -> None:
        """Complete as cancelled without running (pool drained at close)."""
        with self._lock:
            if self._done.is_set() or self._started:
                return
        self._finish(error=QueryCancelled(reason))

    # -- consumer API --------------------------------------------------- #

    def cancel(self, reason: str = "query cancelled") -> None:
        """Request cancellation (idempotent, any thread).

        A queued query completes immediately — it never reaches a worker;
        a running query stops cooperatively at its next batch boundary.
        """
        with self._lock:
            if self._done.is_set():
                return
            queued = not self._started
        if queued:
            # Benign race with a worker picking the task up right now:
            # _finish is first-write-wins, and run() rechecks done-ness
            # under the lock before starting.
            self._finish(error=QueryCancelled(reason))
        self.handle.cancel(reason)

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block up to ``timeout`` for completion; True when finished."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> QueryResult:
        """The query's result (blocks; re-raises the query's error).

        A re-raised error carries ``while executing <sql> on session <id>``
        as an exception note, so a failure surfacing far from its
        ``submit`` call is still attributable.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"query still running after {timeout}s: {self.sql!r}")
        if self._error is not None:
            exc = self._error
            if not getattr(exc, "_repro_context_attached", False):
                try:
                    exc._repro_context_attached = True  # type: ignore[attr-defined]
                except Exception:
                    pass
                exc.add_note(
                    f"while executing {self.sql!r} on session "
                    f"{self.session.session_id}"
                )
            raise exc
        assert self._result is not None
        return self._result

    def add_done_callback(self, fn: Callable[["PendingQuery"], None]) -> None:
        """Call ``fn(self)`` when the query completes (immediately if it
        already has).  Callbacks run on the completing thread and must not
        block — the wire server uses this to resolve fetch waiters."""
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    # -- completion ------------------------------------------------------ #

    def _finish(
        self,
        result: QueryResult | None = None,
        error: BaseException | None = None,
    ) -> None:
        with self._lock:
            if self._done.is_set():
                return  # first writer wins (cancel racing completion)
            self._result = result
            self._error = error
            callbacks = self._callbacks
            self._callbacks = []
            self._done.set()
        self.session._unregister_handle(self.handle)
        self.session._forget_pending(self)
        for fn in callbacks:
            try:
                fn(self)
            except Exception:  # pragma: no cover - callbacks must not break completion
                pass

    def _await_done(self) -> None:
        self._done.wait()
