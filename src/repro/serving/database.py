"""The serving layer: Database / Session / PendingQuery.

Everything below this module already exists — the SQL/PGQ frontend, the
converged optimizer, the streaming executor with its governor, handles,
deadlines and spill.  This module is the *stateful shell* a long-lived
process needs around them:

* :class:`Database` — owns one catalog, one :class:`RelGoConfig`, one
  :class:`~repro.exec.governor.MemoryGovernor` (admission control shared by
  every session) and one :class:`~repro.serving.plan_cache.PlanCache`
  (optimized plans shared by every session).
* :class:`Session` — a connection.  ``execute(sql)`` runs SQL / SQL-PGQ
  text synchronously; ``submit(sql)`` returns a :class:`PendingQuery`
  running on its own thread.  Every query gets a
  :class:`~repro.exec.context.QueryHandle`, so anything in flight is
  cancellable, and ``close()`` cancels + joins everything the session
  started — no leaked threads, leases or spill directories.
* :class:`PendingQuery` — a cancellable future over one submitted query.

Consistency model (MVCC-lite, PR 9): the executor pins every table the
plan touches to one epoch at query start, so queries see an immutable
snapshot while writers append freely.  The serving layer adds nothing on
top — it just guarantees each ``execute`` call goes through
``execute_plan`` and therefore through snapshot pinning.

Plan-cache flow per ``execute``::

    fingerprint(sql)                       (regex scan, no parsing)
      ├─ hit  -> template.bind(values)     (rebind ParamLiterals; no
      │                                     lexer/parser/binder/optimizer)
      └─ miss -> parse(parameterize=True) -> bind -> optimize
                 -> safety valve -> cache.store -> execute

DDL (``CREATE PROPERTY GRAPH``) bypasses the cache and bumps the
catalog version, which invalidates every cached plan optimized under the
old schema.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from repro.core.framework import OptimizedQuery, RelGoConfig, RelGoFramework
from repro.core.sqlpgq.binder import execute_ddl
from repro.errors import SessionClosed
from repro.exec.context import QueryHandle, QueryResult, execute_plan, resolve_timeout
from repro.exec.governor import MemoryGovernor, resolve_governor
from repro.relational.catalog import Catalog
from repro.serving.plan_cache import DEFAULT_CAPACITY, PlanCache, cached_optimize


class Database:
    """One catalog + config + governor + plan cache; sessions connect here.

    The Database owns no query state — that lives in sessions — so it is
    safe to share across threads.  ``close()`` closes every open session.
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        config: RelGoConfig | None = None,
        governor: MemoryGovernor | None = None,
        cache_capacity: int = DEFAULT_CAPACITY,
    ):
        self.catalog = catalog if catalog is not None else Catalog()
        self.config = config if config is not None else RelGoConfig()
        # None -> the process-global governor (unbounded by default), same
        # resolution rule as execute_plan, but pinned once so every session
        # of this Database shares one admission domain.
        self.governor = resolve_governor(governor)
        self.plan_cache = PlanCache(cache_capacity).bind_catalog(self.catalog)
        self._lock = threading.Lock()
        self._sessions: dict[int, "Session"] = {}
        self._session_ids = itertools.count(1)
        self._framework: RelGoFramework | None = None
        self._framework_version = -1
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def connect(self) -> "Session":
        with self._lock:
            if self._closed:
                raise SessionClosed("database is closed")
            session = Session(self, next(self._session_ids))
            self._sessions[session.session_id] = session
        return session

    def close(self) -> None:
        """Close every open session (cancelling their in-flight queries)."""
        with self._lock:
            self._closed = True
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _forget(self, session: "Session") -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)

    @property
    def open_sessions(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------ #
    # optimization plumbing (shared by all sessions)
    # ------------------------------------------------------------------ #

    def prepare(self) -> None:
        """Offline warm-up: graph index, statistics, GLogue.

        Bumps the catalog version (DDL-equivalent), then re-anchors the
        cached framework to the *post*-prepare version so the warmed GLogue
        survives until the next real schema/statistics change.
        """
        framework = self.framework()
        framework.prepare()
        with self._lock:
            self._framework_version = self.catalog.version

    def framework(self) -> RelGoFramework:
        """The optimizer bound to the current catalog version.

        Rebuilt whenever the version moved (new graph, new statistics), so
        cached estimator state can never leak across schema changes —
        mirroring how the plan cache invalidates its entries.
        """
        with self._lock:
            version = self.catalog.version
            if self._framework is None or self._framework_version != version:
                self._framework = RelGoFramework(self.catalog, config=self.config)
                self._framework_version = version
            return self._framework

    def _prepare_plan(self, sql: str) -> "tuple[Any, OptimizedQuery | None, bool]":
        """Resolve SQL text to an executable physical plan.

        Returns ``(plan, optimized_or_None, cache_hit)``; ``plan`` is None
        for DDL statements (already applied as a side effect).
        """
        optimized, hit = cached_optimize(
            self.plan_cache,
            sql,
            self.catalog,
            lambda query: self.framework().optimize(query),
            on_ddl=lambda statement: execute_ddl(statement, self.catalog),
        )
        if optimized is None:
            return None, None, False
        return optimized.physical, optimized, hit


class Session:
    """One connection: synchronous ``execute`` and asynchronous ``submit``.

    A session is *not* a thread-confined object — ``submit`` runs queries
    on worker threads against the same session — but its bookkeeping is
    lock-protected, and ``close()`` is a barrier: it cancels every
    in-flight handle, joins every worker, and only then returns.
    """

    def __init__(self, database: Database, session_id: int):
        self.database = database
        self.session_id = session_id
        self._lock = threading.Lock()
        self._handles: set[QueryHandle] = set()
        self._pending: list[PendingQuery] = []
        self._closed = False

    # ------------------------------------------------------------------ #
    # query execution
    # ------------------------------------------------------------------ #

    def execute(self, sql: str, timeout: float | None = None) -> QueryResult:
        """Parse/bind/optimize (or cache-hit) and run ``sql`` to completion.

        ``timeout`` overrides the config deadline for this query only.
        DDL returns an empty result with a ``status`` column.
        """
        handle = self._register_handle(timeout)
        try:
            plan, _, _ = self.database._prepare_plan(sql)
            if plan is None:
                return QueryResult(
                    columns=["status"], rows=[("ok",)],
                    execution_time=0.0, rows_produced=1,
                )
            return self._run(plan, handle)
        finally:
            self._unregister_handle(handle)

    def submit(self, sql: str, timeout: float | None = None) -> "PendingQuery":
        """Start ``sql`` on a worker thread; returns a cancellable future."""
        handle = self._register_handle(timeout)
        pending = PendingQuery(self, sql, handle)
        with self._lock:
            self._pending.append(pending)
        pending._start()
        return pending

    def _run(self, plan, handle: QueryHandle) -> QueryResult:
        config = self.database.config
        return execute_plan(
            plan,
            memory_budget_rows=config.memory_budget_rows,
            batch_size=config.batch_size,
            columnar=config.columnar,
            parallelism=config.parallelism,
            handle=handle,
            governor=self.database.governor,
            spill=config.spill,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Cancel everything in flight, join workers, detach from the db.

        Idempotent; after it returns no thread, memory lease or spill
        directory started by this session remains live.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
            pending = list(self._pending)
        for handle in handles:
            handle.cancel("session closed")
        for p in pending:
            p._join()
        with self._lock:
            self._pending.clear()
            self._handles.clear()
        self.database._forget(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # handle bookkeeping
    # ------------------------------------------------------------------ #

    def _register_handle(self, timeout: float | None) -> QueryHandle:
        deadline = resolve_timeout(
            timeout if timeout is not None else self.database.config.query_timeout
        )
        handle = QueryHandle(deadline)
        with self._lock:
            if self._closed:
                raise SessionClosed(f"session {self.session_id} is closed")
            self._handles.add(handle)
        return handle

    def _unregister_handle(self, handle: QueryHandle) -> None:
        with self._lock:
            self._handles.discard(handle)

    def _forget_pending(self, pending: "PendingQuery") -> None:
        with self._lock:
            try:
                self._pending.remove(pending)
            except ValueError:
                pass


class PendingQuery:
    """A cancellable future over one submitted query.

    ``result()`` blocks until the query finishes and returns its
    :class:`QueryResult` (re-raising the query's error, e.g.
    :class:`~repro.errors.QueryCancelled` after :meth:`cancel`).  The
    worker thread is always joined by ``result`` / ``wait`` / session
    close — a PendingQuery cannot leak its thread.
    """

    def __init__(self, session: Session, sql: str, handle: QueryHandle):
        self.session = session
        self.sql = sql
        self.handle = handle
        self._result: QueryResult | None = None
        self._error: BaseException | None = None
        self._done = threading.Event()
        self._thread = threading.Thread(
            target=self._work, name=f"repro-query-s{session.session_id}", daemon=True
        )

    def _start(self) -> None:
        self._thread.start()

    def _work(self) -> None:
        try:
            plan, _, _ = self.session.database._prepare_plan(self.sql)
            if plan is None:
                self._result = QueryResult(
                    columns=["status"], rows=[("ok",)],
                    execution_time=0.0, rows_produced=1,
                )
            else:
                self._result = self.session._run(plan, self.handle)
        except BaseException as exc:  # noqa: BLE001 - rethrown in result()
            self._error = exc
        finally:
            self.session._unregister_handle(self.handle)
            self._done.set()

    # -- consumer API --------------------------------------------------- #

    def cancel(self, reason: str = "query cancelled") -> None:
        """Request cooperative cancellation (idempotent, any thread)."""
        self.handle.cancel(reason)

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block up to ``timeout`` for completion; True when finished."""
        finished = self._done.wait(timeout)
        if finished:
            self._join()
        return finished

    def result(self, timeout: float | None = None) -> QueryResult:
        """The query's result (blocks; re-raises the query's error)."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"query still running after {timeout}s: {self.sql!r}")
        self._join()
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _join(self) -> None:
        if self._thread.is_alive():
            self._thread.join()
        self.session._forget_pending(self)
