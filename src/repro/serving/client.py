"""Blocking wire client: a drop-in ``Session`` over a socket.

:class:`Client` speaks the :mod:`repro.serving.wire` protocol and exposes
the same surface as :class:`~repro.serving.database.Session` — ``execute``
/ ``submit`` / ``prepare`` / ``close`` — so the serving test suite passes
unchanged with a real network boundary in the middle (``REPRO_WIRE=1``
makes ``Database.connect()`` hand these out).

One background reader thread (``repro-wire-client-…``) demultiplexes
replies by ``seq``, so any number of caller threads can share one
connection: ``submit`` returns a :class:`WirePendingQuery` whose
``result``/``cancel``/``done`` each issue their own correlated requests.
Results stream in bounded ``fetch`` chunks with a server-side long-poll;
a chunk is only consumed when it arrives, so a client-side ``result``
timeout never loses data — the next call resumes where the stream left
off.

Typed errors round-trip: an ``error`` frame rebuilds the original
:class:`~repro.errors.ReproError` subclass (with its structured payload)
via :func:`repro.errors.error_from_wire`, and the query text is attached
as an exception note, exactly like the in-process path.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Any, Sequence

from repro.errors import (
    PROTOCOL_ERROR_CODE,
    QueryCancelled,
    SessionClosed,
    error_from_wire,
)
from repro.exec.context import QueryResult
from repro.serving.wire import (
    DEFAULT_FETCH_ROWS,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)

__all__ = ["Client", "WirePendingQuery", "WirePreparedStatement"]

#: Long-poll bound per fetch/poll round trip; short enough that close and
#: cancel stay responsive, long enough to avoid request churn.
DEFAULT_WAIT_S = 5.0

_client_ids = itertools.count(1)


class _Slot:
    """One outstanding request awaiting its seq-matched reply."""

    __slots__ = ("event", "frame")

    def __init__(self):
        self.event = threading.Event()
        self.frame: dict | None = None


def _raise_wire_error(payload: dict, context: str | None = None):
    if payload.get("code") == PROTOCOL_ERROR_CODE:
        raise ProtocolError(payload.get("message", "protocol error"))
    exc = error_from_wire(payload)
    if context:
        exc.add_note(context)
    raise exc


class Client:
    """A session over a socket (see module docstring).

    ``address`` is the ``(host, port)`` a :class:`~repro.serving.wire.Server`
    reports; the constructor connects and completes the ``hello``
    handshake (raising :class:`~repro.serving.wire.ProtocolError` on a
    version mismatch).
    """

    def __init__(
        self,
        address: tuple[str, int],
        connect_timeout: float | None = 10.0,
        fetch_rows: int = DEFAULT_FETCH_ROWS,
    ):
        self.address = address
        self.fetch_rows = fetch_rows
        self._sock = socket.create_connection(address, timeout=connect_timeout)
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._slots: dict[int, _Slot] = {}
        self._seq = itertools.count(1)
        self._closed = False
        self._broken: BaseException | None = None
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-wire-client-{next(_client_ids)}",
            daemon=True,
        )
        self._reader.start()
        hello = self.call("hello", protocol=PROTOCOL_VERSION)
        self.session_id = hello.get("session_id")

    # ------------------------------------------------------------------ #
    # request/reply plumbing
    # ------------------------------------------------------------------ #

    def _read_loop(self) -> None:
        failure: BaseException = ConnectionError("connection closed by server")
        try:
            while True:
                frame = recv_frame(self._sock)
                if frame is None:
                    # Orderly EOF: the server (or our own close) ended the
                    # session, which is a lifecycle event, not a transport
                    # fault — later calls raise SessionClosed.
                    failure = SessionClosed("connection closed by server")
                    break
                slot = None
                with self._lock:
                    slot = self._slots.pop(frame.get("seq"), None)
                if slot is not None:
                    slot.frame = frame
                    slot.event.set()
                # Unmatched seq: a reply for an abandoned request; drop it.
        except (ProtocolError, OSError) as exc:
            failure = exc
        finally:
            with self._lock:
                self._broken = failure
                slots = list(self._slots.values())
                self._slots.clear()
            for slot in slots:
                slot.event.set()

    def call(self, kind: str, **fields: Any) -> dict:
        """Send one request frame; block for its reply; raise wire errors."""
        with self._lock:
            if self._closed:
                raise SessionClosed("client is closed")
            if isinstance(self._broken, SessionClosed):
                raise SessionClosed(str(self._broken))
            if self._broken is not None:
                raise ConnectionError(str(self._broken))
            seq = next(self._seq)
            slot = _Slot()
            self._slots[seq] = slot
        try:
            with self._send_lock:
                send_frame(self._sock, {"seq": seq, "type": kind, **fields})
        except OSError as exc:
            with self._lock:
                self._slots.pop(seq, None)
            raise ConnectionError(f"send failed: {exc}") from exc
        slot.event.wait()
        if slot.frame is None:
            if isinstance(self._broken, SessionClosed):
                raise SessionClosed(str(self._broken))
            raise ConnectionError(str(self._broken or "connection lost"))
        if slot.frame.get("type") == "error":
            _raise_wire_error(slot.frame.get("error") or {}, fields.get("sql"))
        return slot.frame

    # ------------------------------------------------------------------ #
    # the Session surface
    # ------------------------------------------------------------------ #

    def execute(
        self,
        sql: str,
        timeout: float | None = None,
        params: Sequence[Any] | None = None,
    ) -> QueryResult:
        """Run ``sql`` to completion over the wire (streaming chunks)."""
        return self.submit(sql, timeout=timeout, params=params).result()

    def submit(
        self,
        sql: str,
        timeout: float | None = None,
        params: Sequence[Any] | None = None,
    ) -> "WirePendingQuery":
        """Queue ``sql`` on the server's worker pool; returns a future."""
        accepted = self.call(
            "execute",
            sql=sql,
            params=list(params) if params is not None else None,
            timeout=timeout,
        )
        return WirePendingQuery(self, accepted["query_id"], sql)

    def prepare(self, sql: str) -> "WirePreparedStatement":
        """Server-side prepared statement; params bind per execute."""
        prepared = self.call("prepare", sql=sql)
        return WirePreparedStatement(self, prepared["stmt_id"], sql)

    # ------------------------------------------------------------------ #
    # result streaming (shared by execute / WirePendingQuery.result)
    # ------------------------------------------------------------------ #

    def _collect(
        self, query_id: int, sql: str, timeout: float | None
    ) -> QueryResult:
        deadline = None if timeout is None else time.monotonic() + timeout
        columns: list[str] = []
        rows: list[tuple] = []
        while True:
            wait_s = DEFAULT_WAIT_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"query still running after {timeout}s: {sql!r}"
                    )
                wait_s = min(wait_s, remaining)
            frame = self.call(
                "fetch",
                query_id=query_id,
                wait_s=wait_s,
                max_rows=self.fetch_rows,
                sql=sql,  # server ignores it; error notes pick it up
            )
            kind = frame.get("type")
            if kind == "pending":
                continue
            if kind != "rows":
                raise ProtocolError(f"unexpected fetch reply: {kind!r}")
            columns = frame["columns"]
            rows.extend(tuple(row) for row in frame["rows"])
            if frame.get("done"):
                stats = frame.get("stats") or {}
                return QueryResult(
                    columns=columns,
                    rows=rows,
                    execution_time=stats.get("execution_time", 0.0),
                    rows_produced=stats.get("rows_produced", len(rows)),
                    peak_buffered_rows=stats.get("peak_buffered_rows", 0),
                )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close the session (server side cancels anything in flight)."""
        with self._lock:
            if self._closed:
                return
        try:
            self.call("close")
        except (ConnectionError, SessionClosed, ProtocolError):
            pass  # server may already be gone; the socket close below suffices
        with self._lock:
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._reader.join()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class WirePendingQuery:
    """Client-side future over a server query (mirror of
    :class:`~repro.serving.database.PendingQuery`)."""

    def __init__(self, client: Client, query_id: int, sql: str):
        self.client = client
        self.query_id = query_id
        self.sql = sql
        self._result: QueryResult | None = None
        self._error: BaseException | None = None
        self._finished = False

    def cancel(self, reason: str = "query cancelled") -> None:
        """Ask the server to cancel (idempotent; may race completion)."""
        try:
            self.client.call("cancel", query_id=self.query_id, reason=reason)
        except (ConnectionError, SessionClosed):
            pass  # a dead connection cancels server-side via disconnect

    def done(self) -> bool:
        if self._finished:
            return True
        if self.client.closed:
            return True  # session close cancelled + drained server-side
        frame = self.client.call("poll", query_id=self.query_id)
        return bool(frame.get("done"))

    def wait(self, timeout: float | None = None) -> bool:
        """Block (long-polling) up to ``timeout``; True when finished."""
        if self._finished:
            return True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait_s = DEFAULT_WAIT_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                wait_s = min(wait_s, remaining)
            frame = self.client.call(
                "poll", query_id=self.query_id, wait_s=wait_s
            )
            if frame.get("done"):
                return True
            if deadline is None:
                continue

    def result(self, timeout: float | None = None) -> QueryResult:
        """Stream the result (blocks; re-raises the query's typed error).

        A client-side timeout is loss-free: chunks fetched so far were
        consumed, the rest stay buffered server-side for the next call.
        """
        if self._finished:
            if self._error is not None:
                raise self._error
            assert self._result is not None
            return self._result
        if self.client.closed:
            # Mirrors the in-process future: closing the session cancelled
            # anything in flight, so an unfetched result is a cancellation.
            raise QueryCancelled("session closed before the result was fetched")
        try:
            result = self.client._collect(self.query_id, self.sql, timeout)
        except TimeoutError:
            raise  # loss-free: retryable, so the future is not finished
        except Exception as exc:
            if isinstance(exc, (ConnectionError, ProtocolError)):
                raise  # transport fault, not the query's outcome
            self._error = exc
            self._finished = True
            raise
        self._result = result
        self._finished = True
        return result


class WirePreparedStatement:
    """Client handle for a server-side prepared statement."""

    def __init__(self, client: Client, stmt_id: int, sql: str):
        self.client = client
        self.stmt_id = stmt_id
        self.sql = sql
        self._closed = False

    def execute(
        self,
        params: Sequence[Any] | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        return self.submit(params, timeout=timeout).result()

    def submit(
        self,
        params: Sequence[Any] | None = None,
        timeout: float | None = None,
    ) -> WirePendingQuery:
        if self._closed:
            raise SessionClosed(f"prepared statement is closed: {self.sql!r}")
        accepted = self.client.call(
            "execute",
            stmt_id=self.stmt_id,
            params=list(params) if params is not None else None,
            timeout=timeout,
            sql=self.sql,  # for error notes only
        )
        return WirePendingQuery(self.client, accepted["query_id"], self.sql)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.client.call("close_stmt", stmt_id=self.stmt_id)
        except (ConnectionError, SessionClosed):
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WirePreparedStatement":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
