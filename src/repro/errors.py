"""Exception hierarchy for the RelGo reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without swallowing unrelated bugs.  The two
"resource" errors — :class:`OutOfMemoryError` and
:class:`OptimizationTimeout` — are load-bearing for the evaluation: the paper
records OOM entries (RelGoNoEI on the 4-clique query QC3, Kùzu on IC3-1) and
OT (optimization timeout) entries for the Calcite baseline, and the benchmark
harness reproduces both by catching these exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class CatalogError(ReproError):
    """A referenced table, column, graph or index does not exist (or clashes)."""


class SchemaError(ReproError):
    """Tuple data does not conform to the declared schema."""


class ParseError(ReproError):
    """SQL/PGQ text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = "" if line is None else f" at line {line}, column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(ReproError):
    """A parsed query references names that do not resolve against the catalog."""


class PlanError(ReproError):
    """A logical or physical plan is malformed (internal invariant violated)."""


class ExecutionError(ReproError):
    """A physical operator failed while producing rows."""


class OutOfMemoryError(ExecutionError):
    """The executor's intermediate-result budget was exhausted.

    The reproduction runs with a configurable budget of intermediate rows
    (standing in for the paper's 256 GB RAM limit); plans that materialize
    exploding intermediates — e.g. the 4-clique query without
    EXPAND_INTERSECT — trip this error exactly like the paper's OOM entries.

    ``label`` names the buffered intermediate that tripped (e.g.
    ``"HASH_JOIN (…) build"``) for failure forensics; the trip condition
    itself is label-independent, so the paper's calibrated OOM entries are
    unaffected.
    """

    def __init__(self, rows: int, budget: int, label: str = ""):
        where = f" ({label})" if label else ""
        super().__init__(
            f"intermediate result{where} of {rows} rows exceeds the executor "
            f"budget of {budget} rows"
        )
        self.rows = rows
        self.budget = budget
        self.label = label


class QueryCancelled(ExecutionError):
    """The query's cancellation token was triggered (cooperative stop).

    Raised at the next batch boundary after :meth:`QueryHandle.cancel`; by
    the time it surfaces, operator ``finally`` blocks have run and every
    tracked buffer has been released.
    """

    def __init__(self, reason: str = "query cancelled"):
        super().__init__(reason)
        self.reason = reason


class QueryTimeout(QueryCancelled):
    """The query ran past its deadline (``RelGoConfig.query_timeout`` /
    ``REPRO_QUERY_TIMEOUT`` / ``execute_plan(timeout=)``).

    Subclasses :class:`QueryCancelled` so "stop the query" handling catches
    both; distinct from :class:`OptimizationTimeout`, which is the paper's
    OT entry for the *optimizer* budget.
    """

    def __init__(self, elapsed: float, deadline: float):
        ExecutionError.__init__(
            self,
            f"query ran {elapsed:.3f}s, deadline was {deadline:.3f}s",
        )
        self.reason = "query deadline exceeded"
        self.elapsed = elapsed
        self.deadline = deadline


class AdmissionError(ExecutionError):
    """The memory governor could not grant a budget lease.

    Raised by :meth:`MemoryGovernor.lease` when a query's requested budget
    does not fit in the global pool (immediately if it can never fit,
    otherwise after the admission timeout expires waiting for running
    queries to release their leases).
    """

    def __init__(self, requested: int, total: int, leased: int):
        super().__init__(
            f"cannot lease {requested} budget rows: {leased} of {total} "
            f"already leased"
        )
        self.requested = requested
        self.total = total
        self.leased = leased


class InjectedFault(ExecutionError):
    """An error deliberately raised by the fault-injection harness.

    Only ever raised when ``REPRO_FAULTS`` (or an explicit
    :class:`~repro.exec.faults.FaultInjector`) arms an ``error`` fault; the
    distinct type lets the fault-matrix tests assert that *their* failure —
    not some secondary effect — surfaced at the top.
    """


class OptimizationTimeout(ReproError):
    """The optimizer exceeded its time budget (paper: 10 minutes, marked OT)."""

    def __init__(self, elapsed: float, budget: float):
        super().__init__(f"optimization took {elapsed:.3f}s, budget was {budget:.3f}s")
        self.elapsed = elapsed
        self.budget = budget


class SessionClosed(ReproError):
    """A query was submitted on a closed serving session (or database)."""


class UnsupportedFeatureError(ReproError):
    """The query uses a feature the reproduction deliberately leaves out."""
