"""Exception hierarchy for the RelGo reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without swallowing unrelated bugs.  The two
"resource" errors — :class:`OutOfMemoryError` and
:class:`OptimizationTimeout` — are load-bearing for the evaluation: the paper
records OOM entries (RelGoNoEI on the 4-clique query QC3, Kùzu on IC3-1) and
OT (optimization timeout) entries for the Calcite baseline, and the benchmark
harness reproduces both by catching these exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class CatalogError(ReproError):
    """A referenced table, column, graph or index does not exist (or clashes)."""


class SchemaError(ReproError):
    """Tuple data does not conform to the declared schema."""


class ParseError(ReproError):
    """SQL/PGQ text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = "" if line is None else f" at line {line}, column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(ReproError):
    """A parsed query references names that do not resolve against the catalog."""


class PlanError(ReproError):
    """A logical or physical plan is malformed (internal invariant violated)."""


class ExecutionError(ReproError):
    """A physical operator failed while producing rows."""


class OutOfMemoryError(ExecutionError):
    """The executor's intermediate-result budget was exhausted.

    The reproduction runs with a configurable budget of intermediate rows
    (standing in for the paper's 256 GB RAM limit); plans that materialize
    exploding intermediates — e.g. the 4-clique query without
    EXPAND_INTERSECT — trip this error exactly like the paper's OOM entries.
    """

    def __init__(self, rows: int, budget: int):
        super().__init__(
            f"intermediate result of {rows} rows exceeds the executor budget of {budget} rows"
        )
        self.rows = rows
        self.budget = budget


class OptimizationTimeout(ReproError):
    """The optimizer exceeded its time budget (paper: 10 minutes, marked OT)."""

    def __init__(self, elapsed: float, budget: float):
        super().__init__(f"optimization took {elapsed:.3f}s, budget was {budget:.3f}s")
        self.elapsed = elapsed
        self.budget = budget


class UnsupportedFeatureError(ReproError):
    """The query uses a feature the reproduction deliberately leaves out."""
