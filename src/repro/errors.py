"""Exception hierarchy for the RelGo reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without swallowing unrelated bugs.  The two
"resource" errors — :class:`OutOfMemoryError` and
:class:`OptimizationTimeout` — are load-bearing for the evaluation: the paper
records OOM entries (RelGoNoEI on the 4-clique query QC3, Kùzu on IC3-1) and
OT (optimization timeout) entries for the Calcite baseline, and the benchmark
harness reproduces both by catching these exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class CatalogError(ReproError):
    """A referenced table, column, graph or index does not exist (or clashes)."""


class SchemaError(ReproError):
    """Tuple data does not conform to the declared schema."""


class ParseError(ReproError):
    """SQL/PGQ text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = "" if line is None else f" at line {line}, column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(ReproError):
    """A parsed query references names that do not resolve against the catalog."""


class ParameterError(BindError):
    """Query parameters do not match the statement's ``?`` placeholders.

    Raised when the parameter count differs from the placeholder count,
    when a placeholder is used without passing ``params``, or when a
    parameter value has a type the engine cannot bind (only ``int``,
    ``float`` and ``str`` are bindable — the literal types the SQL text
    itself can express).
    """


class PlanError(ReproError):
    """A logical or physical plan is malformed (internal invariant violated)."""


class ExecutionError(ReproError):
    """A physical operator failed while producing rows."""


class OutOfMemoryError(ExecutionError):
    """The executor's intermediate-result budget was exhausted.

    The reproduction runs with a configurable budget of intermediate rows
    (standing in for the paper's 256 GB RAM limit); plans that materialize
    exploding intermediates — e.g. the 4-clique query without
    EXPAND_INTERSECT — trip this error exactly like the paper's OOM entries.

    ``label`` names the buffered intermediate that tripped (e.g.
    ``"HASH_JOIN (…) build"``) for failure forensics; the trip condition
    itself is label-independent, so the paper's calibrated OOM entries are
    unaffected.
    """

    def __init__(self, rows: int, budget: int, label: str = ""):
        where = f" ({label})" if label else ""
        super().__init__(
            f"intermediate result{where} of {rows} rows exceeds the executor "
            f"budget of {budget} rows"
        )
        self.rows = rows
        self.budget = budget
        self.label = label


class QueryCancelled(ExecutionError):
    """The query's cancellation token was triggered (cooperative stop).

    Raised at the next batch boundary after :meth:`QueryHandle.cancel`; by
    the time it surfaces, operator ``finally`` blocks have run and every
    tracked buffer has been released.
    """

    def __init__(self, reason: str = "query cancelled"):
        super().__init__(reason)
        self.reason = reason


class QueryTimeout(QueryCancelled):
    """The query ran past its deadline (``RelGoConfig.query_timeout`` /
    ``REPRO_QUERY_TIMEOUT`` / ``execute_plan(timeout=)``).

    Subclasses :class:`QueryCancelled` so "stop the query" handling catches
    both; distinct from :class:`OptimizationTimeout`, which is the paper's
    OT entry for the *optimizer* budget.
    """

    def __init__(self, elapsed: float, deadline: float):
        ExecutionError.__init__(
            self,
            f"query ran {elapsed:.3f}s, deadline was {deadline:.3f}s",
        )
        self.reason = "query deadline exceeded"
        self.elapsed = elapsed
        self.deadline = deadline


class AdmissionError(ExecutionError):
    """The memory governor could not grant a budget lease.

    Raised by :meth:`MemoryGovernor.lease` when a query's requested budget
    does not fit in the global pool (immediately if it can never fit,
    otherwise after the admission timeout expires waiting for running
    queries to release their leases).
    """

    def __init__(self, requested: int, total: int, leased: int):
        super().__init__(
            f"cannot lease {requested} budget rows: {leased} of {total} "
            f"already leased"
        )
        self.requested = requested
        self.total = total
        self.leased = leased


class InjectedFault(ExecutionError):
    """An error deliberately raised by the fault-injection harness.

    Only ever raised when ``REPRO_FAULTS`` (or an explicit
    :class:`~repro.exec.faults.FaultInjector`) arms an ``error`` fault; the
    distinct type lets the fault-matrix tests assert that *their* failure —
    not some secondary effect — surfaced at the top.
    """


class OptimizationTimeout(ReproError):
    """The optimizer exceeded its time budget (paper: 10 minutes, marked OT)."""

    def __init__(self, elapsed: float, budget: float):
        super().__init__(f"optimization took {elapsed:.3f}s, budget was {budget:.3f}s")
        self.elapsed = elapsed
        self.budget = budget


class SessionClosed(ReproError):
    """A query was submitted on a closed serving session (or database)."""


class UnsupportedFeatureError(ReproError):
    """The query uses a feature the reproduction deliberately leaves out."""


# ---------------------------------------------------------------------- #
# wire error codes
# ---------------------------------------------------------------------- #
#
# The serving layer's socket protocol (``repro.serving.wire``) ships errors
# as JSON frames; every ReproError subclass maps to a *stable* string code
# here so a client can re-raise the same typed exception the server caught.
# Codes are part of the wire contract: never renumber or reuse one.  The
# structured errors additionally round-trip their constructor payload
# (``QueryTimeout`` keeps elapsed/deadline, ``OutOfMemoryError`` keeps
# rows/budget/label, ``AdmissionError`` keeps requested/total/leased), so a
# remote failure is as attributable as a local one.

#: exception class -> stable wire code (most-derived classes first so the
#: MRO walk in :func:`error_code` lands on the tightest match).
WIRE_CODES: dict[type, str] = {
    QueryTimeout: "QUERY_TIMEOUT",
    QueryCancelled: "QUERY_CANCELLED",
    OutOfMemoryError: "OUT_OF_MEMORY",
    AdmissionError: "ADMISSION_DENIED",
    InjectedFault: "INJECTED_FAULT",
    ExecutionError: "EXECUTION_ERROR",
    ParameterError: "PARAMETER_MISMATCH",
    ParseError: "PARSE_ERROR",
    BindError: "BIND_ERROR",
    CatalogError: "CATALOG_ERROR",
    SchemaError: "SCHEMA_ERROR",
    PlanError: "PLAN_ERROR",
    OptimizationTimeout: "OPTIMIZATION_TIMEOUT",
    SessionClosed: "SESSION_CLOSED",
    UnsupportedFeatureError: "UNSUPPORTED_FEATURE",
    ReproError: "REPRO_ERROR",
}

#: Code assigned to non-ReproError exceptions that escape a server-side
#: query (a bug, not a library failure); clients surface it as ReproError.
INTERNAL_ERROR_CODE = "INTERNAL_ERROR"

#: Code for violations of the framing protocol itself (malformed JSON,
#: oversized frame, unknown frame type) — there is no exception class on
#: the server side to map, the connection is simply refused service.
PROTOCOL_ERROR_CODE = "PROTOCOL_ERROR"


def error_code(exc: BaseException) -> str:
    """The stable wire code for ``exc`` (tightest class in its MRO)."""
    for cls in type(exc).__mro__:
        code = WIRE_CODES.get(cls)
        if code is not None:
            return code
    return INTERNAL_ERROR_CODE


#: code -> (class, attrs serialized into the payload).  Only errors whose
#: constructors take structured arguments need an entry; everything else
#: reconstructs from the message string alone.
_WIRE_PAYLOADS: dict[str, tuple[type, tuple[str, ...]]] = {
    "QUERY_TIMEOUT": (QueryTimeout, ("elapsed", "deadline")),
    "QUERY_CANCELLED": (QueryCancelled, ("reason",)),
    "OUT_OF_MEMORY": (OutOfMemoryError, ("rows", "budget", "label")),
    "ADMISSION_DENIED": (AdmissionError, ("requested", "total", "leased")),
    "OPTIMIZATION_TIMEOUT": (OptimizationTimeout, ("elapsed", "budget")),
}

_WIRE_CLASSES: dict[str, type] = {code: cls for cls, code in WIRE_CODES.items()}


def error_to_wire(exc: BaseException) -> dict:
    """Serialize ``exc`` to a wire error payload (JSON-safe dict)."""
    code = error_code(exc)
    payload: dict = {"code": code, "message": str(exc)}
    spec = _WIRE_PAYLOADS.get(code)
    if spec is not None and isinstance(exc, spec[0]):
        payload["data"] = {attr: getattr(exc, attr) for attr in spec[1]}
    return payload


def error_from_wire(payload: dict) -> ReproError:
    """Reconstruct the typed exception a wire error payload describes.

    Structured codes rebuild through their real constructors; plain codes
    rebuild as their class with the original message; unknown codes fall
    back to :class:`ReproError`.  Every returned exception carries the
    code on ``.wire_code`` so callers can switch without isinstance.
    """
    code = payload.get("code", INTERNAL_ERROR_CODE)
    message = payload.get("message", "")
    spec = _WIRE_PAYLOADS.get(code)
    exc: ReproError
    if spec is not None:
        cls, attrs = spec
        data = payload.get("data") or {}
        try:
            exc = cls(*(data[attr] for attr in attrs))
        except Exception:
            exc = cls.__new__(cls)
            ReproError.__init__(exc, message)
    else:
        cls = _WIRE_CLASSES.get(code, ReproError)
        if cls is ParseError:
            # ParseError.__init__ appends the location to the message; the
            # wire message already carries it, so rebuild around __init__.
            exc = ParseError.__new__(ParseError)
            ReproError.__init__(exc, message)
            exc.line = exc.column = None
        else:
            exc = cls(message)
    exc.wire_code = code  # type: ignore[attr-defined]
    return exc
