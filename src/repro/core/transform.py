"""The graph-agnostic transformation (Lemma 1).

Losslessly rewrites ``π̂_{A*} M_G(P)`` into relational scans and EVJoin
predicates:

* every pattern vertex variable ``v`` becomes one scan of its vertex
  relation under alias ``_v_<v>`` (redundant copies per incident edge are
  already eliminated, as in Example 4's final step);
* every pattern edge variable ``e = (u, w)`` becomes one scan of its edge
  relation under alias ``_e_<e>`` plus the two EVJoin equalities
  ``λˢ: _e_<e>.src_fk = _v_u.key`` and ``λᵗ: _e_<e>.dst_fk = _v_w.key``
  (Eq. 3);
* pattern constraints become scan predicates;
* each COLUMNS entry resolves to a qualified relational column (``id`` →
  the key column, ``label`` → a constant).

The output plugs straight into the relational optimizer as a flat
conjunctive block — the graph-agnostic baselines (DuckDB / GRainDB / Umbra
plans / Calcite timing) all run through this translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BindError, UnsupportedFeatureError
from repro.graph.rgmapping import RGMapping
from repro.relational.catalog import Catalog
from repro.relational.expr import Expr, col, eq, lit
from repro.relational.logical import LogicalScan
from repro.core.spjm import GraphTableClause, MatchColumn


def vertex_alias(var: str) -> str:
    return f"_v_{var}"


def edge_alias(var: str) -> str:
    return f"_e_{var}"


@dataclass
class AgnosticTranslation:
    """The relational rendering of one GRAPH_TABLE clause."""

    scans: list[LogicalScan] = field(default_factory=list)
    join_predicates: list[Expr] = field(default_factory=list)
    # qualified GRAPH_TABLE output column (g.x) -> replacement expression
    column_exprs: dict[str, Expr] = field(default_factory=dict)

    def rename_map(self) -> dict[str, str]:
        """g.x -> relational column name, for simple column substitutions."""
        out = {}
        for name, expr in self.column_exprs.items():
            if hasattr(expr, "name"):
                out[name] = expr.name
        return out


def translate_match(
    clause: GraphTableClause,
    mapping: RGMapping,
    catalog: Catalog,
) -> AgnosticTranslation:
    """Apply Lemma 1 to one GRAPH_TABLE clause."""
    if clause.semantics != "homomorphism":
        raise UnsupportedFeatureError(
            "the graph-agnostic translation implements homomorphism semantics; "
            "all-distinct post filters are not translated"
        )
    pattern = clause.pattern
    translation = AgnosticTranslation()
    # One scan per pattern vertex variable.
    for name in sorted(pattern.vertices):
        pv = pattern.vertices[name]
        vm = mapping.vertex(pv.label)
        schema = catalog.table(vm.table_name).schema
        translation.scans.append(
            LogicalScan(
                vm.table_name,
                vertex_alias(name),
                schema.column_names,
                predicate=pv.predicate,
            )
        )
    # One scan per pattern edge variable, plus the two EVJoin equalities.
    for name in sorted(pattern.edges):
        pe = pattern.edges[name]
        em = mapping.edge(pe.label)
        src_pv = pattern.vertices[pe.src]
        dst_pv = pattern.vertices[pe.dst]
        if em.source_label != src_pv.label or em.target_label != dst_pv.label:
            raise BindError(
                f"edge {name!r}:{pe.label} connects "
                f"{em.source_label}->{em.target_label}, but the pattern binds "
                f"{src_pv.label}->{dst_pv.label}"
            )
        schema = catalog.table(em.table_name).schema
        translation.scans.append(
            LogicalScan(
                em.table_name,
                edge_alias(name),
                schema.column_names,
                predicate=pe.predicate,
            )
        )
        src_vm = mapping.vertex(em.source_label)
        dst_vm = mapping.vertex(em.target_label)
        translation.join_predicates.append(
            eq(
                col(f"{edge_alias(name)}.{em.source_key}"),
                col(f"{vertex_alias(pe.src)}.{src_vm.key}"),
            )
        )
        translation.join_predicates.append(
            eq(
                col(f"{edge_alias(name)}.{em.target_key}"),
                col(f"{vertex_alias(pe.dst)}.{dst_vm.key}"),
            )
        )
    # COLUMNS resolution.
    for column in clause.columns:
        qualified = f"{clause.alias}.{column.alias}"
        translation.column_exprs[qualified] = _resolve_column(
            column, clause, mapping
        )
    return translation


def _resolve_column(
    column: MatchColumn, clause: GraphTableClause, mapping: RGMapping
) -> Expr:
    pattern = clause.pattern
    if column.var in pattern.vertices:
        label = pattern.vertices[column.var].label
        vm = mapping.vertex(label)
        alias = vertex_alias(column.var)
        if column.special == "id":
            return col(f"{alias}.{vm.key}")
        if column.special == "label":
            return lit(label)
        if column.attr not in vm.properties:
            raise BindError(
                f"vertex label {label!r} has no property {column.attr!r}"
            )
        return col(f"{alias}.{column.attr}")
    if column.var in pattern.edges:
        label = pattern.edges[column.var].label
        em = mapping.edge(label)
        alias = edge_alias(column.var)
        if column.special == "id":
            # Edge relations may lack a surrogate key; the source FK plus the
            # alias is good enough for projection purposes.
            key = mapping.catalog.table(em.table_name).schema.primary_key
            if key is None:
                raise BindError(
                    f"edge relation {em.table_name!r} has no primary key to "
                    f"serve as id()"
                )
            return col(f"{alias}.{key}")
        if column.special == "label":
            return lit(label)
        if column.attr not in em.properties:
            raise BindError(f"edge label {label!r} has no property {column.attr!r}")
        return col(f"{alias}.{column.attr}")
    raise BindError(f"COLUMNS references unknown pattern variable {column.var!r}")
