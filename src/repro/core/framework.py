"""RelGo: the converged relational-graph optimization framework (Sec 4).

``RelGoFramework`` owns one property graph (RGMapping + optional graph
index + GLogue statistics) over a catalog, and optimizes SPJM queries
end-to-end::

    SPJM query
      └─ heuristic rules (FilterIntoMatchRule, TrimAndFuseRule)      [4.2.3]
      └─ graph optimization of M(P) -> decomposition tree            [4.2.1]
      └─ SCAN_GRAPH_TABLE wraps the graph plan as a relational leaf  [4.2.2]
      └─ relational optimization (DP join ordering) + lowering
         (predefined joins when the graph index is available)

Setting ``graph_aware=False`` switches the same entry point to the
graph-agnostic pipeline of Sec 4.1 (Lemma 1 translation + purely relational
optimization), which is how the DuckDB / GRainDB / Umbra / Calcite baselines
are realized — one framework, different configs, identical execution engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import CatalogError, PlanError
from repro.graph.cost import CardinalityEstimator
from repro.graph.glogue import GLogue
from repro.graph.index import GraphIndex, build_graph_index
from repro.graph.optimizer import (
    GraphOptimizer,
    GraphOptimizerConfig,
    GraphPlan,
    LoweringConfig,
)
from repro.exec import ExecutionContext, QueryResult, execute_plan
from repro.relational.catalog import Catalog
from repro.relational.expr import col, substitute_columns
from repro.relational.logical import AggregateSpec, LogicalNode
from repro.relational.lowering import PhysicalPlanner
from repro.relational.optimizer import (
    QueryBlock,
    RelationalOptimizer,
    RelationalOptimizerConfig,
)
from repro.relational.physical import PhysicalOperator
from repro.core.rules import RuleReport, apply_filter_into_match, apply_trim_and_fuse
from repro.core.scan_graph_table import LogicalScanGraphTable
from repro.core.spjm import SPJMQuery
from repro.core.transform import translate_match


@dataclass
class RelGoConfig:
    """All the paper's system variants are points in this config space.

    ========================  =============================================
    paper system              config
    ========================  =============================================
    RelGo                     defaults
    RelGoNoRule               ``enable_rules=False``
    RelGoNoEI                 ``enable_expand_intersect=False``
    RelGoHash                 ``use_graph_index=False``
    DuckDB (graph-agnostic)   ``graph_aware=False, use_graph_index=False``
    GRainDB                   ``graph_aware=False`` (index on)
    Umbra plans               ``graph_aware=False, histograms=True``
    Calcite (Fig 4b)          ``graph_aware=False,
                              join_enumeration="exhaustive"``
    ========================  =============================================
    """

    graph_aware: bool = True
    use_graph_index: bool = True
    enable_rules: bool = True
    enable_expand_intersect: bool = True
    use_glogue: bool = True
    histograms: bool = False
    join_enumeration: str = "dp"
    optimizer_timeout: float | None = None
    glogue_max_k: int = 3
    glogue_sample_ratio: float = 0.1
    memory_budget_rows: int | None = None
    # Target chunk size of the streaming executor; None keeps the engine
    # default (repro.exec.DEFAULT_BATCH_SIZE).
    batch_size: int | None = None
    # Pull plans through the vectorized columnar protocol (default) or the
    # legacy row-tuple protocol; results are identical (parity-tested), so
    # this is a performance knob kept for columnar-vs-row comparisons.
    columnar: bool = True
    # Degree of morsel-driven parallelism for plan execution; None reads
    # REPRO_PARALLELISM at execute time (default 1 = serial).  The
    # optimizer and its plan traces are unaffected — parallel plans are
    # rewritten per execution (exchange operators over leaf morsels).
    parallelism: int | None = None
    # Per-query execution deadline in seconds; None reads
    # REPRO_QUERY_TIMEOUT at execute time (default: no deadline).  Expiry
    # raises QueryTimeout at the next batch boundary with full teardown —
    # distinct from optimizer_timeout, the paper's OT knob.
    query_timeout: float | None = None
    # Spill-to-disk (out-of-core) execution.  None reads REPRO_SPILL_DIR /
    # REPRO_SPILL_THRESHOLD at execute time (default: disarmed — the
    # paper's OOM trip points stay byte-exact); False disarms regardless
    # of the environment; True / a directory path / a threshold int / a
    # SpillConfig arms it (see repro.exec.spill.resolve_spill).
    spill: Any = None


@dataclass
class OptimizedQuery:
    """An optimized SPJM query ready for execution."""

    physical: PhysicalOperator
    logical: LogicalNode
    optimization_time: float
    graph_plan: GraphPlan | None = None
    rule_report: RuleReport | None = None
    relational_report: Any = None

    def explain(self) -> str:
        return self.physical.explain()


class RelGoFramework:
    """The converged optimizer bound to one catalog + property graph."""

    def __init__(
        self,
        catalog: Catalog,
        graph_name: str | None = None,
        config: RelGoConfig | None = None,
    ):
        self.catalog = catalog
        self.config = config or RelGoConfig()
        if graph_name:
            self.mapping = catalog.graph(graph_name)
        elif catalog.graph_names():
            self.mapping = catalog.default_graph()
        else:
            # Relational-only catalog: the framework still optimizes and
            # executes plain SQL blocks; only graph queries need a mapping.
            self.mapping = None
        self.graph_name = None if self.mapping is None else self.mapping.name
        self._glogue: GLogue | None = None
        self._estimator: CardinalityEstimator | None = None

    # ------------------------------------------------------------------ #
    # preparation (offline statistics / index, excluded from opt time)
    # ------------------------------------------------------------------ #

    def ensure_index(self) -> GraphIndex:
        if self.mapping is None:
            raise CatalogError("no property graph is registered in this catalog")
        index = self.catalog.graph_index(self.graph_name)
        if index is None:
            index = build_graph_index(self.mapping)
            self.catalog.register_graph_index(index)
        return index

    @property
    def glogue(self) -> GLogue:
        if self._glogue is None:
            self._glogue = GLogue(
                self.mapping,
                self.ensure_index(),
                max_k=self.config.glogue_max_k,
                sample_ratio=self.config.glogue_sample_ratio,
            )
        return self._glogue

    @property
    def estimator(self) -> CardinalityEstimator:
        if self._estimator is None:
            self._estimator = CardinalityEstimator(
                self.glogue, self.catalog, use_glogue=self.config.use_glogue
            )
        return self._estimator

    def prepare(self) -> None:
        """Build the graph index and warm statistics (an offline step)."""
        if self.mapping is not None:
            self.ensure_index()
        self.catalog.analyze()
        if self.mapping is not None:
            _ = self.glogue

    # ------------------------------------------------------------------ #
    # optimization
    # ------------------------------------------------------------------ #

    def optimize(self, query: SPJMQuery) -> OptimizedQuery:
        started = time.perf_counter()
        if query.graph_table is None:
            optimized = self._optimize_relational_only(query)
        elif self.config.graph_aware:
            optimized = self._optimize_converged(query)
        else:
            optimized = self._optimize_agnostic(query)
        optimized.optimization_time = time.perf_counter() - started
        return optimized

    def execute(self, optimized: OptimizedQuery, handle=None) -> QueryResult:
        return execute_plan(
            optimized.physical,
            memory_budget_rows=self.config.memory_budget_rows,
            batch_size=self.config.batch_size,
            columnar=self.config.columnar,
            parallelism=self.config.parallelism,
            timeout=self.config.query_timeout,
            spill=self.config.spill,
            handle=handle,
        )

    def execute_iter(self, optimized: OptimizedQuery, handle=None):
        """Stream result batches without materializing the full result.

        Unlike :meth:`execute`, nothing is retained across batches, so
        arbitrarily large results can be consumed under a fixed memory
        budget; only genuinely buffering operators (hash builds, sorts)
        charge the budget.  Yields lists of row tuples.

        The full query lifecycle applies: the config's ``query_timeout``
        (or a caller-owned ``handle``) cancels cooperatively between
        batches, the per-query budget is leased from the process governor,
        and a consumer that abandons the iterator (``break``, ``close()``,
        or an exception in the loop body) triggers deterministic teardown
        — the operator stream is closed, any spill directory removed, and
        the lease released in this generator's ``finally``, not at GC time.
        """
        from repro.exec.context import QueryHandle, close_stream, resolve_timeout
        from repro.exec.faults import resolve_faults
        from repro.exec.governor import resolve_governor
        from repro.exec.scheduler import parallelize_plan, resolve_parallelism
        from repro.exec.spill import SpillManager, resolve_spill

        if handle is None:
            deadline = resolve_timeout(self.config.query_timeout)
            if deadline is not None:
                handle = QueryHandle(deadline)
        parallelism = resolve_parallelism(self.config.parallelism)
        ctx = ExecutionContext(
            memory_budget_rows=self.config.memory_budget_rows,
            parallelism=parallelism,
            handle=handle,
            faults=resolve_faults(None),
        )
        if self.config.batch_size is not None:
            ctx.batch_size = self.config.batch_size
        spill_config = resolve_spill(self.config.spill)
        owned_spill = None
        if spill_config is not None:
            owned_spill = SpillManager(spill_config).bind(ctx)
            ctx.spill = owned_spill
        lease = resolve_governor(None).lease(ctx.memory_budget_rows, label="query")
        stream = None
        try:
            ctx.memory_budget_rows = lease.budget_rows
            plan = optimized.physical
            from repro.exec.context import pin_plan

            pin_plan(plan, ctx)
            if parallelism > 1:
                plan = parallelize_plan(plan, parallelism, ctx.batch_size, ctx=ctx)
            if self.config.columnar:
                # Vectorized pull; rows materialize only at this yield
                # boundary.
                stream = plan.columnar_batches(ctx)
                for cb in stream:
                    yield cb.to_rows()
            else:
                stream = plan.batches(ctx)
                yield from stream
        finally:
            if stream is not None:
                close_stream(stream)
            if owned_spill is not None:
                # Abandoned iterators (break / close / loop-body raise) reap
                # their spill directory here, same cascade as the lease.
                owned_spill.close()
            lease.release()

    def run(self, query: SPJMQuery) -> tuple[QueryResult, OptimizedQuery]:
        optimized = self.optimize(query)
        return self.execute(optimized), optimized

    # ------------------------------------------------------------------ #
    # converged pipeline (Sec 4.2)
    # ------------------------------------------------------------------ #

    def _optimize_converged(self, query: SPJMQuery) -> OptimizedQuery:
        clause = query.graph_table
        assert clause is not None
        if clause.graph_name != self.graph_name:
            raise CatalogError(
                f"query targets graph {clause.graph_name!r}, framework is bound "
                f"to {self.graph_name!r}"
            )
        rule_report = RuleReport()
        if self.config.enable_rules:
            query, push_report = apply_filter_into_match(query)
            query, trim_report = apply_trim_and_fuse(query)
            rule_report = RuleReport(
                pushed_constraints=push_report.pushed_constraints,
                trimmed_columns=trim_report.trimmed_columns,
                trimmed_edge_vars=trim_report.trimmed_edge_vars,
                needed_edge_vars=trim_report.needed_edge_vars,
            )
        clause = query.graph_table
        assert clause is not None
        graph_optimizer = GraphOptimizer(
            self.mapping,
            self.estimator,
            GraphOptimizerConfig(use_graph_index=self.config.use_graph_index),
        )
        graph_plan = graph_optimizer.optimize(clause.pattern)
        index = self.ensure_index() if self.config.use_graph_index else None
        lowering = LoweringConfig(
            use_graph_index=self.config.use_graph_index,
            enable_expand_intersect=self.config.enable_expand_intersect,
            needed_edge_vars=(
                rule_report.needed_edge_vars
                if self.config.enable_rules
                else frozenset(clause.pattern.edges)
            ),
            fuse=self.config.enable_rules,
            semantics=clause.semantics,
        )
        sgt = LogicalScanGraphTable(clause, self.mapping, index, graph_plan, lowering)
        block = self._relational_block(query, extra_leaves=[sgt])
        plan, report = self._relational_optimizer().optimize(block)
        physical = self._lower(plan)
        return OptimizedQuery(
            physical=physical,
            logical=plan,
            optimization_time=0.0,
            graph_plan=graph_plan,
            rule_report=rule_report,
            relational_report=report,
        )

    # ------------------------------------------------------------------ #
    # graph-agnostic pipeline (Sec 4.1)
    # ------------------------------------------------------------------ #

    def _optimize_agnostic(self, query: SPJMQuery) -> OptimizedQuery:
        clause = query.graph_table
        assert clause is not None
        translation = translate_match(clause, self.mapping, self.catalog)
        substitution = translation.column_exprs
        predicates = translation.join_predicates + [
            substitute_columns(p, substitution) for p in query.predicates
        ]
        projections = None
        if query.projections is not None:
            projections = [
                (substitute_columns(e, substitution), a)
                for e, a in query.projections
            ]
        elif not query.aggregates and not query.group_by:
            # SELECT * over the graph table: the output is the COLUMNS clause
            # (plus any joined relations' columns), matching what the
            # converged SCAN_GRAPH_TABLE path produces.
            projections = [
                (substitution[f"{clause.alias}.{c.alias}"], f"{clause.alias}.{c.alias}")
                for c in clause.columns
            ]
            for table_name, alias in query.relations:
                for column in self.catalog.table(table_name).schema.column_names:
                    name = f"{alias}.{column}"
                    projections.append((substitute_columns(col(name), {}), name))
        group_by = [
            (substitute_columns(e, substitution), a) for e, a in query.group_by
        ]
        aggregates = [
            AggregateSpec(
                s.func,
                substitute_columns(s.arg, substitution) if s.arg is not None else None,
                s.alias,
            )
            for s in query.aggregates
        ]
        order_by = [
            (substitute_columns(e, substitution), asc) for e, asc in query.order_by
        ]
        leaves: list[LogicalNode] = list(translation.scans)
        leaves.extend(self._relation_scans(query))
        block = QueryBlock(
            relations=leaves,
            predicates=predicates,
            projections=projections,
            group_by=group_by,
            aggregates=aggregates,
            order_by=order_by,
            limit=query.limit,
            distinct=query.distinct,
        )
        plan, report = self._relational_optimizer().optimize(block)
        physical = self._lower(plan)
        return OptimizedQuery(
            physical=physical,
            logical=plan,
            optimization_time=0.0,
            relational_report=report,
        )

    def _optimize_relational_only(self, query: SPJMQuery) -> OptimizedQuery:
        block = self._relational_block(query, extra_leaves=[])
        plan, report = self._relational_optimizer().optimize(block)
        return OptimizedQuery(
            physical=self._lower(plan),
            logical=plan,
            optimization_time=0.0,
            relational_report=report,
        )

    # ------------------------------------------------------------------ #
    # shared plumbing
    # ------------------------------------------------------------------ #

    def _relation_scans(self, query: SPJMQuery) -> list[LogicalNode]:
        from repro.relational.logical import LogicalScan

        out: list[LogicalNode] = []
        for table_name, alias in query.relations:
            schema = self.catalog.table(table_name).schema
            out.append(LogicalScan(table_name, alias, schema.column_names))
        return out

    def _relational_block(
        self, query: SPJMQuery, extra_leaves: list[LogicalNode]
    ) -> QueryBlock:
        leaves = list(extra_leaves)
        leaves.extend(self._relation_scans(query))
        if not leaves:
            raise PlanError("query has neither a graph table nor relations")
        return QueryBlock(
            relations=leaves,
            predicates=list(query.predicates),
            projections=query.projections,
            group_by=list(query.group_by),
            aggregates=list(query.aggregates),
            order_by=list(query.order_by),
            limit=query.limit,
            distinct=query.distinct,
        )

    def _relational_optimizer(self) -> RelationalOptimizer:
        return RelationalOptimizer(
            self.catalog,
            RelationalOptimizerConfig(
                join_enumeration=self.config.join_enumeration,
                histograms=self.config.histograms,
                timeout=self.config.optimizer_timeout,
            ),
        )

    def _lower(self, plan: LogicalNode) -> PhysicalOperator:
        use_index = (
            self.config.use_graph_index
            and self.catalog.graph_index(self.graph_name) is not None
        )
        planner = PhysicalPlanner(
            self.catalog,
            use_graph_index=use_index,
            graph_name=self.graph_name if use_index else None,
        )
        return planner.lower(plan)
