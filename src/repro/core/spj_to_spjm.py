"""Automatic SPJ → SPJM conversion (the paper's Sec 7 future-work item).

The paper closes by proposing that RelGo "directly process existing SPJ
queries as inputs, enabling the automatic conversion from SPJ to SPJM
queries while being aware of the presence of graph indices" (citing
Boudaoud et al. for relational→property-graph mappings).  This module
implements that conversion for the common case:

1. scan the conjunctive predicate bag for **EVJoin shapes** (Eq. 3): an
   alias over an edge relation joined on *both* of its foreign keys to
   aliases over the matching vertex relations;
2. fold the largest connected set of such triples into a pattern graph —
   vertex aliases become pattern vertices, edge aliases pattern edges;
3. rewrite every outer reference to a folded alias's column into a
   GRAPH_TABLE output column, leaving per-alias filters in the outer WHERE
   so the existing FilterIntoMatchRule pushes them into the match (and
   re-costs it) exactly as for hand-written SPJM queries.

Relations and predicates that do not participate stay relational.  The
result is an :class:`~repro.core.spjm.SPJMQuery` the converged optimizer
handles like any other; when nothing folds, the query is returned unchanged
(and is still executable — it is simply a pure SPJ query).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spjm import GraphTableClause, MatchColumn, SPJMQuery
from repro.graph.pattern import PatternEdge, PatternGraph, PatternVertex
from repro.graph.rgmapping import RGMapping
from repro.relational.catalog import Catalog
from repro.relational.expr import (
    Expr,
    is_equi_join_condition,
    referenced_columns,
    rename_columns,
    split_conjuncts,
)
from repro.relational.logical import AggregateSpec


@dataclass
class ConversionReport:
    """What the converter folded."""

    folded_vertex_aliases: list[str] = field(default_factory=list)
    folded_edge_aliases: list[str] = field(default_factory=list)
    folded_conjuncts: int = 0

    @property
    def converted(self) -> bool:
        return bool(self.folded_edge_aliases)


@dataclass
class _EdgeCandidate:
    edge_alias: str
    edge_label: str
    src_alias: str
    dst_alias: str
    conjunct_ids: tuple[int, int]


def convert_spj_to_spjm(
    query: SPJMQuery,
    mapping: RGMapping,
    graph_table_alias: str = "_g",
) -> tuple[SPJMQuery, ConversionReport]:
    """Fold EVJoin structures of a pure SPJ query into a matching operator.

    Args:
        query: an SPJM query *without* a graph table (pure SPJ); queries
            that already have one are returned unchanged.
        mapping: the RGMapping whose vertex/edge relations are recognized.
        graph_table_alias: alias for the synthesized GRAPH_TABLE.
    """
    report = ConversionReport()
    if query.graph_table is not None or not query.relations:
        return query, report
    alias_tables = {alias: table for table, alias in query.relations}
    conjuncts = [c for p in query.predicates for c in split_conjuncts(p)]
    candidates = _find_edge_candidates(conjuncts, alias_tables, mapping)
    if not candidates:
        return query, report
    component = _largest_component(candidates)
    if not component:
        return query, report
    return _fold(query, mapping, component, conjuncts, alias_tables,
                 graph_table_alias, report)


def _find_edge_candidates(
    conjuncts: list[Expr],
    alias_tables: dict[str, str],
    mapping: RGMapping,
) -> list[_EdgeCandidate]:
    """All (edge alias, src alias, dst alias) triples joined per Eq. 3."""
    vertex_tables = {vm.table_name: label for label, vm in mapping.vertices.items()}
    edge_tables = {em.table_name: label for label, em in mapping.edges.items()}
    # (edge_alias, endpoint) -> (vertex_alias, conjunct index)
    halves: dict[tuple[str, str], tuple[str, int]] = {}
    for i, conjunct in enumerate(conjuncts):
        pair = is_equi_join_condition(conjunct)
        if pair is None:
            continue
        for left, right in (pair, pair[::-1]):
            la, lc = _split(left)
            ra, rc = _split(right)
            if la is None or ra is None:
                continue
            ltable = alias_tables.get(la)
            rtable = alias_tables.get(ra)
            if ltable not in edge_tables or rtable not in vertex_tables:
                continue
            em = mapping.edge(edge_tables[ltable])
            for endpoint, fk, vlabel in (
                ("src", em.source_key, em.source_label),
                ("dst", em.target_key, em.target_label),
            ):
                vm = mapping.vertex(vlabel)
                if lc == fk and rtable == vm.table_name and rc == vm.key:
                    halves[(la, endpoint)] = (ra, i)
    out = []
    seen_edges = set()
    for (edge_alias, endpoint), (v_alias, idx) in halves.items():
        if endpoint != "src" or edge_alias in seen_edges:
            continue
        dst = halves.get((edge_alias, "dst"))
        if dst is None:
            continue
        seen_edges.add(edge_alias)
        em_label = None
        table = alias_tables[edge_alias]
        for label, em in mapping.edges.items():
            if em.table_name == table:
                em_label = label
                break
        assert em_label is not None
        out.append(
            _EdgeCandidate(edge_alias, em_label, v_alias, dst[0], (idx, dst[1]))
        )
    return out


def _split(column: str) -> tuple[str | None, str]:
    if "." not in column:
        return None, column
    alias, name = column.split(".", 1)
    return alias, name


def _largest_component(candidates: list[_EdgeCandidate]) -> list[_EdgeCandidate]:
    """Connected component (over shared vertex aliases) with the most edges."""
    adjacency: dict[str, set[int]] = {}
    for i, c in enumerate(candidates):
        adjacency.setdefault(c.src_alias, set()).add(i)
        adjacency.setdefault(c.dst_alias, set()).add(i)
    unvisited = set(range(len(candidates)))
    best: list[int] = []
    while unvisited:
        seed = next(iter(unvisited))
        component = {seed}
        frontier = [seed]
        unvisited.discard(seed)
        while frontier:
            edge_i = frontier.pop()
            c = candidates[edge_i]
            for v in (c.src_alias, c.dst_alias):
                for other in adjacency[v]:
                    if other in unvisited:
                        unvisited.discard(other)
                        component.add(other)
                        frontier.append(other)
        if len(component) > len(best):
            best = sorted(component)
    return [candidates[i] for i in best]


def _fold(
    query: SPJMQuery,
    mapping: RGMapping,
    component: list[_EdgeCandidate],
    conjuncts: list[Expr],
    alias_tables: dict[str, str],
    gt_alias: str,
    report: ConversionReport,
) -> tuple[SPJMQuery, ConversionReport]:
    folded_edge_aliases = {c.edge_alias for c in component}
    folded_vertex_aliases = {
        a for c in component for a in (c.src_alias, c.dst_alias)
    }
    folded = folded_edge_aliases | folded_vertex_aliases
    consumed = {i for c in component for i in c.conjunct_ids}
    # Build the pattern: one vertex per vertex alias, one edge per candidate.
    vertex_labels = {}
    for alias in folded_vertex_aliases:
        table = alias_tables[alias]
        for label, vm in mapping.vertices.items():
            if vm.table_name == table:
                vertex_labels[alias] = label
                break
    vertices = [
        PatternVertex(alias, vertex_labels[alias])
        for alias in sorted(folded_vertex_aliases)
    ]
    edges = [
        PatternEdge(c.edge_alias, c.edge_label, c.src_alias, c.dst_alias)
        for c in component
    ]
    pattern = PatternGraph(vertices, edges)
    # Every folded column referenced anywhere else becomes a COLUMNS entry.
    used_columns: set[str] = set()
    for i, conjunct in enumerate(conjuncts):
        if i in consumed:
            continue
        used_columns |= referenced_columns(conjunct)
    for exprs in (
        [e for e, _ in (query.projections or [])],
        [e for e, _ in query.group_by],
        [s.arg for s in query.aggregates if s.arg is not None],
        [e for e, _ in query.order_by],
    ):
        for e in exprs:
            used_columns |= referenced_columns(e)
    columns: list[MatchColumn] = []
    rename: dict[str, str] = {}
    for name in sorted(used_columns):
        alias, column = _split(name)
        if alias not in folded:
            continue
        out_name = f"{alias}_{column}"
        columns.append(MatchColumn(alias, column, out_name))
        rename[name] = f"{gt_alias}.{out_name}"
    if not columns:
        # Nothing projected from the match: keep one witness column so the
        # match cardinality still reaches the relational result.
        first = sorted(folded_vertex_aliases)[0]
        key = mapping.vertex(vertex_labels[first]).key
        columns.append(MatchColumn(first, key, f"{first}_{key}"))
    clause = GraphTableClause(
        graph_name=mapping.name,
        pattern=pattern,
        columns=columns,
        alias=gt_alias,
    )
    new_predicates = [
        rename_columns(c, rename)
        for i, c in enumerate(conjuncts)
        if i not in consumed
    ]
    fix = lambda e: rename_columns(e, rename)  # noqa: E731
    converted = SPJMQuery(
        graph_table=clause,
        relations=[(t, a) for t, a in query.relations if a not in folded],
        predicates=new_predicates,
        projections=(
            [(fix(e), a) for e, a in query.projections]
            if query.projections is not None
            else None
        ),
        group_by=[(fix(e), a) for e, a in query.group_by],
        aggregates=[
            AggregateSpec(s.func, fix(s.arg) if s.arg is not None else None, s.alias)
            for s in query.aggregates
        ],
        order_by=[(fix(e), asc) for e, asc in query.order_by],
        limit=query.limit,
        distinct=query.distinct,
    )
    report.folded_vertex_aliases = sorted(folded_vertex_aliases)
    report.folded_edge_aliases = sorted(folded_edge_aliases)
    report.folded_conjuncts = len(consumed)
    return converted, report
