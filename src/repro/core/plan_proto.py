"""Platform-independent plan serialization.

The paper's frontend emits optimized plans as protobuf messages so that any
backend can execute them (Sec 4.3).  This reproduction keeps the property —
a plan serializes to a JSON document of operator nodes — without the
protobuf wire format (a substitution documented in DESIGN.md).

Both relational :class:`~repro.relational.physical.PhysicalOperator` trees
and graph :class:`~repro.graph.physical.GraphOperator` trees serialize; a
SCAN_GRAPH_TABLE node nests its graph sub-plan.
"""

from __future__ import annotations

import json
from typing import Any


def plan_to_dict(op: Any) -> dict:
    """Serialize an operator tree to plain dicts."""
    node: dict[str, Any] = {"operator": _operator_name(op)}
    label = _label(op)
    if label and label != node["operator"]:
        node["detail"] = label
    columns = getattr(op, "output_columns", None)
    if columns is not None:
        node["columns"] = list(columns)
    output_vars = getattr(op, "output_vars", None)
    if output_vars is not None:
        node["variables"] = [
            {"name": v.name, "kind": v.kind, "label": v.label} for v in output_vars
        ]
    children = [plan_to_dict(c) for c in op.children()]
    graph_op = getattr(op, "graph_op", None)
    if graph_op is not None:
        children.append(plan_to_dict(graph_op))
    if children:
        node["children"] = children
    return node


def plan_to_json(op: Any, indent: int = 2) -> str:
    return json.dumps(plan_to_dict(op), indent=indent)


def plan_signature(op: Any) -> tuple:
    """A compact nested-tuple shape of the plan, for test assertions."""
    children = tuple(plan_signature(c) for c in op.children())
    graph_op = getattr(op, "graph_op", None)
    if graph_op is not None:
        children = children + (plan_signature(graph_op),)
    return (_operator_name(op),) + children


def operator_counts(op: Any) -> dict[str, int]:
    """How many operators of each type the plan contains."""
    counts: dict[str, int] = {}

    def visit(node: Any) -> None:
        name = _operator_name(node)
        counts[name] = counts.get(name, 0) + 1
        for child in node.children():
            visit(child)
        graph_op = getattr(node, "graph_op", None)
        if graph_op is not None:
            visit(graph_op)

    visit(op)
    return counts


def _operator_name(op: Any) -> str:
    return type(op).__name__


def _label(op: Any) -> str:
    label_fn = getattr(op, "_label", None)
    if label_fn is None:
        return ""
    try:
        return label_fn()
    except Exception:  # pragma: no cover - labels are cosmetic
        return ""
