"""Recursive-descent parser for the SQL/PGQ subset."""

from __future__ import annotations

from typing import Any

from repro.errors import ParameterError, ParseError
from repro.relational.expr import (
    Arith,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    ParamLiteral,
    and_,
    param_slots,
)
from repro.core.sqlpgq.ast import (
    AstColumnSpec,
    AstCreateGraph,
    AstEdgeTable,
    AstGraphTable,
    AstPath,
    AstPatternEdge,
    AstPatternVertex,
    AstSelect,
    AstSelectItem,
    AstTableRef,
    AstVertexTable,
)
from repro.core.sqlpgq.lexer import Token, tokenize

AGG_FUNCS = ("MIN", "MAX", "COUNT", "SUM", "AVG")


class Parser:
    """Recursive-descent parser; ``parameterize=True`` turns on the plan
    cache's literal extraction.

    In parameterize mode every NUMBER / STRING token is a **parameter
    slot**, numbered in text order — exactly the order the fingerprint
    scanner (:mod:`repro.serving.plan_cache`) collects literal values, so
    slot ``i`` always rebinds to the i-th literal of a matching query
    text.  Literals in expression position become :class:`ParamLiteral`
    nodes (rebindable); literals consumed *structurally* — the LIMIT
    count, LIKE / STARTS WITH patterns, IN-list members — are **baked**
    into the plan shape and their slots recorded in :attr:`baked_slots`,
    so the cache keys plan variants by those values.  ``TRUE`` / ``FALSE``
    / ``NULL`` are keywords, not scanner literals: never slots.
    """

    def __init__(self, text: str, parameterize: bool = False, params=None):
        self.tokens = tokenize(text)
        self.pos = 0
        self.parameterize = parameterize
        #: Slots whose values are baked into the plan (cache-variant key).
        self.baked_slots: set[int] = set()
        #: Slots carried by ParamLiteral nodes in the parsed statement.
        self.expr_slots: set[int] = set()
        self._slot_at: dict[int, int] = {}
        #: token index -> bound value, for ``?`` placeholder tokens.
        self._param_at: dict[int, Any] = {}
        placeholders = [
            i for i, token in enumerate(self.tokens) if token.kind == "PARAM"
        ]
        if placeholders:
            first = self.tokens[placeholders[0]]
            if not parameterize:
                raise ParseError(
                    "'?' placeholders require parameter binding "
                    "(execute with params=...)",
                    first.line,
                    first.column,
                )
            given = () if params is None else tuple(params)
            if len(given) != len(placeholders):
                raise ParameterError(
                    f"statement has {len(placeholders)} '?' placeholder(s) "
                    f"but {len(given)} parameter(s) were bound"
                )
            for i, value in zip(placeholders, given):
                self._param_at[i] = value
        if parameterize:
            # NUMBER / STRING literals and ``?`` placeholders share one
            # slot numbering, in text order — the order the fingerprint
            # scanner collects values, so slot i always rebinds to the
            # i-th merged value of a matching query text.
            slot = 0
            for i, token in enumerate(self.tokens):
                if token.kind in ("NUMBER", "STRING", "PARAM"):
                    self._slot_at[i] = slot
                    slot += 1

    def _consumed_slot(self) -> int:
        """Slot of the literal token just consumed (parameterize mode)."""
        return self._slot_at[self.pos - 1]

    def _consumed_param(self) -> Any:
        """Bound value of the ``?`` placeholder token just consumed."""
        return self._param_at[self.pos - 1]

    def _bake_consumed(self) -> None:
        if self.parameterize:
            self.baked_slots.add(self._consumed_slot())

    def _structural_string(self, expected: str) -> str:
        """Consume a STRING (or string-valued ``?``) in structural position
        — LIKE / STARTS WITH patterns — baking its slot."""
        token = self.advance()
        if token.kind == "STRING":
            self._bake_consumed()
            return token.value
        if token.kind == "PARAM":
            value = self._consumed_param()
            if not isinstance(value, str):
                raise ParameterError(
                    f"{expected}; the bound placeholder holds {value!r}"
                )
            self._bake_consumed()
            return value
        raise self.error(expected)

    # ------------------------------------------------------------------ #
    # token plumbing
    # ------------------------------------------------------------------ #

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(
            f"{message} (found {token.kind} {token.value!r})",
            token.line,
            token.column,
        )

    def expect_keyword(self, *names: str) -> Token:
        if not self.peek().is_keyword(*names):
            raise self.error(f"expected {' or '.join(names)}")
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        if not self.peek().is_symbol(symbol):
            raise self.error(f"expected {symbol!r}")
        return self.advance()

    # Keywords that commonly double as column/table names; accepted wherever
    # an identifier is expected ("soft" keywords).
    SOFT_IDENT_KEYWORDS = (
        "ID", "LABEL", "KEY", "SOURCE", "DESTINATION", "VERTEX", "EDGE",
        "GRAPH", "PROPERTY", "COUNT", "MIN", "MAX", "SUM", "AVG",
    )

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind == "IDENT":
            return self.advance().value
        if token.is_keyword(*self.SOFT_IDENT_KEYWORDS):
            return self.advance().value.lower()
        raise self.error("expected identifier")

    def accept_keyword(self, *names: str) -> bool:
        if self.peek().is_keyword(*names):
            self.advance()
            return True
        return False

    def accept_symbol(self, symbol: str) -> bool:
        if self.peek().is_symbol(symbol):
            self.advance()
            return True
        return False

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def parse_statement(self):
        if self.peek().is_keyword("CREATE"):
            statement = self.parse_create_graph()
        else:
            statement = self.parse_select()
        self.accept_symbol(";")
        if self.peek().kind != "EOF":
            raise self.error("trailing input after statement")
        return statement

    # -- CREATE PROPERTY GRAPH ------------------------------------------ #

    def parse_create_graph(self) -> AstCreateGraph:
        self.expect_keyword("CREATE")
        self.expect_keyword("PROPERTY")
        self.expect_keyword("GRAPH")
        name = self.expect_ident()
        graph = AstCreateGraph(name)
        self.expect_keyword("VERTEX")
        self.expect_keyword("TABLES")
        self.expect_symbol("(")
        while True:
            graph.vertex_tables.append(self.parse_vertex_table())
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        if self.accept_keyword("EDGE"):
            self.expect_keyword("TABLES")
            self.expect_symbol("(")
            while True:
                graph.edge_tables.append(self.parse_edge_table())
                if not self.accept_symbol(","):
                    break
            self.expect_symbol(")")
        return graph

    def parse_vertex_table(self) -> AstVertexTable:
        table = self.expect_ident()
        key = None
        label = None
        properties = None
        while True:
            if self.accept_keyword("KEY"):
                self.expect_symbol("(")
                key = self.expect_ident()
                self.expect_symbol(")")
            elif self.accept_keyword("LABEL"):
                label = self.expect_ident()
            elif self.accept_keyword("PROPERTIES"):
                properties = self.parse_name_list()
            else:
                break
        return AstVertexTable(table, key, label, properties)

    def parse_edge_table(self) -> AstEdgeTable:
        table = self.expect_ident()
        label = None
        properties = None
        source = target = None
        while True:
            if self.accept_keyword("SOURCE"):
                source = self.parse_endpoint()
            elif self.accept_keyword("DESTINATION"):
                target = self.parse_endpoint()
            elif self.accept_keyword("LABEL"):
                label = self.expect_ident()
            elif self.accept_keyword("PROPERTIES"):
                properties = self.parse_name_list()
            else:
                break
        if source is None or target is None:
            raise self.error(f"edge table {table!r} needs SOURCE and DESTINATION")
        return AstEdgeTable(
            table,
            source[0], source[1], source[2],
            target[0], target[1], target[2],
            label,
            properties,
        )

    def parse_endpoint(self) -> tuple[str, str, str]:
        """KEY (fk) REFERENCES table (pk) -> (fk, table, pk)."""
        self.expect_keyword("KEY")
        self.expect_symbol("(")
        fk = self.expect_ident()
        self.expect_symbol(")")
        self.expect_keyword("REFERENCES", "REFERENCE")
        table = self.expect_ident()
        self.expect_symbol("(")
        pk = self.expect_ident()
        self.expect_symbol(")")
        return fk, table, pk

    def parse_name_list(self) -> list[str]:
        self.expect_symbol("(")
        names = [self.expect_ident()]
        while self.accept_symbol(","):
            names.append(self.expect_ident())
        self.expect_symbol(")")
        return names

    # -- SELECT ----------------------------------------------------------#

    def parse_select(self) -> AstSelect:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        graph_table = None
        tables: list[AstTableRef] = []
        join_conditions: list[Expr] = []
        if self.peek().is_keyword("GRAPH_TABLE"):
            graph_table = self.parse_graph_table()
        else:
            tables.append(self.parse_table_ref())
        while True:
            if self.accept_symbol(","):
                tables.append(self.parse_table_ref())
            elif self.accept_keyword("JOIN"):
                tables.append(self.parse_table_ref())
                self.expect_keyword("ON")
                join_conditions.append(self.parse_expr())
            else:
                break
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: list[Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_symbol(","):
                group_by.append(self.parse_expr())
        order_by: list[tuple[Expr, bool]] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.parse_expr()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                order_by.append((expr, ascending))
                if not self.accept_symbol(","):
                    break
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.kind == "PARAM":
                value = self._consumed_param()
                if not isinstance(value, int):
                    raise ParameterError(
                        f"LIMIT placeholder must bind an int, got {value!r}"
                    )
                self._bake_consumed()
                limit = value
            elif token.kind == "NUMBER":
                self._bake_consumed()
                limit = int(token.value)
            else:
                raise self.error("expected LIMIT count")
        return AstSelect(
            items, distinct, graph_table, tables, join_conditions,
            where, group_by, order_by, limit,
        )

    def parse_select_item(self) -> AstSelectItem:
        token = self.peek()
        if token.is_keyword(*AGG_FUNCS):
            func = self.advance().value
            self.expect_symbol("(")
            arg: Expr | None
            if func == "COUNT" and self.accept_symbol("*"):
                arg = None
            else:
                arg = self.parse_expr()
            self.expect_symbol(")")
            alias = self.parse_optional_alias() or f"{func.lower()}_"
            return AstSelectItem(arg, alias, agg_func=func)
        expr = self.parse_expr()
        alias = self.parse_optional_alias()
        if alias is None:
            alias = expr.name.split(".")[-1] if isinstance(expr, ColumnRef) else str(expr)
            if self.parameterize and not isinstance(expr, ColumnRef):
                # The implicit alias embeds literal values (``a + 5``), so
                # those slots must not rebind: bake them into the variant
                # key — a different value gets its own template, keeping
                # output column names identical to an uncached parse.
                self.baked_slots.update(param_slots(expr))
        return AstSelectItem(expr, alias)

    def parse_optional_alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect_ident()
        if self.peek().kind == "IDENT" and not self.peek(1).is_symbol("."):
            # Bare alias (not a qualified reference starting a new clause).
            return self.advance().value
        return None

    def parse_table_ref(self) -> AstTableRef:
        table = self.expect_ident()
        alias = self.parse_optional_alias() or table
        return AstTableRef(table, alias)

    # -- GRAPH_TABLE ------------------------------------------------------#

    def parse_graph_table(self) -> AstGraphTable:
        self.expect_keyword("GRAPH_TABLE")
        self.expect_symbol("(")
        graph_name = self.expect_ident()
        self.expect_keyword("MATCH")
        paths = [self.parse_path()]
        while self.accept_symbol(","):
            paths.append(self.parse_path())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        self.expect_keyword("COLUMNS")
        self.expect_symbol("(")
        columns = [self.parse_column_spec()]
        while self.accept_symbol(","):
            columns.append(self.parse_column_spec())
        self.expect_symbol(")")
        self.expect_symbol(")")
        alias = "g"
        if self.peek().kind == "IDENT":
            alias = self.advance().value
        return AstGraphTable(graph_name, paths, where, columns, alias)

    def parse_path(self) -> AstPath:
        vertices = [self.parse_pattern_vertex()]
        edges: list[AstPatternEdge] = []
        while self.peek().is_symbol("-", "<-"):
            edges.append(self.parse_pattern_edge())
            vertices.append(self.parse_pattern_vertex())
        return AstPath(vertices, edges)

    def parse_pattern_vertex(self) -> AstPatternVertex:
        self.expect_symbol("(")
        var = None
        label = None
        if self.peek().kind == "IDENT":
            var = self.advance().value
        if self.accept_symbol(":"):
            label = self.expect_ident()
        self.expect_symbol(")")
        return AstPatternVertex(var, label)

    def parse_pattern_edge(self) -> AstPatternEdge:
        if self.accept_symbol("<-"):
            # (a)<-[e:L]-(b)
            self.expect_symbol("[")
            var, label = self.parse_edge_body()
            self.expect_symbol("]")
            self.expect_symbol("-")
            return AstPatternEdge(var, label, "in")
        self.expect_symbol("-")
        self.expect_symbol("[")
        var, label = self.parse_edge_body()
        self.expect_symbol("]")
        self.expect_symbol("->")
        return AstPatternEdge(var, label, "out")

    def parse_edge_body(self) -> tuple[str | None, str | None]:
        var = None
        label = None
        if self.peek().kind == "IDENT":
            var = self.advance().value
        if self.accept_symbol(":"):
            label = self.expect_ident()
        return var, label

    def parse_column_spec(self) -> AstColumnSpec:
        if self.peek().is_keyword("ID", "LABEL") and self.peek(1).is_symbol("("):
            func = self.advance().value.lower()
            self.expect_symbol("(")
            var = self.expect_ident()
            self.expect_symbol(")")
            self.expect_keyword("AS")
            alias = self.expect_ident()
            return AstColumnSpec(var, None, alias, special=func)
        var = self.expect_ident()
        self.expect_symbol(".")
        attr = self.expect_ident()
        alias = attr
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        return AstColumnSpec(var, attr, alias)

    # -- expressions -------------------------------------------------------#

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        args = [left]
        while self.accept_keyword("OR"):
            args.append(self.parse_and())
        if len(args) == 1:
            return left
        return BoolOp("OR", tuple(args))

    def parse_and(self) -> Expr:
        left = self.parse_not()
        args = [left]
        while self.accept_keyword("AND"):
            args.append(self.parse_not())
        if len(args) == 1:
            return left
        return and_(*args)

    def parse_not(self) -> Expr:
        if self.accept_keyword("NOT"):
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.is_symbol("=", "<>", "<", "<=", ">", ">="):
            op = self.advance().value
            right = self.parse_additive()
            return Comparison(op, left, right)
        if token.is_keyword("LIKE"):
            self.advance()
            pattern = self._structural_string("LIKE expects a string pattern")
            return Like(left, pattern)
        if token.is_keyword("STARTS"):
            self.advance()
            self.expect_keyword("WITH")
            prefix = self._structural_string("STARTS WITH expects a string")
            return Like(left, prefix + "%")
        if token.is_keyword("IN"):
            self.advance()
            self.expect_symbol("(")
            values = [self.parse_literal_value()]
            while self.accept_symbol(","):
                values.append(self.parse_literal_value())
            self.expect_symbol(")")
            return InList(left, tuple(values))
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return and_(Comparison(">=", left, low), Comparison("<=", left, high))
        if token.is_keyword("IS"):
            self.advance()
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNull(left, negated=negated)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.peek().is_symbol("+", "-"):
            op = self.advance().value
            right = self.parse_multiplicative()
            left = Arith(op, left, right)
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_primary()
        while self.peek().is_symbol("*", "/", "%"):
            op = self.advance().value
            right = self.parse_primary()
            left = Arith(op, left, right)
        return left

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.is_symbol("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return self._literal(value)
        if token.kind == "STRING":
            self.advance()
            return self._literal(token.value)
        if token.kind == "PARAM":
            # A bound placeholder behaves exactly like the literal of its
            # value: same ParamLiteral node, same slot numbering, so a
            # params-bound text and a literal-spliced text of one shape
            # share a single cached plan template.
            self.advance()
            return self._literal(self._consumed_param())
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_symbol("-"):
            self.advance()
            inner = self.parse_primary()
            if isinstance(inner, ParamLiteral):
                # The slot's raw value must stay scanner-aligned: keep the
                # parameter intact and negate at evaluation time.
                return Arith("-", Literal(0), inner)
            if isinstance(inner, Literal) and isinstance(inner.value, (int, float)):
                return Literal(-inner.value)
            return Arith("-", Literal(0), inner)
        if token.kind == "IDENT" or token.is_keyword(*self.SOFT_IDENT_KEYWORDS):
            name = self.expect_ident()
            while self.accept_symbol("."):
                name += "." + self.expect_ident()
            return ColumnRef(name)
        raise self.error("expected expression")

    def parse_literal_value(self):
        token = self.advance()
        if token.kind == "NUMBER":
            self._bake_consumed()
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "STRING":
            self._bake_consumed()
            return token.value
        if token.kind == "PARAM":
            # Structural position: the bound value is baked into the plan
            # shape exactly like an inline literal would be, so each
            # distinct value keys its own cached variant.
            self._bake_consumed()
            return self._consumed_param()
        if token.is_keyword("TRUE"):
            return True
        if token.is_keyword("FALSE"):
            return False
        raise self.error("expected literal value")

    def _literal(self, value) -> Literal:
        """A just-consumed expression-position literal: a rebindable
        :class:`ParamLiteral` in parameterize mode, a plain literal else."""
        if self.parameterize:
            slot = self._consumed_slot()
            self.expr_slots.add(slot)
            return ParamLiteral(value, slot)
        return Literal(value)


def parse_statement(sql: str):
    """Parse one statement (SELECT or CREATE PROPERTY GRAPH)."""
    return Parser(sql).parse_statement()
