"""Binder: resolve parsed SQL/PGQ against a catalog.

``execute_ddl`` applies ``CREATE PROPERTY GRAPH`` — building the RGMapping
and registering it (the paper's Fig 2(a) flow).

``bind_query`` turns an ``AstSelect`` into an executable
:class:`repro.core.spjm.SPJMQuery`:

* MATCH paths are merged into one connected :class:`PatternGraph`; vertex
  and edge labels may be omitted when they are inferrable from the
  RGMapping's endpoint declarations;
* the in-clause WHERE becomes pattern constraints (each conjunct must
  reference a single pattern variable — that's what the clause means in
  SQL/PGQ: a predicate over the match, evaluated during matching);
* COLUMNS become :class:`MatchColumn` projections; SELECT/WHERE/JOIN parts
  bind to the graph table's output alias and the relational tables.
"""

from __future__ import annotations

from repro.errors import BindError, UnsupportedFeatureError
from repro.graph.pattern import PatternEdge, PatternGraph, PatternVertex
from repro.graph.rgmapping import RGMapping
from repro.relational.catalog import Catalog
from repro.relational.expr import (
    ColumnRef,
    Expr,
    referenced_columns,
    rename_columns,
    split_conjuncts,
)
from repro.relational.logical import AggregateSpec
from repro.core.spjm import GraphTableClause, MatchColumn, SPJMQuery
from repro.core.sqlpgq.ast import (
    AstCreateGraph,
    AstGraphTable,
    AstSelect,
)


# ---------------------------------------------------------------------- #
# DDL
# ---------------------------------------------------------------------- #


def execute_ddl(statement: AstCreateGraph, catalog: Catalog) -> RGMapping:
    """Apply CREATE PROPERTY GRAPH, registering the mapping in the catalog."""
    mapping = RGMapping(statement.name, catalog)
    for vt in statement.vertex_tables:
        mapping.add_vertex(
            vt.table, label=vt.label, key=vt.key, properties=vt.properties
        )
    for et in statement.edge_tables:
        source_label = _label_for_table(mapping, et.source_table)
        target_label = _label_for_table(mapping, et.target_table)
        vm_src = mapping.vertex(source_label)
        vm_dst = mapping.vertex(target_label)
        if et.source_ref != vm_src.key or et.target_ref != vm_dst.key:
            raise BindError(
                f"edge table {et.table!r} must reference the vertex keys "
                f"({vm_src.key!r}, {vm_dst.key!r})"
            )
        mapping.add_edge(
            et.table,
            source=(source_label, et.source_key),
            target=(target_label, et.target_key),
            label=et.label,
            properties=et.properties,
        )
    catalog.register_graph(mapping)
    return mapping


def _label_for_table(mapping: RGMapping, table: str) -> str:
    for label, vm in mapping.vertices.items():
        if vm.table_name == table or label == table:
            return label
    raise BindError(f"edge endpoint table {table!r} is not a vertex table")


# ---------------------------------------------------------------------- #
# queries
# ---------------------------------------------------------------------- #


def bind_query(statement: AstSelect, catalog: Catalog) -> SPJMQuery:
    clause = None
    if statement.graph_table is not None:
        clause = _bind_graph_table(statement.graph_table, catalog)
    relations = [(t.table, t.alias) for t in statement.tables]
    for table, alias in relations:
        catalog.table(table)  # raises CatalogError if missing
    # Bare references to GRAPH_TABLE output columns are qualified with the
    # clause alias (SELECT p2_name -> SELECT g.p2_name).
    qualify: dict[str, str] = {}
    if clause is not None:
        for column in clause.columns:
            qualify[column.alias] = f"{clause.alias}.{column.alias}"

    def fix(expr: Expr) -> Expr:
        return rename_columns(expr, qualify) if qualify else expr

    statement = AstSelect(
        items=[
            type(i)(fix(i.expr) if i.expr is not None else None, i.alias, i.agg_func)
            for i in statement.items
        ],
        distinct=statement.distinct,
        graph_table=statement.graph_table,
        tables=statement.tables,
        join_conditions=[fix(e) for e in statement.join_conditions],
        where=fix(statement.where) if statement.where is not None else None,
        group_by=[fix(e) for e in statement.group_by],
        # ORDER BY binds to output aliases when possible; keys naming
        # GRAPH_TABLE columns that the SELECT list does not expose are
        # qualified so the planner can sort before projection.
        order_by=[
            (
                rename_columns(
                    e,
                    {
                        k: v
                        for k, v in qualify.items()
                        if k not in {i.alias for i in statement.items}
                    },
                )
                if qualify
                else e,
                asc,
            )
            for e, asc in statement.order_by
        ],
        limit=statement.limit,
    )
    predicates: list[Expr] = list(statement.join_conditions)
    if statement.where is not None:
        predicates.extend(split_conjuncts(statement.where))
    projections: list[tuple[Expr, str]] | None = None
    aggregates: list[AggregateSpec] = []
    group_by: list[tuple[Expr, str]] = []
    plain_items = [i for i in statement.items if i.agg_func is None]
    agg_items = [i for i in statement.items if i.agg_func is not None]
    if agg_items:
        for item in agg_items:
            aggregates.append(AggregateSpec(item.agg_func or "", item.expr, item.alias))
        group_sources = statement.group_by or [
            i.expr for i in plain_items if i.expr is not None
        ]
        for expr in group_sources:
            alias = _implicit_alias(expr, plain_items)
            group_by.append((expr, alias))
    else:
        projections = [(i.expr, i.alias) for i in plain_items if i.expr is not None]
    return SPJMQuery(
        graph_table=clause,
        relations=relations,
        predicates=predicates,
        projections=projections,
        group_by=group_by,
        aggregates=aggregates,
        order_by=statement.order_by,
        limit=statement.limit,
        distinct=statement.distinct,
    )


def _implicit_alias(expr: Expr, plain_items) -> str:
    for item in plain_items:
        if item.expr is not None and str(item.expr) == str(expr):
            return item.alias
    if isinstance(expr, ColumnRef):
        return expr.name.split(".")[-1]
    return str(expr)


def _bind_graph_table(ast: AstGraphTable, catalog: Catalog) -> GraphTableClause:
    mapping = catalog.graph(ast.graph_name)
    vertex_labels: dict[str, str | None] = {}
    vertex_order: list[str] = []
    edges: list[dict] = []
    anon = 0

    def vertex_name(var: str | None) -> str:
        nonlocal anon
        if var is None:
            anon += 1
            return f"_anon{anon}"
        return var

    for path in ast.paths:
        names = []
        for av in path.vertices:
            name = vertex_name(av.var)
            if name not in vertex_labels:
                vertex_labels[name] = av.label
                vertex_order.append(name)
            elif av.label is not None:
                if vertex_labels[name] not in (None, av.label):
                    raise BindError(
                        f"vertex {name!r} declared with conflicting labels "
                        f"{vertex_labels[name]!r} and {av.label!r}"
                    )
                vertex_labels[name] = av.label
            names.append(name)
        for i, ae in enumerate(path.edges):
            left, right = names[i], names[i + 1]
            src, dst = (left, right) if ae.direction == "out" else (right, left)
            edges.append(
                {
                    "name": ae.var if ae.var is not None else f"_e{len(edges) + 1}",
                    "label": ae.label,
                    "src": src,
                    "dst": dst,
                }
            )
    _infer_labels(mapping, vertex_labels, edges)
    pattern_vertices = [
        PatternVertex(name, vertex_labels[name] or "") for name in vertex_order
    ]
    pattern_edges = [
        PatternEdge(e["name"], e["label"], e["src"], e["dst"]) for e in edges
    ]
    pattern = PatternGraph(pattern_vertices, pattern_edges)
    if not pattern.is_connected():
        raise UnsupportedFeatureError("MATCH patterns must be connected (Sec 2.2)")
    # In-clause WHERE -> per-variable constraints.
    if ast.where is not None:
        for conjunct in split_conjuncts(ast.where):
            pattern = _push_constraint(pattern, conjunct)
    columns = [
        MatchColumn(c.var, c.attr, c.alias, special=c.special) for c in ast.columns
    ]
    for column in columns:
        if column.var not in pattern.vertices and column.var not in pattern.edges:
            raise BindError(f"COLUMNS references unknown variable {column.var!r}")
    return GraphTableClause(
        graph_name=ast.graph_name,
        pattern=pattern,
        columns=columns,
        alias=ast.alias,
    )


def _infer_labels(
    mapping: RGMapping,
    vertex_labels: dict[str, str | None],
    edges: list[dict],
) -> None:
    """Fixpoint label inference from edge endpoint declarations."""
    for _ in range(len(edges) + len(vertex_labels) + 1):
        progressed = False
        for e in edges:
            if e["label"] is not None:
                em = mapping.edge(e["label"])
                for endpoint, expected in (("src", em.source_label), ("dst", em.target_label)):
                    name = e[endpoint]
                    if vertex_labels[name] is None:
                        vertex_labels[name] = expected
                        progressed = True
            else:
                src_label = vertex_labels[e["src"]]
                dst_label = vertex_labels[e["dst"]]
                if src_label is not None and dst_label is not None:
                    candidates = mapping.edge_labels_between(src_label, dst_label)
                    if len(candidates) == 1:
                        e["label"] = candidates[0]
                        progressed = True
                    elif not candidates:
                        raise BindError(
                            f"no edge label connects {src_label!r} to {dst_label!r}"
                        )
                    else:
                        raise BindError(
                            f"ambiguous edge between {src_label!r} and "
                            f"{dst_label!r}: {candidates}; specify a label"
                        )
        if not progressed:
            break
    for name, label in vertex_labels.items():
        if label is None:
            raise BindError(f"cannot infer a label for pattern vertex {name!r}")
        mapping.vertex(label)  # validate it exists
    for e in edges:
        if e["label"] is None:
            raise BindError(f"cannot infer a label for pattern edge {e['name']!r}")


def _push_constraint(pattern: PatternGraph, conjunct: Expr) -> PatternGraph:
    """Attach one in-clause WHERE conjunct to its (single) variable."""
    variables = set()
    rename: dict[str, str] = {}
    for name in referenced_columns(conjunct):
        if "." not in name:
            raise BindError(
                f"in-clause WHERE must use qualified names, got {name!r}"
            )
        var, attr = name.split(".", 1)
        variables.add(var)
        rename[name] = attr
    if len(variables) != 1:
        raise UnsupportedFeatureError(
            "in-clause WHERE conjuncts must reference exactly one pattern "
            f"variable, got {sorted(variables)} in {conjunct}"
        )
    var = variables.pop()
    rewritten = rename_columns(conjunct, rename)
    if var in pattern.vertices:
        return pattern.with_vertex_constraint(var, rewritten)
    if var in pattern.edges:
        return pattern.with_edge_constraint(var, rewritten)
    raise BindError(f"WHERE references unknown pattern variable {var!r}")
