"""AST node definitions for the SQL/PGQ subset.

Scalar expressions reuse :mod:`repro.relational.expr` directly (the parser
emits them); this module only adds the query-structure nodes the binder
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expr import Expr


@dataclass
class AstPatternVertex:
    var: str | None
    label: str | None


@dataclass
class AstPatternEdge:
    var: str | None
    label: str | None
    # "out": (a)-[e]->(b); "in": (a)<-[e]-(b)
    direction: str


@dataclass
class AstPath:
    """Alternating vertices and edges: v0 e0 v1 e1 v2 ..."""

    vertices: list[AstPatternVertex]
    edges: list[AstPatternEdge]


@dataclass
class AstColumnSpec:
    """COLUMNS entry: var.attr | ID(var) | LABEL(var), AS alias."""

    var: str
    attr: str | None
    alias: str
    special: str | None = None


@dataclass
class AstGraphTable:
    graph_name: str
    paths: list[AstPath]
    where: Expr | None
    columns: list[AstColumnSpec]
    alias: str


@dataclass
class AstTableRef:
    table: str
    alias: str


@dataclass
class AstSelectItem:
    expr: Expr | None
    alias: str
    # Aggregates: func in MIN/MAX/COUNT/SUM/AVG, arg None means COUNT(*).
    agg_func: str | None = None


@dataclass
class AstSelect:
    items: list[AstSelectItem]
    distinct: bool
    graph_table: AstGraphTable | None
    tables: list[AstTableRef]
    join_conditions: list[Expr]
    where: Expr | None
    group_by: list[Expr]
    order_by: list[tuple[Expr, bool]]
    limit: int | None


@dataclass
class AstVertexTable:
    table: str
    key: str | None
    label: str | None
    properties: list[str] | None


@dataclass
class AstEdgeTable:
    table: str
    source_key: str
    source_table: str
    source_ref: str
    target_key: str
    target_table: str
    target_ref: str
    label: str | None
    properties: list[str] | None


@dataclass
class AstCreateGraph:
    name: str
    vertex_tables: list[AstVertexTable] = field(default_factory=list)
    edge_tables: list[AstEdgeTable] = field(default_factory=list)
