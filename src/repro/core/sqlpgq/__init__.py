"""SQL/PGQ frontend: parse GRAPH_TABLE queries and CREATE PROPERTY GRAPH.

The supported dialect is the subset the paper's examples and workloads use:

* ``CREATE PROPERTY GRAPH g VERTEX TABLES (...) EDGE TABLES (...)`` with
  ``SOURCE KEY (fk) REFERENCES T (pk)`` / ``DESTINATION KEY ...`` clauses;
* ``SELECT ... FROM GRAPH_TABLE (g MATCH <paths> [WHERE <pred>]
  COLUMNS (...)) alias [JOIN t ON ...]* [WHERE ...] [GROUP BY ...]
  [ORDER BY ...] [LIMIT n]``;
* scalar expressions with comparisons, boolean operators, arithmetic,
  ``LIKE``, ``STARTS WITH``, ``IN``, ``BETWEEN``, ``IS [NOT] NULL``;
* aggregates MIN/MAX/COUNT/SUM/AVG.

``parse_statement`` produces an AST; ``bind`` resolves it against a catalog
into an executable :class:`repro.core.spjm.SPJMQuery` (or applies the DDL).
"""

from repro.core.sqlpgq.binder import bind_query, execute_ddl
from repro.core.sqlpgq.parser import parse_statement

__all__ = ["parse_statement", "bind_query", "execute_ddl"]


def parse_and_bind(sql: str, catalog):
    """Convenience: parse one SELECT statement and bind it to a catalog."""
    ast = parse_statement(sql)
    return bind_query(ast, catalog)
