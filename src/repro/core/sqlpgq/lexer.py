"""Tokenizer for the SQL/PGQ subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT",
    "AS", "ON", "JOIN", "AND", "OR", "NOT", "LIKE", "IN", "BETWEEN", "IS",
    "NULL", "ASC", "DESC", "GRAPH_TABLE", "MATCH", "COLUMNS", "CREATE",
    "PROPERTY", "GRAPH", "VERTEX", "EDGE", "TABLES", "KEY", "SOURCE",
    "DESTINATION", "REFERENCES", "REFERENCE", "LABEL", "PROPERTIES",
    "MIN", "MAX", "COUNT", "SUM", "AVG", "TRUE", "FALSE", "STARTS", "WITH",
    "ID",
}

SYMBOLS = [
    "<=", ">=", "<>", "->", "<-", "(", ")", "[", "]", ",", ".", "=", "<",
    ">", "+", "-", "*", "/", "%", ";", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "KEYWORD" | "IDENT" | "NUMBER" | "STRING" | "PARAM" | "SYMBOL" | "EOF"
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.value in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "SYMBOL" and self.value in symbols


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            line_start = i + 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        column = i - line_start + 1
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            else:
                raise ParseError("unterminated string literal", line, column)
            tokens.append(Token("STRING", "".join(buf), line, column))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A trailing dot (qualified name) is not part of a number.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], line, column))
            i = j
            continue
        if ch == "?":
            # DB-API-style parameter placeholder; only meaningful to the
            # parameterizing parser (plain parses reject it with a clear
            # error instead of an "unexpected character").
            tokens.append(Token("PARAM", "?", line, column))
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, line, column))
            else:
                tokens.append(Token("IDENT", word, line, column))
            i = j
            continue
        matched = None
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                matched = symbol
                break
        if matched is None:
            raise ParseError(f"unexpected character {ch!r}", line, column)
        tokens.append(Token("SYMBOL", matched, line, column))
        i += len(matched)
    tokens.append(Token("EOF", "", line, n - line_start + 1))
    return tokens
