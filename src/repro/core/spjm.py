"""The SPJM query skeleton (Eq. 1 of the paper).

An SPJM query is::

    Q = π_A ( σ_Ψ ( R_1 ⋈ ... ⋈ R_m ⋈ ( π̂_{A*} M_G(P) ) ) )

represented here as:

* a :class:`GraphTableClause` — the graph component ``π̂ M_G(P)``: the
  pattern ``P`` (with any constraints pushed into it), the graph-calibrated
  projection ``π̂`` (the COLUMNS clause, :class:`MatchColumn` entries), an
  exposure alias, and the matching semantics;
* the relational component — base relations, a conjunctive predicate bag
  referencing both relational columns (``alias.column``) and graph columns
  (``<gt alias>.<output name>``), projections / aggregation / ordering.

The structure is deliberately optimizer-neutral: the graph-agnostic
pipeline translates the clause away (Lemma 1) while RelGo optimizes it into
a SCAN_GRAPH_TABLE — both consume this same object.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace

from repro.errors import BindError
from repro.graph.pattern import PatternGraph
from repro.relational.expr import Expr
from repro.relational.logical import AggregateSpec


@dataclass(frozen=True)
class MatchColumn:
    """One COLUMNS entry: project ``var.attr`` (or a special) as ``alias``.

    ``special`` is ``None`` for plain attributes, ``"id"`` for the element
    identifier or ``"label"`` for the element label (the paper's ``id(v)``
    and ``ℓ(v)`` projections).
    """

    var: str
    attr: str | None
    alias: str
    special: str | None = None

    def __post_init__(self) -> None:
        if (self.attr is None) == (self.special is None):
            raise BindError(
                f"match column {self.alias!r} needs exactly one of attr/special"
            )


@dataclass
class GraphTableClause:
    """The GRAPH_TABLE(...) clause: graph name, pattern, COLUMNS, alias."""

    graph_name: str
    pattern: PatternGraph
    columns: list[MatchColumn]
    alias: str = "g"
    semantics: str = "homomorphism"

    def column_map(self) -> dict[str, MatchColumn]:
        """Qualified output name -> MatchColumn."""
        return {f"{self.alias}.{c.alias}": c for c in self.columns}

    def qualified_columns(self) -> list[str]:
        return [f"{self.alias}.{c.alias}" for c in self.columns]


@dataclass
class SPJMQuery:
    """One SPJM query: graph component + relational component."""

    graph_table: GraphTableClause | None
    relations: list[tuple[str, str]] = field(default_factory=list)  # (table, alias)
    predicates: list[Expr] = field(default_factory=list)
    projections: list[tuple[Expr, str]] | None = None
    group_by: list[tuple[Expr, str]] = field(default_factory=list)
    aggregates: list[AggregateSpec] = field(default_factory=list)
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False

    def copy(self) -> "SPJMQuery":
        """A deep-enough copy for rule application (expressions are immutable)."""
        gt = None
        if self.graph_table is not None:
            gt = GraphTableClause(
                self.graph_table.graph_name,
                self.graph_table.pattern,
                list(self.graph_table.columns),
                self.graph_table.alias,
                self.graph_table.semantics,
            )
        return SPJMQuery(
            graph_table=gt,
            relations=list(self.relations),
            predicates=list(self.predicates),
            projections=list(self.projections) if self.projections is not None else None,
            group_by=list(self.group_by),
            aggregates=list(self.aggregates),
            order_by=list(self.order_by),
            limit=self.limit,
            distinct=self.distinct,
        )

    def is_pure_match(self) -> bool:
        """True when the query is only the graph component."""
        return self.graph_table is not None and not self.relations
