"""The paper's primary contribution: the converged SPJM optimization framework.

* :mod:`repro.core.spjm` — the SPJM query skeleton (Eq. 1).
* :mod:`repro.core.transform` — the lossless graph-agnostic transformation
  (Lemma 1) from the matching operator to relational joins.
* :mod:`repro.core.rules` — FilterIntoMatchRule and TrimAndFuseRule.
* :mod:`repro.core.scan_graph_table` — the SCAN_GRAPH_TABLE bridge operator.
* :mod:`repro.core.framework` — RelGo: the end-to-end converged optimizer.
* :mod:`repro.core.sqlpgq` — SQL/PGQ parser and binder (GRAPH_TABLE syntax,
  CREATE PROPERTY GRAPH).
"""

from repro.core.framework import RelGoConfig, RelGoFramework
from repro.core.spjm import GraphTableClause, MatchColumn, SPJMQuery

__all__ = [
    "RelGoFramework",
    "RelGoConfig",
    "SPJMQuery",
    "GraphTableClause",
    "MatchColumn",
]
