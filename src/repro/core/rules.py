"""Heuristic cross-domain rules (Sec 4.2.3).

**FilterIntoMatchRule** — a relational selection over GRAPH_TABLE output
columns that all derive from *one* pattern element's attributes is pushed
into the pattern as a constraint: ``σ_{d'}(π̂ M(P)) ≡ σ_{Ψ'}(π̂ M((P, {d})))``.
The rule fires before graph optimization so the cost model can re-estimate
cardinalities with the constraint in place (the paper applies it greedily).

**TrimAndFuseRule** — the field trimmer walks every consumer of the
GRAPH_TABLE's columns (projections, predicates, aggregates, ordering) and
drops COLUMNS entries nothing reads; edge variables left without any
surviving column are *trimmed*, which licenses fusing their
EXPAND_EDGE + GET_VERTEX pair into a single EXPAND during lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expr import (
    Expr,
    referenced_columns,
    rename_columns,
    split_conjuncts,
)
from repro.core.spjm import MatchColumn, SPJMQuery


@dataclass
class RuleReport:
    """What the rules did — surfaced in plan dumps and asserted by tests."""

    pushed_constraints: int = 0
    trimmed_columns: list[str] = field(default_factory=list)
    trimmed_edge_vars: list[str] = field(default_factory=list)
    needed_edge_vars: frozenset[str] = frozenset()


def apply_filter_into_match(query: SPJMQuery) -> tuple[SPJMQuery, RuleReport]:
    """Push eligible outer conjuncts into pattern constraints."""
    report = RuleReport()
    clause = query.graph_table
    if clause is None:
        return query, report
    query = query.copy()
    clause = query.graph_table
    assert clause is not None
    column_map = clause.column_map()
    kept: list[Expr] = []
    pattern = clause.pattern
    for conjunct in [c for p in query.predicates for c in split_conjuncts(p)]:
        target = _single_var_rewrite(conjunct, column_map)
        if target is None:
            kept.append(conjunct)
            continue
        var, rewritten = target
        if var in pattern.vertices:
            pattern = pattern.with_vertex_constraint(var, rewritten)
        else:
            pattern = pattern.with_edge_constraint(var, rewritten)
        report.pushed_constraints += 1
    clause.pattern = pattern
    query.predicates = kept
    return query, report


def _single_var_rewrite(
    conjunct: Expr, column_map: dict[str, MatchColumn]
) -> tuple[str, Expr] | None:
    """If every column of ``conjunct`` is an attribute of one pattern
    variable, return (var, conjunct rewritten over bare attribute names)."""
    variables: set[str] = set()
    rename: dict[str, str] = {}
    for name in referenced_columns(conjunct):
        mc = column_map.get(name)
        if mc is None or mc.special is not None:
            # References a relational column, another GRAPH_TABLE output
            # kind (id/label), or something unknown: not pushable.
            return None
        variables.add(mc.var)
        rename[name] = mc.attr or ""
    if len(variables) != 1:
        return None
    return variables.pop(), rename_columns(conjunct, rename)


def apply_trim_and_fuse(query: SPJMQuery) -> tuple[SPJMQuery, RuleReport]:
    """Drop unread COLUMNS entries; compute the surviving edge variables."""
    report = RuleReport()
    clause = query.graph_table
    if clause is None:
        return query, report
    query = query.copy()
    clause = query.graph_table
    assert clause is not None
    if query.projections is None and not query.aggregates and not query.group_by:
        # SELECT * over the graph table: every column is the output.
        report.needed_edge_vars = frozenset(
            c.var for c in clause.columns if c.var in clause.pattern.edges
        )
        for name in clause.pattern.edges:
            if name not in report.needed_edge_vars:
                report.trimmed_edge_vars.append(name)
        return query, report
    used: set[str] = set()
    for p in query.predicates:
        used |= referenced_columns(p)
    if query.projections:
        for e, _ in query.projections:
            used |= referenced_columns(e)
    for e, _ in query.group_by:
        used |= referenced_columns(e)
    for spec in query.aggregates:
        if spec.arg is not None:
            used |= referenced_columns(spec.arg)
    for e, _ in query.order_by:
        used |= referenced_columns(e)
    surviving: list[MatchColumn] = []
    for column in clause.columns:
        qualified = f"{clause.alias}.{column.alias}"
        if qualified in used:
            surviving.append(column)
        else:
            report.trimmed_columns.append(column.alias)
    # A query whose outputs are all trimmed still needs one column so the
    # match cardinality survives into the relational result.
    if not surviving and clause.columns:
        surviving = [clause.columns[0]]
        report.trimmed_columns.remove(clause.columns[0].alias)
    clause.columns = surviving
    needed_edges = {
        c.var for c in surviving if c.var in clause.pattern.edges
    }
    # Edges with constraints are evaluated inside EXPAND without keeping the
    # column, so they do not block trimming.
    for name in clause.pattern.edges:
        if name not in needed_edges:
            report.trimmed_edge_vars.append(name)
    report.needed_edge_vars = frozenset(needed_edges)
    return query, report
