"""SCAN_GRAPH_TABLE: the bridge between graph and relational optimization.

``LogicalScanGraphTable`` encapsulates the optimal graph sub-plan for
``M(P)`` plus the ``π̂`` projection (Sec 4.2.2).  To the relational
optimizer it *is* a scan: it exposes qualified output columns, an estimated
cardinality (from the graph cost model, i.e. GLogue-backed), and per-column
distinct counts — which is exactly how high-order graph statistics reach
relational join ordering.

``ScanGraphTableOp`` is its physical counterpart: it executes the lowered
graph operator pipeline and flattens the resulting graph relation into
relational tuples by fetching the projected attributes (id / label /
properties) of each bound element.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BindError
from repro.graph.index import GraphIndex
from repro.exec.kernels import emit_batches, emit_columnar
from repro.exec.vector import ColumnarBatch, take
from repro.graph.optimizer import GraphPlan, LoweringConfig, lower_plan
from repro.graph.physical import GraphOperator
from repro.graph.rgmapping import RGMapping
from repro.relational.catalog import Catalog
from repro.relational.executor import ExecutionContext
from repro.relational.logical import LogicalNode
from repro.relational.physical import PhysicalOperator
from repro.core.spjm import GraphTableClause, MatchColumn


class LogicalScanGraphTable(LogicalNode):
    """A relational-facing leaf wrapping an optimized graph plan."""

    def __init__(
        self,
        clause: GraphTableClause,
        mapping: RGMapping,
        index: GraphIndex | None,
        graph_plan: GraphPlan,
        lowering: LoweringConfig,
    ):
        self.clause = clause
        self.mapping = mapping
        self.index = index
        self.graph_plan = graph_plan
        self.lowering = lowering
        self._columns = [f"{clause.alias}.{c.alias}" for c in clause.columns]

    # -- LogicalNode interface ------------------------------------------ #

    @property
    def output_columns(self) -> list[str]:
        return self._columns

    def children(self) -> list[LogicalNode]:
        return []

    def _label(self) -> str:
        return (
            f"ScanGraphTable {self.clause.graph_name} as {self.clause.alias} "
            f"(card≈{self.estimated_rows:.1f})"
        )

    # -- optimizer protocol --------------------------------------------- #

    @property
    def estimated_rows(self) -> float:
        return self.graph_plan.cardinality

    def column_ndv(self, column: str) -> float | None:
        """Distinct-count estimate for one output column.

        A ``var.attr`` column cannot have more distinct values than the
        attribute has in the base relation, nor than the match count.
        """
        mc = self.clause.column_map().get(column)
        if mc is None:
            return None
        if mc.var in self.clause.pattern.vertices:
            label = self.clause.pattern.vertices[mc.var].label
            table = self.mapping.vertex_table(label)
        elif mc.var in self.clause.pattern.edges:
            label = self.clause.pattern.edges[mc.var].label
            table = self.mapping.edge_table(label)
        else:
            return None
        if mc.special in ("id",):
            return min(float(table.num_rows), self.estimated_rows)
        if mc.special == "label":
            return 1.0
        stats = self.mapping.catalog.stats(table.schema.name)
        return min(float(stats.distinct(mc.attr or "")), self.estimated_rows)

    # -- lowering --------------------------------------------------------#

    def to_physical(self, catalog: Catalog) -> "ScanGraphTableOp":
        graph_op = lower_plan(
            self.graph_plan,
            self.mapping,
            self.index,
            self.lowering,
        )
        return ScanGraphTableOp(self.clause, self.mapping, graph_op)


@dataclass
class _ColumnFetcher:
    """Compiled accessor for one projected output column."""

    var_position: int
    kind: str  # "attr" | "id" | "label"
    values: list | None = None  # attribute column or key column
    constant: str | None = None

    def fetch(self, row: tuple):
        if self.kind == "label":
            return self.constant
        rowid = row[self.var_position]
        assert self.values is not None
        return self.values[rowid]


class ScanGraphTableOp(PhysicalOperator):
    """Physical SCAN_GRAPH_TABLE: run the graph plan, project attributes."""

    def __init__(
        self,
        clause: GraphTableClause,
        mapping: RGMapping,
        graph_op: GraphOperator,
    ):
        self.clause = clause
        self.mapping = mapping
        self.graph_op = graph_op
        self.output_columns = [f"{clause.alias}.{c.alias}" for c in clause.columns]

    def batches(self, ctx: ExecutionContext):
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def columnar_batches(self, ctx: ExecutionContext):
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext):
        """Columnar π̂ flattening: each projected attribute is one gather of
        the base attribute column through the bound variable's rowid column
        — no per-row tuples anywhere on the graph-to-relational bridge, and
        a native ndarray fancy-index when the base column has a typed
        vector view.  Typed base columns therefore reach downstream
        consumers — in particular the grouped-aggregation engine's
        factorize / segment-reduction fast paths — still in the array
        domain.  Gathers are deduplicated per (variable, base column), so a
        projection naming the same attribute (or the same label constant)
        twice gathers once and shares the result."""
        fetchers = [self._fetcher(c, vectorized=True) for c in self.clause.columns]
        for cb in self.graph_op.columnar_batches(ctx):
            n = len(cb)
            rowid_cols: dict[int, object] = {}
            gathered: dict[tuple[int, int], object] = {}
            constants: dict[str, list] = {}
            columns = []
            for f in fetchers:
                if f.kind == "label":
                    column = constants.get(f.constant)
                    if column is None:
                        column = [f.constant] * n
                        constants[f.constant] = column
                    columns.append(column)
                    continue
                assert f.values is not None
                key = (f.var_position, id(f.values))
                column = gathered.get(key)
                if column is None:
                    rowids = rowid_cols.get(f.var_position)
                    if rowids is None:
                        rowids = cb.column_vector(f.var_position)
                        rowid_cols[f.var_position] = rowids
                    column = take(f.values, rowids)
                    gathered[key] = column
                columns.append(column)
            yield ColumnarBatch(columns, n, None)

    def _stream(self, ctx: ExecutionContext):
        fetchers = [self._fetcher(c) for c in self.clause.columns]
        for graph_batch in self.graph_op.batches(ctx):
            # Column-at-a-time projection: one comprehension per output
            # column, then a C-speed zip into row tuples (the π̂ flattening).
            columns = []
            for f in fetchers:
                if f.kind == "label":
                    columns.append([f.constant] * len(graph_batch))
                else:
                    values = f.values
                    pos = f.var_position
                    assert values is not None
                    columns.append([values[row[pos]] for row in graph_batch])
            yield list(zip(*columns)) if columns else [() for _ in graph_batch]

    def _fetcher(self, column: MatchColumn, vectorized: bool = False) -> _ColumnFetcher:
        var_names = [v.name for v in self.graph_op.output_vars]
        if column.var not in var_names:
            raise BindError(
                f"graph plan does not bind variable {column.var!r} "
                f"(bound: {var_names}); was it trimmed?"
            )
        position = var_names.index(column.var)
        var = self.graph_op.output_vars[position]
        if var.kind == "v":
            table = self.mapping.vertex_table(var.label)
            key = self.mapping.vertex(var.label).key
        else:
            table = self.mapping.edge_table(var.label)
            key = table.schema.primary_key
        # The columnar stream gathers through vector views (ndarray
        # fancy-indexing); the row stream indexes the raw storage so row
        # tuples always carry plain Python values.
        source = table.vector if vectorized else table.column
        if column.special == "label":
            return _ColumnFetcher(position, "label", constant=var.label)
        if column.special == "id":
            if key is None:
                raise BindError(
                    f"relation {table.schema.name!r} has no key column for id()"
                )
            return _ColumnFetcher(position, "id", values=source(key))
        return _ColumnFetcher(position, "attr", values=source(column.attr or ""))

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        cols = ", ".join(c.alias for c in self.clause.columns)
        lines = [f"{pad}SCAN_GRAPH_TABLE {self.clause.graph_name} [{cols}]"]
        lines.append(self.graph_op.explain(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return f"SCAN_GRAPH_TABLE {self.clause.graph_name}"
