"""Table and column statistics for cardinality estimation.

Two tiers of statistics mirror the paper's discussion (Sec 4.3):

* **Low-order statistics** — per-table row counts and per-column distinct
  counts / min / max.  These are what the DuckDB-like and GRainDB-like
  baselines use.
* **Histograms** — equi-depth histograms over orderable columns, plus
  most-common-value lists for strings.  The Umbra-like baseline uses these
  to estimate selective predicates (e.g. ``production_year > 2000``) more
  accurately, which is exactly the axis along which the paper reports Umbra
  occasionally beating RelGo (JOB30 discussion, Sec 5.3.2).

High-order (sub-pattern) statistics live in :mod:`repro.graph.glogue`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any

from repro.relational.expr import (
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
)
from repro.relational.table import Table

# Default selectivities for predicate shapes we cannot estimate from stats.
# These are the classic System-R magic numbers.
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 0.33
DEFAULT_LIKE_SELECTIVITY = 0.05
DEFAULT_NOT_NULL_SELECTIVITY = 0.95


@dataclass
class ColumnStats:
    """Statistics for one column."""

    distinct: int
    null_count: int
    min_value: Any = None
    max_value: Any = None
    # Equi-depth histogram: sorted bucket boundaries (len = buckets + 1).
    histogram: list[Any] | None = None
    # Most common values with frequencies (for equality on skewed columns).
    mcv: dict[Any, int] = field(default_factory=dict)

    def eq_selectivity(self, value: Any, row_count: int) -> float:
        """Fraction of rows with column == value."""
        if row_count == 0:
            return 0.0
        if value in self.mcv:
            return self.mcv[value] / row_count
        if self.min_value is not None and self.max_value is not None:
            try:
                if value < self.min_value or value > self.max_value:
                    return 0.0
            except TypeError:
                pass
        if self.distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        return 1.0 / self.distinct

    def range_selectivity(self, op: str, value: Any) -> float:
        """Fraction of rows satisfying ``column op value`` for </<=/>/>=."""
        if self.histogram and len(self.histogram) > 1:
            return self._histogram_fraction(op, value)
        lo, hi = self.min_value, self.max_value
        if lo is None or hi is None or lo == hi:
            return DEFAULT_RANGE_SELECTIVITY
        try:
            if isinstance(lo, str):
                # Interpolation over strings is meaningless; use the histogram
                # path or fall back to the default.
                return DEFAULT_RANGE_SELECTIVITY
            frac = (value - lo) / (hi - lo)
        except TypeError:
            return DEFAULT_RANGE_SELECTIVITY
        frac = min(max(frac, 0.0), 1.0)
        if op in ("<", "<="):
            return frac
        return 1.0 - frac

    def _histogram_fraction(self, op: str, value: Any) -> float:
        bounds = self.histogram
        assert bounds is not None
        buckets = len(bounds) - 1
        try:
            pos = bisect.bisect_left(bounds, value)
        except TypeError:
            return DEFAULT_RANGE_SELECTIVITY
        if pos <= 0:
            below = 0.0
        elif pos >= len(bounds):
            below = 1.0
        else:
            # Assume uniformity within the bucket that contains ``value``.
            below = (pos - 0.5) / buckets
        below = min(max(below, 0.0), 1.0)
        if op in ("<", "<="):
            return below
        return 1.0 - below


@dataclass
class TableStats:
    """Statistics for one table."""

    row_count: int
    column_stats: dict[str, ColumnStats] = field(default_factory=dict)

    def distinct(self, column: str) -> int:
        stats = self.column_stats.get(column)
        if stats is None or stats.distinct <= 0:
            return max(self.row_count, 1)
        return stats.distinct


def collect_stats(
    table: Table,
    histogram_buckets: int = 0,
    mcv_size: int = 10,
) -> TableStats:
    """Scan a table once and build its statistics.

    Args:
        table: the table to analyze.
        histogram_buckets: when > 0, build equi-depth histograms with this
            many buckets over every orderable column (the Umbra-like tier);
            0 produces low-order stats only (the DuckDB-like tier).
        mcv_size: how many most-common values to keep per column.
    """
    stats = TableStats(row_count=table.num_rows)
    for column in table.schema.columns:
        values = table.column(column.name)
        non_null = [v for v in values if v is not None]
        null_count = len(values) - len(non_null)
        if not non_null:
            stats.column_stats[column.name] = ColumnStats(
                distinct=0, null_count=null_count
            )
            continue
        counts: dict[Any, int] = {}
        for v in non_null:
            counts[v] = counts.get(v, 0) + 1
        try:
            sorted_values = sorted(non_null)
            min_value, max_value = sorted_values[0], sorted_values[-1]
        except TypeError:
            sorted_values = None
            min_value = max_value = None
        histogram = None
        if histogram_buckets > 0 and sorted_values is not None:
            histogram = _equi_depth_bounds(sorted_values, histogram_buckets)
        mcv: dict[Any, int] = {}
        if mcv_size > 0 and counts:
            top = sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
            # Only keep values that are genuinely common (appear more than
            # the uniform expectation), otherwise MCVs add noise.
            uniform = len(non_null) / len(counts)
            mcv = {v: c for v, c in top[:mcv_size] if c > uniform}
        stats.column_stats[column.name] = ColumnStats(
            distinct=len(counts),
            null_count=null_count,
            min_value=min_value,
            max_value=max_value,
            histogram=histogram,
            mcv=mcv,
        )
    return stats


def _equi_depth_bounds(sorted_values: list[Any], buckets: int) -> list[Any]:
    """Bucket boundaries for an equi-depth histogram (buckets+1 boundaries)."""
    n = len(sorted_values)
    buckets = min(buckets, n) or 1
    bounds = [sorted_values[0]]
    for b in range(1, buckets):
        bounds.append(sorted_values[(b * n) // buckets])
    bounds.append(sorted_values[-1])
    return bounds


# ---------------------------------------------------------------------- #
# predicate selectivity
# ---------------------------------------------------------------------- #


def predicate_selectivity(
    expr: Expr | None,
    stats: TableStats,
    column_owner: str | None = None,
) -> float:
    """Estimated fraction of rows that satisfy ``expr``.

    Conjunctions multiply, disjunctions use inclusion-exclusion, negation
    complements.  Column names may be qualified (``alias.column``); only the
    last component is matched against the stats.
    """
    if expr is None:
        return 1.0
    if isinstance(expr, BoolOp):
        parts = [predicate_selectivity(a, stats, column_owner) for a in expr.args]
        if expr.op == "AND":
            out = 1.0
            for p in parts:
                out *= p
            return out
        out = 0.0
        for p in parts:
            out = out + p - out * p
        return out
    if isinstance(expr, Not):
        return max(0.0, 1.0 - predicate_selectivity(expr.arg, stats, column_owner))
    if isinstance(expr, Comparison):
        return _comparison_selectivity(expr, stats)
    if isinstance(expr, Like):
        base = DEFAULT_LIKE_SELECTIVITY
        # Longer fixed prefixes are more selective.
        fixed = len(expr.pattern.replace("%", "").replace("_", ""))
        return max(base / max(fixed, 1), 1e-4)
    if isinstance(expr, InList):
        column = _single_column(expr.arg)
        if column is None:
            return min(1.0, DEFAULT_EQ_SELECTIVITY * len(expr.values))
        col_stats = _lookup(stats, column)
        if col_stats is None:
            return min(1.0, DEFAULT_EQ_SELECTIVITY * len(expr.values))
        return min(
            1.0,
            sum(col_stats.eq_selectivity(v, stats.row_count) for v in expr.values),
        )
    if isinstance(expr, IsNull):
        column = _single_column(expr.arg)
        col_stats = _lookup(stats, column) if column else None
        if col_stats is None or stats.row_count == 0:
            frac_null = 1.0 - DEFAULT_NOT_NULL_SELECTIVITY
        else:
            frac_null = col_stats.null_count / stats.row_count
        return (1.0 - frac_null) if expr.negated else frac_null
    if isinstance(expr, Literal):
        return 1.0 if expr.value else 0.0
    return DEFAULT_RANGE_SELECTIVITY


def _comparison_selectivity(expr: Comparison, stats: TableStats) -> float:
    column, value = _column_vs_literal(expr)
    if column is None:
        # column-vs-column comparison inside one table, or something odd.
        return DEFAULT_EQ_SELECTIVITY if expr.op == "=" else DEFAULT_RANGE_SELECTIVITY
    col_stats = _lookup(stats, column)
    if col_stats is None:
        return DEFAULT_EQ_SELECTIVITY if expr.op == "=" else DEFAULT_RANGE_SELECTIVITY
    if expr.op == "=":
        return col_stats.eq_selectivity(value, stats.row_count)
    if expr.op == "<>":
        return max(0.0, 1.0 - col_stats.eq_selectivity(value, stats.row_count))
    return col_stats.range_selectivity(expr.op, value)


def _column_vs_literal(expr: Comparison) -> tuple[str | None, Any]:
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        return expr.left.name, expr.right.value
    if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
        # Flip so the caller sees column-op-value with the mirrored operator.
        return expr.right.name, expr.left.value
    return None, None


def _single_column(expr: Expr) -> str | None:
    return expr.name if isinstance(expr, ColumnRef) else None


def _lookup(stats: TableStats, column: str) -> ColumnStats | None:
    if column in stats.column_stats:
        return stats.column_stats[column]
    # Qualified name: match on the unqualified tail.
    tail = column.rsplit(".", 1)[-1]
    return stats.column_stats.get(tail)
