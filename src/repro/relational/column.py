"""Typed column storage backends.

A :class:`~repro.relational.table.Table` column lives in one of four
physical representations, selected per column from the schema dtype:

* ``array.array`` — the **typed** backend for INT (``'q'``) and FLOAT
  (``'d'``) columns: a dense C buffer of machine scalars.  Indexing and
  slicing return plain Python values, so the row-tuple protocol is
  unchanged, while the buffer converts to a numpy ``ndarray`` in one
  ``memcpy`` for the vectorized kernels.
* :class:`DictColumn` — the **dictionary** backend for STRING columns:
  an ``array.array('q')`` of codes plus a per-column value dictionary
  (code -> str and str -> code).  Reads decode transparently, so the
  row protocol is unchanged, while the vectorized kernels operate on the
  dense integer codes (see :class:`repro.exec.vector.DictVector`):
  string predicates become integer compares, joins probe on translated
  codes, and grouping reuses codes as ready-made group ids.  Memory
  drops to 8 bytes/row + one copy of each distinct value.
* ``list`` — the **object fallback** for dates, booleans, and any typed
  or dictionary column that observes a ``None`` (NULL) or a value its
  representation cannot hold.  Promotion is one-way and loss-free: the
  typed buffer is expanded back into a plain list, so semantics never
  change, only speed.
* ``numpy.ndarray`` — never the *storage* (numpy stays an optional
  dependency and append-heavy loads favour ``array.array``), but the
  *read-optimized view* the columnar kernels gather from; see
  :func:`repro.exec.vector.vector_view` and ``Table.vector``.

The backend is process-global: ``set_storage_backend("typed")`` (or the
``REPRO_STORAGE=typed`` environment variable) opts string columns out of
dictionary encoding (the pre-dictionary engine: strings on plain lists),
and ``"list"`` forces every new column onto plain lists — how the parity
suite and CI pin the reference behaviours.
"""

from __future__ import annotations

import os
import sys
from array import array
from typing import Any, Sequence

from repro.relational.types import DataType

DICT = "dict"
TYPED = "typed"
LIST = "list"

_ENV_VAR = "REPRO_STORAGE"

_BACKENDS = (DICT, TYPED, LIST)


def _default_backend() -> str:
    value = os.environ.get(_ENV_VAR, DICT).strip().lower()
    return value if value in _BACKENDS else DICT


_backend = _default_backend()


#: Bulk loads re-examine a dictionary column's distinct ratio once this many
#: rows have accumulated; below the floor small tables always stay encoded.
#: The check runs on the *whole* accumulated column, never a prefix: a
#: low-cardinality column whose values cycle with a period longer than any
#: fixed sample (every value in the first lap is new) must not look
#: unique-heavy just because we peeked early.
DEMOTE_MIN_ROWS = 1024

#: Distinct-values / rows watermark above which a bulk-loaded STRING column
#: is demoted to plain list storage: interning a never-repeating content
#: column costs ~3x on ingest for no query-side win (``bulk_load``'s
#: ``dict_vs_list``).  Values > 1.0 disable demotion (the ratio never
#: exceeds 1).
DEMOTE_DISTINCT_RATIO = 0.6


def _demotion_knobs() -> tuple[int, float]:
    """(min_rows, ratio) — module defaults, overridable per process via
    ``REPRO_DICT_DEMOTE_MIN_ROWS`` / ``REPRO_DICT_DEMOTE_RATIO``."""
    raw_rows = os.environ.get("REPRO_DICT_DEMOTE_MIN_ROWS", "").strip()
    raw_ratio = os.environ.get("REPRO_DICT_DEMOTE_RATIO", "").strip()
    min_rows = int(raw_rows) if raw_rows else DEMOTE_MIN_ROWS
    ratio = float(raw_ratio) if raw_ratio else DEMOTE_DISTINCT_RATIO
    return min_rows, ratio


class DictDemotion(TypeError):
    """Raised by ``DictColumn.extend`` when the cardinality heuristic fires.

    A ``TypeError`` subclass so the standard loss-free promotion in
    :func:`extend_values` handles it: the column is rebuilt as a plain list
    and the remaining load skips interning entirely.
    """


def storage_backend() -> str:
    """The active storage backend: ``"dict"``, ``"typed"`` or ``"list"``."""
    return _backend


def set_storage_backend(name: str | None) -> None:
    """Select the storage backend for columns created afterwards.

    ``None`` restores the default (the ``REPRO_STORAGE`` environment
    variable, falling back to ``"dict"``).  Existing tables keep the
    storage they were built with.
    """
    global _backend
    if name is None:
        _backend = _default_backend()
        return
    if name not in _BACKENDS:
        raise ValueError(f"unknown storage backend {name!r}")
    _backend = name


class DictColumn:
    """Dictionary-encoded string column: int64 codes + a value dictionary.

    Mirrors the slice of the ``array.array`` protocol the table layer
    uses (``append`` / ``extend`` / ``tolist`` / indexing / iteration),
    decoding on every read, so row-at-a-time code never sees codes.  A
    non-string value (``None``, mixed types, unhashables) raises
    ``TypeError`` from ``append``/``extend``, which triggers the same
    loss-free list promotion as an out-of-range int on a typed buffer.

    Interning is append-only and ordered for lock-free readers: a value
    is published in :attr:`values` *before* its code is appended to
    :attr:`codes`, so any code visible in a snapshot of ``codes`` (see
    ``DictVector``) always resolves against ``values``.  Codes are
    therefore stable for the lifetime of the column — the property the
    grouping and join kernels rely on to reuse per-dictionary state
    across batches.
    """

    __slots__ = ("codes", "values", "index")

    #: Duck-typed marker (also on ``repro.exec.vector.DictVector``) so the
    #: exec layer can detect dictionary data without importing this module.
    is_dictionary = True

    def __init__(self) -> None:
        self.codes = array("q")
        self.values: list[str] = []
        self.index: dict[str, int] = {}

    def append(self, value: Any) -> None:
        if type(value) is not str:
            raise TypeError(f"dictionary column cannot hold {value!r}")
        code = self.index.get(value)
        if code is None:
            code = len(self.values)
            self.values.append(value)
            self.index[value] = code
        self.codes.append(code)

    def extend(self, items: Sequence[Any]) -> None:
        """Bulk append.  Raises ``TypeError`` on the first non-string value
        with no codes consumed (the dictionary may have interned the clean
        prefix — harmless, since the caller promotes to a list).

        Bulk loads also apply the **cardinality heuristic**: once the
        column (existing rows + this batch) reaches the demotion floor, a
        distinct-values/rows ratio above the watermark raises
        :class:`DictDemotion` — unique-heavy content columns fall back to
        plain list storage instead of keeping a dictionary nothing will
        ever probe.  The ratio is evaluated over the *entire* column after
        the batch is interned, not a prefix sample: a column whose values
        repeat with a period longer than the floor (sequential ids cycling
        through a 2k-value domain, say) is all-new for its whole first lap
        and would misread as unique-heavy under any early peek.  The check
        fires exactly once per call and only on this bulk path;
        row-at-a-time ``append`` never demotes.
        """
        index = self.index
        values = self.values
        codes: list[int] = []
        min_rows, ratio = _demotion_knobs()
        for value in items:
            if type(value) is not str:
                raise TypeError(f"dictionary column cannot hold {value!r}")
            code = index.get(value)
            if code is None:
                code = len(values)
                values.append(value)
                index[value] = code
            codes.append(code)
        total = len(self.codes) + len(codes)
        if total >= min_rows and len(values) > ratio * total:
            raise DictDemotion(
                f"distinct ratio {len(values)}/{total} exceeds "
                f"{ratio} at {total} rows"
            )
        self.codes.extend(codes)

    def tolist(self) -> list:
        values = self.values
        return [values[c] for c in self.codes]

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, i):
        if isinstance(i, slice):
            values = self.values
            return [values[c] for c in self.codes[i]]
        return self.values[self.codes[i]]

    def __iter__(self):
        values = self.values
        return iter([values[c] for c in self.codes])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DictColumn({len(self.codes)} rows, "
            f"{len(self.values)} distinct)"
        )


def make_storage(dtype: DataType) -> list | array | DictColumn:
    """Fresh, empty storage for one column of ``dtype``."""
    if _backend == LIST:
        return []
    if _backend == DICT and dtype is DataType.STRING:
        return DictColumn()
    typecode = dtype.array_typecode()
    if typecode is None:
        return []
    return array(typecode)


def append_value(storage, value: Any):
    """Append ``value``, promoting a typed/dict buffer to a list when it
    cannot hold the value (NULL, wrong type, out of range).  Returns the
    storage to keep using — a new list after promotion, the input
    otherwise."""
    if type(storage) is list:
        storage.append(value)
        return storage
    try:
        storage.append(value)
        return storage
    except (TypeError, OverflowError):
        promoted = storage.tolist()
        promoted.append(value)
        return promoted


def extend_values(storage, values: Sequence[Any]):
    """Bulk :func:`append_value`: one C-level ``extend`` on the clean path.

    ``array.extend`` consumes its input incrementally, so on failure the
    promoted list is rebuilt from the pre-call prefix — a bad value mid-batch
    cannot duplicate the values consumed before it.  (``DictColumn.extend``
    is all-or-nothing, which the same prefix rebuild also handles.)
    """
    if type(storage) is list:
        storage.extend(values)
        return storage
    before = len(storage)
    try:
        storage.extend(values)
        return storage
    except (TypeError, OverflowError):
        promoted = storage.tolist()[:before]
        promoted.extend(values)
        return promoted


def is_typed(storage: Any) -> bool:
    """True when ``storage`` is a typed (``array.array``) buffer."""
    return isinstance(storage, array)


def is_dict(storage: Any) -> bool:
    """True when ``storage`` is a dictionary-encoded column."""
    return type(storage) is DictColumn


def column_nbytes(storage) -> int:
    """Resident payload bytes of one column's storage.

    * typed buffer: ``itemsize * len`` (the C buffer);
    * dictionary: 8 bytes per code + each distinct value's object size —
      the duplication-factor saving the bench reports;
    * list: an 8-byte slot per row + every row's object size (shared
      objects are charged per reference, matching what a row-major
      engine would hold live).
    """
    if isinstance(storage, array):
        return len(storage) * storage.itemsize
    if type(storage) is DictColumn:
        codes = storage.codes
        return len(codes) * codes.itemsize + sum(
            sys.getsizeof(v) for v in storage.values
        )
    return 8 * len(storage) + sum(sys.getsizeof(v) for v in storage)


__all__ = [
    "DICT",
    "TYPED",
    "LIST",
    "DEMOTE_MIN_ROWS",
    "DEMOTE_DISTINCT_RATIO",
    "DictColumn",
    "DictDemotion",
    "storage_backend",
    "set_storage_backend",
    "make_storage",
    "append_value",
    "extend_values",
    "is_typed",
    "is_dict",
    "column_nbytes",
]
