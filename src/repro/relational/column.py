"""Typed column storage backends.

A :class:`~repro.relational.table.Table` column lives in one of three
physical representations, selected per column from the schema dtype:

* ``array.array`` — the **typed** backend for INT (``'q'``) and FLOAT
  (``'d'``) columns: a dense C buffer of machine scalars.  Indexing and
  slicing return plain Python values, so the row-tuple protocol is
  unchanged, while the buffer converts to a numpy ``ndarray`` in one
  ``memcpy`` for the vectorized kernels.
* ``list`` — the **object fallback** for strings, dates, booleans, and any
  typed column that observes a ``None`` (NULL) or a value its C type cannot
  hold.  Promotion is one-way and loss-free: the typed buffer is expanded
  back into a plain list, so semantics never change, only speed.
* ``numpy.ndarray`` — never the *storage* (numpy stays an optional
  dependency and append-heavy loads favour ``array.array``), but the
  *read-optimized view* the columnar kernels gather from; see
  :func:`repro.exec.vector.vector_view` and ``Table.vector``.

The backend is process-global: ``set_storage_backend("list")`` (or the
``REPRO_STORAGE=list`` environment variable) forces every new column onto
plain lists, which is how the parity suite and CI pin the pure-list
reference behaviour.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Sequence

from repro.relational.types import DataType

TYPED = "typed"
LIST = "list"

_ENV_VAR = "REPRO_STORAGE"


def _default_backend() -> str:
    value = os.environ.get(_ENV_VAR, TYPED).strip().lower()
    return LIST if value == LIST else TYPED


_backend = _default_backend()


def storage_backend() -> str:
    """The active storage backend: ``"typed"`` or ``"list"``."""
    return _backend


def set_storage_backend(name: str | None) -> None:
    """Select the storage backend for columns created afterwards.

    ``None`` restores the default (the ``REPRO_STORAGE`` environment
    variable, falling back to ``"typed"``).  Existing tables keep the
    storage they were built with.
    """
    global _backend
    if name is None:
        _backend = _default_backend()
        return
    if name not in (TYPED, LIST):
        raise ValueError(f"unknown storage backend {name!r}")
    _backend = name


def make_storage(dtype: DataType) -> list | array:
    """Fresh, empty storage for one column of ``dtype``."""
    if _backend == LIST:
        return []
    typecode = dtype.array_typecode()
    if typecode is None:
        return []
    return array(typecode)


def append_value(storage: list | array, value: Any) -> list | array:
    """Append ``value``, promoting a typed buffer to a list when it cannot
    hold the value (NULL, wrong type, out of range).  Returns the storage
    to keep using — a new list after promotion, the input otherwise."""
    if type(storage) is list:
        storage.append(value)
        return storage
    try:
        storage.append(value)
        return storage
    except (TypeError, OverflowError):
        promoted = storage.tolist()
        promoted.append(value)
        return promoted


def extend_values(storage: list | array, values: Sequence[Any]) -> list | array:
    """Bulk :func:`append_value`: one C-level ``extend`` on the clean path.

    ``array.extend`` consumes its input incrementally, so on failure the
    promoted list is rebuilt from the pre-call prefix — a bad value mid-batch
    cannot duplicate the values consumed before it.
    """
    if type(storage) is list:
        storage.extend(values)
        return storage
    before = len(storage)
    try:
        storage.extend(values)
        return storage
    except (TypeError, OverflowError):
        promoted = storage.tolist()[:before]
        promoted.extend(values)
        return promoted


def is_typed(storage: Any) -> bool:
    """True when ``storage`` is a typed (``array.array``) buffer."""
    return isinstance(storage, array)


__all__ = [
    "TYPED",
    "LIST",
    "storage_backend",
    "set_storage_backend",
    "make_storage",
    "append_value",
    "extend_values",
    "is_typed",
]
