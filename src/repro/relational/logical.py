"""Logical plan algebra for SPJ queries (plus sort/limit/aggregate).

Logical nodes are cheap, immutable-ish descriptions; the optimizer rewrites
them (pushdown, join reordering) and the planner lowers them to physical
operators.  Every node exposes ``output_columns`` — qualified names like
``p.name`` — which is the contract joins and expressions are resolved
against.

The converged framework adds one more logical node,
:class:`repro.core.scan_graph_table.LogicalScanGraphTable`, which subclasses
:class:`LogicalNode` and behaves like a scan from the relational optimizer's
point of view (Sec 4.2.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.relational.expr import Expr


class LogicalNode:
    """Base class for logical plan nodes."""

    @property
    def output_columns(self) -> list[str]:
        raise NotImplementedError

    def children(self) -> list["LogicalNode"]:
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self._label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


@dataclass
class LogicalScan(LogicalNode):
    """Scan of a base table under an alias.

    ``predicate`` is a pushed-down filter evaluated during the scan;
    ``projected`` restricts the emitted columns (projection pruning).
    Output columns are qualified as ``alias.column``.
    """

    table_name: str
    alias: str
    table_columns: list[str]
    predicate: Expr | None = None
    projected: list[str] | None = None  # unqualified column names to keep

    @property
    def output_columns(self) -> list[str]:
        names = self.projected if self.projected is not None else self.table_columns
        return [f"{self.alias}.{c}" for c in names]

    def children(self) -> list[LogicalNode]:
        return []

    def _label(self) -> str:
        pred = f" filter={self.predicate}" if self.predicate is not None else ""
        proj = f" cols={self.projected}" if self.projected is not None else ""
        return f"Scan {self.table_name} as {self.alias}{pred}{proj}"


@dataclass
class LogicalFilter(LogicalNode):
    child: LogicalNode
    predicate: Expr

    @property
    def output_columns(self) -> list[str]:
        return self.child.output_columns

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def _label(self) -> str:
        return f"Filter {self.predicate}"


@dataclass
class LogicalProject(LogicalNode):
    """Projection: each output column is (expression, alias)."""

    child: LogicalNode
    exprs: list[tuple[Expr, str]]

    @property
    def output_columns(self) -> list[str]:
        return [alias for _, alias in self.exprs]

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def _label(self) -> str:
        cols = ", ".join(f"{e} AS {a}" for e, a in self.exprs)
        return f"Project {cols}"


@dataclass
class LogicalJoin(LogicalNode):
    """Inner join; ``condition`` may be None for a cross product."""

    left: LogicalNode
    right: LogicalNode
    condition: Expr | None

    @property
    def output_columns(self) -> list[str]:
        return self.left.output_columns + self.right.output_columns

    def children(self) -> list[LogicalNode]:
        return [self.left, self.right]

    def _label(self) -> str:
        cond = self.condition if self.condition is not None else "TRUE (cross)"
        return f"Join on {cond}"


@dataclass
class AggregateSpec:
    """One aggregate: ``func(arg) AS alias`` with func in MIN/MAX/COUNT/SUM/AVG.

    ``arg`` is None only for COUNT(*).
    """

    func: str
    arg: Expr | None
    alias: str

    def __post_init__(self) -> None:
        if self.func not in ("MIN", "MAX", "COUNT", "SUM", "AVG"):
            raise PlanError(f"unknown aggregate {self.func!r}")
        if self.arg is None and self.func != "COUNT":
            raise PlanError(f"{self.func} requires an argument")

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        return f"{self.func}({inner}) AS {self.alias}"


@dataclass
class LogicalAggregate(LogicalNode):
    child: LogicalNode
    group_by: list[tuple[Expr, str]] = field(default_factory=list)
    aggregates: list[AggregateSpec] = field(default_factory=list)

    @property
    def output_columns(self) -> list[str]:
        return [alias for _, alias in self.group_by] + [a.alias for a in self.aggregates]

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def _label(self) -> str:
        groups = ", ".join(a for _, a in self.group_by)
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"Aggregate group=[{groups}] aggs=[{aggs}]"


@dataclass
class LogicalSort(LogicalNode):
    child: LogicalNode
    keys: list[tuple[Expr, bool]]  # (expression, ascending)

    @property
    def output_columns(self) -> list[str]:
        return self.child.output_columns

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def _label(self) -> str:
        keys = ", ".join(f"{e} {'ASC' if asc else 'DESC'}" for e, asc in self.keys)
        return f"Sort {keys}"


@dataclass
class LogicalLimit(LogicalNode):
    child: LogicalNode
    limit: int

    @property
    def output_columns(self) -> list[str]:
        return self.child.output_columns

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def _label(self) -> str:
        return f"Limit {self.limit}"


@dataclass
class LogicalDistinct(LogicalNode):
    child: LogicalNode

    @property
    def output_columns(self) -> list[str]:
        return self.child.output_columns

    def children(self) -> list[LogicalNode]:
        return [self.child]


def walk(node: LogicalNode):
    """Pre-order traversal over a logical plan."""
    yield node
    for child in node.children():
        yield from walk(child)
