"""Scalar data types and NULL semantics for the relational engine.

The engine supports the small set of types the paper's workloads need:
64-bit integers, double-precision floats, strings, booleans and dates.
Dates are stored as ISO-8601 strings ("YYYY-MM-DD"); lexicographic order on
that representation coincides with chronological order, which keeps
comparisons simple and fast in pure Python.

``None`` is the engine's NULL.  Comparisons and arithmetic involving NULL
yield NULL, and predicates treat NULL as "not satisfied" (SQL three-valued
logic collapsed to two-valued at filter boundaries, the way real engines
apply WHERE clauses).
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import SchemaError


class DataType(enum.Enum):
    """A scalar column type."""

    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    BOOL = "BOOL"
    DATE = "DATE"

    def python_types(self) -> tuple[type, ...]:
        """The Python types accepted for values of this data type."""
        if self is DataType.INT:
            return (int,)
        if self is DataType.FLOAT:
            return (float, int)
        if self is DataType.STRING:
            return (str,)
        if self is DataType.BOOL:
            return (bool,)
        return (str,)  # DATE is stored as an ISO string

    def array_typecode(self) -> str | None:
        """The ``array.array`` typecode backing this type's typed storage.

        INT maps to a signed 64-bit buffer and FLOAT to a C double —
        exactly the value domains :meth:`validate` admits.  Types whose
        values are Python objects (strings, dates, booleans) return None
        and stay in plain lists.
        """
        if self is DataType.INT:
            return "q"
        if self is DataType.FLOAT:
            return "d"
        return None

    def validate(self, value: Any) -> Any:
        """Return ``value`` coerced for this type, or raise :class:`SchemaError`.

        ``None`` (NULL) is always accepted.
        """
        if value is None:
            return None
        if self is DataType.BOOL:
            if isinstance(value, bool):
                return value
            raise SchemaError(f"expected BOOL, got {value!r}")
        if self is DataType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected INT, got {value!r}")
            return value
        if self is DataType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected FLOAT, got {value!r}")
            return float(value)
        if self is DataType.DATE:
            if isinstance(value, str) and _looks_like_date(value):
                return value
            raise SchemaError(f"expected DATE as 'YYYY-MM-DD', got {value!r}")
        if isinstance(value, str):
            return value
        raise SchemaError(f"expected STRING, got {value!r}")


def _looks_like_date(value: str) -> bool:
    """Cheap structural check for ISO dates; full parsing is not needed."""
    if len(value) != 10 or value[4] != "-" or value[7] != "-":
        return False
    return (
        value[:4].isdigit() and value[5:7].isdigit() and value[8:10].isdigit()
    )


def comparable(left: DataType, right: DataType) -> bool:
    """Whether two data types may appear on the two sides of a comparison."""
    numeric = {DataType.INT, DataType.FLOAT}
    if left in numeric and right in numeric:
        return True
    if left in (DataType.STRING, DataType.DATE) and right in (DataType.STRING, DataType.DATE):
        return True
    return left is right


def common_type(left: DataType, right: DataType) -> DataType:
    """The result type of an arithmetic expression over two inputs."""
    if DataType.FLOAT in (left, right):
        return DataType.FLOAT
    return DataType.INT
