"""Columnar table storage.

A :class:`Table` stores each column in typed storage selected from its
schema dtype (see :mod:`repro.relational.column`): a dense ``array.array``
buffer for INT/FLOAT columns, a plain Python list otherwise — and any typed
column that observes a NULL or a value outside its C type is promoted back
to a list, so storage never changes semantics.  Row ``i`` of the table is
the ``i``-th element of every column; the position ``i`` is the tuple's
**rowid**, the stable physical identifier that the graph index (EV-index /
VE-index, Sec 3.2.1 of the paper) points at and that RGMapping uses as the
element identifier of mapped vertices and edges.

For the vectorized execution path, :meth:`Table.vector` exposes each column
as a cached numpy ``ndarray`` copy (when numpy is enabled and the column is
cleanly typed), which is what lights up the columnar kernels' gather and
selection fast paths end-to-end.  The cache is invalidated on every append,
and the views are copies — they never lock the storage buffers against
further loading.

Rows are append-only: the engine is an analytical substrate for optimizer
experiments, so updates/deletes (which would invalidate rowids and the graph
index) are intentionally unsupported.

**Snapshot versioning (MVCC-lite).**  Appends are *epoch-stamped*: every
mutation publishes its new row count under a process-wide epoch from
:func:`current_epoch`'s clock.  A reader pins one epoch at query start and
resolves each table to the row count that was published at or before that
epoch (:meth:`Table.snapshot_at`), so concurrent writers can keep appending
while every operator of the running query agrees on one immutable prefix —
rows, dictionary entries, and index rowids past the pinned count simply do
not exist for that query.  Storage is only ever extended (never reordered),
which is what makes a ``(row_count, epoch)`` pair a complete snapshot.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_right
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.errors import SchemaError
from repro.exec import vector as _vector
from repro.relational.column import (
    append_value,
    column_nbytes,
    extend_values,
    is_dict,
    make_storage,
)
from repro.relational.schema import TableSchema


class _EpochClock:
    """The process-wide append epoch: one monotonic counter for all tables.

    A single clock (rather than per-table counters) is what gives
    *cross-table* consistency: a query that pins epoch E sees, for every
    table it touches, exactly the appends published at or before E — a
    writer that inserts a vertex and then an edge can never be observed
    edge-first, whatever order the reader pins the two tables in.
    """

    __slots__ = ("_lock", "_now")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._now = 0

    def now(self) -> int:
        return self._now

    def tick(self) -> int:
        with self._lock:
            self._now += 1
            return self._now


_CLOCK = _EpochClock()


def current_epoch() -> int:
    """The latest published append epoch (what new queries pin)."""
    return _CLOCK.now()


class TableSnapshot:
    """An immutable view of a :class:`Table` prefix, pinned at one epoch.

    ``num_rows`` is the table's published row count as of the pinned epoch
    (possibly clamped further by the executor, e.g. to a graph index's
    build-time extent); every accessor bounds itself to that prefix.
    ``dictionary_watermarks`` records each dictionary column's distinct
    count at pin time — codes within the snapshot never reference values
    interned later, so the watermark bounds the dictionary slice a reader
    can observe.
    """

    __slots__ = ("table", "num_rows", "epoch", "dictionary_watermarks")

    def __init__(self, table: "Table", num_rows: int, epoch: int):
        self.table = table
        self.num_rows = num_rows
        self.epoch = epoch
        self.dictionary_watermarks: dict[str, int] = {
            name: len(storage.values)
            for name, storage in table.columns.items()
            if is_dict(storage)
        }

    def clamp(self, num_rows: int) -> None:
        """Shrink the snapshot to a smaller prefix (still consistent —
        prefixes of a consistent prefix are consistent).  The executor uses
        this to align a table with a graph index built over fewer rows."""
        if num_rows < self.num_rows:
            self.num_rows = num_rows

    def column(self, name: str) -> Sequence[Any]:
        """Raw storage; callers must bound reads to :attr:`num_rows`."""
        return self.table.column(name)

    def vector(self, name: str) -> Sequence[Any]:
        """Vectorized view guaranteed to cover the snapshot prefix.

        The view may extend past :attr:`num_rows` (the cache serves the
        live length); rows beyond the snapshot are never selected because
        every scan extent is bounded by the pinned count.
        """
        return self.table.vector(name, min_rows=self.num_rows)

    def pk_rowid(self, key: Any) -> int | None:
        """Primary-key lookup restricted to the snapshot prefix."""
        rowid = self.table.pk_lookup(key)
        if rowid is None or rowid >= self.num_rows:
            return None
        return rowid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TableSnapshot({self.table.schema.name!r}, rows={self.num_rows}, "
            f"epoch={self.epoch})"
        )


class Table:
    """A relation materialized column-wise.

    Args:
        schema: the table schema; column order defines the row layout.
        rows: optional initial rows (sequences matching the schema order).
        validate: when True (default) every appended value is checked against
            its column type.  Bulk loaders that generate known-clean data can
            pass False to skip per-value validation.
    """

    def __init__(
        self,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]] | None = None,
        validate: bool = True,
    ):
        self.schema = schema
        self.columns: dict[str, Sequence[Any]] = {
            c.name: make_storage(c.dtype) for c in schema.columns
        }
        self._column_list: list[Sequence[Any]] = [
            self.columns[c.name] for c in schema.columns
        ]
        self._vectors: dict[str, Sequence[Any]] = {}
        self._pk_index: dict[Any, int] | None = None
        # Epoch marks: parallel arrays of (publish epoch, row count at that
        # epoch), appended under the write lock after the storage mutation
        # completes.  A reader pinned at epoch E resolves its prefix by
        # binary search — rows extended but not yet marked are invisible.
        self._write_lock = threading.Lock()
        self._mark_epochs = array("q")
        self._mark_rows = array("q")
        pk = schema.primary_key
        self._pk_pos: int | None = (
            next(i for i, c in enumerate(schema.columns) if c.name == pk)
            if pk is not None
            else None
        )
        if rows is not None:
            self.extend(rows, validate=validate)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #

    def _replace_storage(self, position: int, storage: Sequence[Any]) -> None:
        """Install a promoted column (typed buffer -> object list)."""
        name = self.schema.columns[position].name
        self.columns[name] = storage
        self._column_list[position] = storage

    def append(self, row: Sequence[Any], validate: bool = True) -> int:
        """Append one row; returns its rowid."""
        if len(row) != len(self._column_list):
            raise SchemaError(
                f"row arity {len(row)} does not match schema {self.schema.name!r} "
                f"with {len(self._column_list)} columns"
            )
        if validate:
            row = [
                col.dtype.validate(value)
                for col, value in zip(self.schema.columns, row)
            ]
        with self._write_lock:
            for position, value in enumerate(row):
                column = self._column_list[position]
                updated = append_value(column, value)
                if updated is not column:
                    self._replace_storage(position, updated)
            self._vectors.clear()
            rowid = len(self._column_list[0]) - 1
            self._index_appended(row, rowid)
            self._publish(rowid + 1)
        return rowid

    def extend(self, rows: Iterable[Sequence[Any]], validate: bool = True) -> None:
        """Bulk append: transpose once, then extend column-wise.

        One arity pass and one per-column validate pass replace the
        per-row/per-value work of repeated :meth:`append`; on typed columns
        the final extend is a single C-level buffer fill.  Loaders that
        already hold column-major data should call :meth:`extend_columns`
        instead and skip the transpose entirely.
        """
        rows = rows if isinstance(rows, list) else list(rows)
        if not rows:
            return
        ncols = len(self._column_list)
        for row in rows:
            if len(row) != ncols:
                raise SchemaError(
                    f"row arity {len(row)} does not match schema "
                    f"{self.schema.name!r} with {ncols} columns"
                )
        if ncols == 0:
            return
        self._load_columns(
            [[row[i] for row in rows] for i in range(ncols)], validate
        )

    def extend_columns(
        self, columns: Sequence[Sequence[Any]], validate: bool = True
    ) -> None:
        """Bulk append from pre-built columns — the column-major fast path.

        ``columns`` holds one equal-length value sequence per schema column,
        in schema order.  Skipping the row-tuple transpose is what makes
        typed bulk loads cheaper than plain-list appends instead of ~1.4x
        dearer (see ``BENCH_exec.json`` ``bulk_load``); the workload
        generators accumulate column-major and load through here.
        """
        ncols = len(self._column_list)
        if len(columns) != ncols:
            raise SchemaError(
                f"column count {len(columns)} does not match schema "
                f"{self.schema.name!r} with {ncols} columns"
            )
        if ncols == 0:
            return
        length = len(columns[0])
        for position, values in enumerate(columns):
            if len(values) != length:
                raise SchemaError(
                    f"ragged columns: column {position} has {len(values)} "
                    f"values, expected {length} (table {self.schema.name!r})"
                )
        if not length:
            return
        self._load_columns(list(columns), validate)

    def _load_columns(self, columns: list[Sequence[Any]], validate: bool) -> None:
        """Shared column-major load tail (arity/length already checked).

        Validates every column before mutating any, so a bad value cannot
        leave the table with ragged columns.  The outer ``columns`` list
        must be owned by the caller (validation replaces its entries); the
        per-column value sequences are only read, never mutated.
        """
        if validate:
            for i, col in enumerate(self.schema.columns):
                check = col.dtype.validate
                columns[i] = [check(v) for v in columns[i]]
        with self._write_lock:
            first_rowid = len(self._column_list[0])
            for position, values in enumerate(columns):
                column = self._column_list[position]
                updated = extend_values(column, values)
                if updated is not column:
                    self._replace_storage(position, updated)
            self._vectors.clear()
            index = self._pk_index
            if index is not None:
                assert self._pk_pos is not None
                new_keys = columns[self._pk_pos]
                # Scan for duplicates (against the index or within the batch)
                # before touching the cached dict: a duplicate defers the error
                # to the next pk_index() rebuild — exactly the lazy path's
                # semantics — and the dict callers may already hold is never
                # left partially updated.
                fresh: set[Any] = set()
                duplicate = False
                for value in new_keys:
                    if value in index or value in fresh:
                        self._pk_index = None
                        duplicate = True
                        break
                    fresh.add(value)
                if not duplicate:
                    for offset, value in enumerate(new_keys):
                        index[value] = first_rowid + offset
            self._publish(first_rowid + len(columns[0]))

    def _index_appended(self, row: Sequence[Any], rowid: int) -> None:
        """Maintain the cached pk index incrementally on append.

        Discarding the cache on every append made interleaved append/lookup
        loops O(n^2); inserting the new key keeps them linear.  A duplicate
        key drops the cache so the next :meth:`pk_index` rebuild raises,
        preserving the lazy path's error semantics.
        """
        index = self._pk_index
        if index is None:
            return
        assert self._pk_pos is not None
        value = row[self._pk_pos]
        if value in index:
            self._pk_index = None
        else:
            index[value] = rowid

    # ------------------------------------------------------------------ #
    # snapshot versioning
    # ------------------------------------------------------------------ #

    def _publish(self, num_rows: int) -> None:
        """Stamp a completed mutation (caller holds the write lock).

        The storage extension happens *before* the epoch mark, so a reader
        that resolves ``rows_at(E)`` can always index every row the mark
        covers — the publication-order rule ``DictColumn`` already follows
        for values vs codes, lifted to whole tables.
        """
        self._mark_epochs.append(_CLOCK.tick())
        self._mark_rows.append(num_rows)

    @property
    def version(self) -> int:
        """The epoch of the last published mutation (0 = never mutated)."""
        marks = self._mark_epochs
        return marks[-1] if marks else 0

    def rows_at(self, epoch: int) -> int:
        """The published row count as of ``epoch``."""
        marks = self._mark_epochs
        i = bisect_right(marks, epoch)
        return self._mark_rows[i - 1] if i else 0

    def snapshot_at(self, epoch: int | None = None) -> TableSnapshot:
        """Pin an immutable prefix of this table.

        ``epoch`` defaults to :func:`current_epoch` — the freshest
        consistent state.  Queries pin one epoch for *all* tables they
        touch (see ``ExecutionContext.pin``), which is what makes
        cross-table reads epoch-consistent under live writers.
        """
        if epoch is None:
            epoch = current_epoch()
        return TableSnapshot(self, self.rows_at(epoch), epoch)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        if not self._column_list:
            return 0
        return len(self._column_list[0])

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> Sequence[Any]:
        """The raw column storage (shared, do not mutate).

        A ``list`` or typed ``array.array``; indexing and slicing always
        yield plain Python values, so this is what row-protocol operators
        and per-rowid predicates read.
        """
        if name not in self.columns:
            raise SchemaError(f"no column {name!r} in table {self.schema.name!r}")
        return self.columns[name]

    def vector(self, name: str, min_rows: int | None = None) -> Sequence[Any]:
        """The column as its best vectorized representation.

        With numpy enabled this is a cached ndarray copy (typed buffers
        convert via one memcpy, clean object columns — e.g. dates — by
        copy); otherwise, or when the column holds NULLs/mixed types, the
        raw storage of :meth:`column`.  The cache is dropped on append, and
        the view never locks the storage against further loading.

        ``min_rows`` is the snapshot contract: a caller that pinned a
        row-count prefix passes it so a cached view raced into the cache by
        another reader *before* a writer's append (and therefore shorter
        than the pinned prefix) is rebuilt instead of served short.
        """
        if name not in self.columns:
            raise SchemaError(f"no column {name!r} in table {self.schema.name!r}")
        if not _vector.numpy_enabled():
            return self.columns[name]
        view = self._vectors.get(name)
        if view is None or (min_rows is not None and len(view) < min_rows):
            view = _vector.vector_view(self.columns[name])
            self._vectors[name] = view
        return view

    def memory_bytes(self) -> dict[str, int]:
        """Resident payload bytes per column storage.

        Typed buffers charge their C buffer, dictionary columns charge
        8 bytes/code + one copy of each distinct value, lists charge a
        slot plus the object per row (:func:`repro.relational.column.
        column_nbytes`) — what the bench reports to make the dictionary
        duplication-factor saving visible.
        """
        return {
            name: column_nbytes(storage)
            for name, storage in self.columns.items()
        }

    def row(self, rowid: int) -> tuple[Any, ...]:
        """Materialize one row as a tuple, in schema column order."""
        return tuple(column[rowid] for column in self._column_list)

    def value(self, rowid: int, column: str) -> Any:
        return self.columns[column][rowid]

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        """Yield all rows in rowid order."""
        return iter(zip(*self._column_list)) if self._column_list else iter(())

    # ------------------------------------------------------------------ #
    # primary-key lookup
    # ------------------------------------------------------------------ #

    def pk_index(self) -> dict[Any, int]:
        """The primary-key hash index: key value -> rowid.

        Built lazily on first use, cached until the next append.  Shared by
        :meth:`pk_lookup`, RGMapping's λ-function resolution, and the
        runtime EVJoin of :class:`repro.graph.physical.EdgeTripleScan`.
        """
        pk = self.schema.primary_key
        if pk is None:
            raise SchemaError(f"table {self.schema.name!r} has no primary key")
        if self._pk_index is None:
            index: dict[Any, int] = {}
            for rowid, value in enumerate(self.columns[pk]):
                if value in index:
                    raise SchemaError(
                        f"duplicate primary key {value!r} in table {self.schema.name!r}"
                    )
                index[value] = rowid
            self._pk_index = index
        return self._pk_index

    def pk_lookup(self, key: Any) -> int | None:
        """Rowid of the row whose primary key equals ``key``, or None."""
        return self.pk_index().get(key)

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={self.num_rows})"
