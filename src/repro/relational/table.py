"""Columnar table storage.

A :class:`Table` stores each column in typed storage selected from its
schema dtype (see :mod:`repro.relational.column`): a dense ``array.array``
buffer for INT/FLOAT columns, a plain Python list otherwise — and any typed
column that observes a NULL or a value outside its C type is promoted back
to a list, so storage never changes semantics.  Row ``i`` of the table is
the ``i``-th element of every column; the position ``i`` is the tuple's
**rowid**, the stable physical identifier that the graph index (EV-index /
VE-index, Sec 3.2.1 of the paper) points at and that RGMapping uses as the
element identifier of mapped vertices and edges.

For the vectorized execution path, :meth:`Table.vector` exposes each column
as a cached numpy ``ndarray`` copy (when numpy is enabled and the column is
cleanly typed), which is what lights up the columnar kernels' gather and
selection fast paths end-to-end.  The cache is invalidated on every append,
and the views are copies — they never lock the storage buffers against
further loading.

Rows are append-only: the engine is an analytical substrate for optimizer
experiments, so updates/deletes (which would invalidate rowids and the graph
index) are intentionally unsupported.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.errors import SchemaError
from repro.exec import vector as _vector
from repro.relational.column import (
    append_value,
    column_nbytes,
    extend_values,
    make_storage,
)
from repro.relational.schema import TableSchema


class Table:
    """A relation materialized column-wise.

    Args:
        schema: the table schema; column order defines the row layout.
        rows: optional initial rows (sequences matching the schema order).
        validate: when True (default) every appended value is checked against
            its column type.  Bulk loaders that generate known-clean data can
            pass False to skip per-value validation.
    """

    def __init__(
        self,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]] | None = None,
        validate: bool = True,
    ):
        self.schema = schema
        self.columns: dict[str, Sequence[Any]] = {
            c.name: make_storage(c.dtype) for c in schema.columns
        }
        self._column_list: list[Sequence[Any]] = [
            self.columns[c.name] for c in schema.columns
        ]
        self._vectors: dict[str, Sequence[Any]] = {}
        self._pk_index: dict[Any, int] | None = None
        pk = schema.primary_key
        self._pk_pos: int | None = (
            next(i for i, c in enumerate(schema.columns) if c.name == pk)
            if pk is not None
            else None
        )
        if rows is not None:
            self.extend(rows, validate=validate)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #

    def _replace_storage(self, position: int, storage: Sequence[Any]) -> None:
        """Install a promoted column (typed buffer -> object list)."""
        name = self.schema.columns[position].name
        self.columns[name] = storage
        self._column_list[position] = storage

    def append(self, row: Sequence[Any], validate: bool = True) -> int:
        """Append one row; returns its rowid."""
        if len(row) != len(self._column_list):
            raise SchemaError(
                f"row arity {len(row)} does not match schema {self.schema.name!r} "
                f"with {len(self._column_list)} columns"
            )
        if validate:
            row = [
                col.dtype.validate(value)
                for col, value in zip(self.schema.columns, row)
            ]
        for position, value in enumerate(row):
            column = self._column_list[position]
            updated = append_value(column, value)
            if updated is not column:
                self._replace_storage(position, updated)
        self._vectors.clear()
        rowid = len(self._column_list[0]) - 1
        self._index_appended(row, rowid)
        return rowid

    def extend(self, rows: Iterable[Sequence[Any]], validate: bool = True) -> None:
        """Bulk append: transpose once, then extend column-wise.

        One arity pass and one per-column validate pass replace the
        per-row/per-value work of repeated :meth:`append`; on typed columns
        the final extend is a single C-level buffer fill.  Loaders that
        already hold column-major data should call :meth:`extend_columns`
        instead and skip the transpose entirely.
        """
        rows = rows if isinstance(rows, list) else list(rows)
        if not rows:
            return
        ncols = len(self._column_list)
        for row in rows:
            if len(row) != ncols:
                raise SchemaError(
                    f"row arity {len(row)} does not match schema "
                    f"{self.schema.name!r} with {ncols} columns"
                )
        if ncols == 0:
            return
        self._load_columns(
            [[row[i] for row in rows] for i in range(ncols)], validate
        )

    def extend_columns(
        self, columns: Sequence[Sequence[Any]], validate: bool = True
    ) -> None:
        """Bulk append from pre-built columns — the column-major fast path.

        ``columns`` holds one equal-length value sequence per schema column,
        in schema order.  Skipping the row-tuple transpose is what makes
        typed bulk loads cheaper than plain-list appends instead of ~1.4x
        dearer (see ``BENCH_exec.json`` ``bulk_load``); the workload
        generators accumulate column-major and load through here.
        """
        ncols = len(self._column_list)
        if len(columns) != ncols:
            raise SchemaError(
                f"column count {len(columns)} does not match schema "
                f"{self.schema.name!r} with {ncols} columns"
            )
        if ncols == 0:
            return
        length = len(columns[0])
        for position, values in enumerate(columns):
            if len(values) != length:
                raise SchemaError(
                    f"ragged columns: column {position} has {len(values)} "
                    f"values, expected {length} (table {self.schema.name!r})"
                )
        if not length:
            return
        self._load_columns(list(columns), validate)

    def _load_columns(self, columns: list[Sequence[Any]], validate: bool) -> None:
        """Shared column-major load tail (arity/length already checked).

        Validates every column before mutating any, so a bad value cannot
        leave the table with ragged columns.  The outer ``columns`` list
        must be owned by the caller (validation replaces its entries); the
        per-column value sequences are only read, never mutated.
        """
        if validate:
            for i, col in enumerate(self.schema.columns):
                check = col.dtype.validate
                columns[i] = [check(v) for v in columns[i]]
        first_rowid = len(self._column_list[0])
        for position, values in enumerate(columns):
            column = self._column_list[position]
            updated = extend_values(column, values)
            if updated is not column:
                self._replace_storage(position, updated)
        self._vectors.clear()
        index = self._pk_index
        if index is not None:
            assert self._pk_pos is not None
            new_keys = columns[self._pk_pos]
            # Scan for duplicates (against the index or within the batch)
            # before touching the cached dict: a duplicate defers the error
            # to the next pk_index() rebuild — exactly the lazy path's
            # semantics — and the dict callers may already hold is never
            # left partially updated.
            fresh: set[Any] = set()
            for value in new_keys:
                if value in index or value in fresh:
                    self._pk_index = None
                    return
                fresh.add(value)
            for offset, value in enumerate(new_keys):
                index[value] = first_rowid + offset

    def _index_appended(self, row: Sequence[Any], rowid: int) -> None:
        """Maintain the cached pk index incrementally on append.

        Discarding the cache on every append made interleaved append/lookup
        loops O(n^2); inserting the new key keeps them linear.  A duplicate
        key drops the cache so the next :meth:`pk_index` rebuild raises,
        preserving the lazy path's error semantics.
        """
        index = self._pk_index
        if index is None:
            return
        assert self._pk_pos is not None
        value = row[self._pk_pos]
        if value in index:
            self._pk_index = None
        else:
            index[value] = rowid

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        if not self._column_list:
            return 0
        return len(self._column_list[0])

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> Sequence[Any]:
        """The raw column storage (shared, do not mutate).

        A ``list`` or typed ``array.array``; indexing and slicing always
        yield plain Python values, so this is what row-protocol operators
        and per-rowid predicates read.
        """
        if name not in self.columns:
            raise SchemaError(f"no column {name!r} in table {self.schema.name!r}")
        return self.columns[name]

    def vector(self, name: str) -> Sequence[Any]:
        """The column as its best vectorized representation.

        With numpy enabled this is a cached ndarray copy (typed buffers
        convert via one memcpy, clean object columns — e.g. dates — by
        copy); otherwise, or when the column holds NULLs/mixed types, the
        raw storage of :meth:`column`.  The cache is dropped on append, and
        the view never locks the storage against further loading.
        """
        if name not in self.columns:
            raise SchemaError(f"no column {name!r} in table {self.schema.name!r}")
        if not _vector.numpy_enabled():
            return self.columns[name]
        view = self._vectors.get(name)
        if view is None:
            view = _vector.vector_view(self.columns[name])
            self._vectors[name] = view
        return view

    def memory_bytes(self) -> dict[str, int]:
        """Resident payload bytes per column storage.

        Typed buffers charge their C buffer, dictionary columns charge
        8 bytes/code + one copy of each distinct value, lists charge a
        slot plus the object per row (:func:`repro.relational.column.
        column_nbytes`) — what the bench reports to make the dictionary
        duplication-factor saving visible.
        """
        return {
            name: column_nbytes(storage)
            for name, storage in self.columns.items()
        }

    def row(self, rowid: int) -> tuple[Any, ...]:
        """Materialize one row as a tuple, in schema column order."""
        return tuple(column[rowid] for column in self._column_list)

    def value(self, rowid: int, column: str) -> Any:
        return self.columns[column][rowid]

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        """Yield all rows in rowid order."""
        return iter(zip(*self._column_list)) if self._column_list else iter(())

    # ------------------------------------------------------------------ #
    # primary-key lookup
    # ------------------------------------------------------------------ #

    def pk_index(self) -> dict[Any, int]:
        """The primary-key hash index: key value -> rowid.

        Built lazily on first use, cached until the next append.  Shared by
        :meth:`pk_lookup`, RGMapping's λ-function resolution, and the
        runtime EVJoin of :class:`repro.graph.physical.EdgeTripleScan`.
        """
        pk = self.schema.primary_key
        if pk is None:
            raise SchemaError(f"table {self.schema.name!r} has no primary key")
        if self._pk_index is None:
            index: dict[Any, int] = {}
            for rowid, value in enumerate(self.columns[pk]):
                if value in index:
                    raise SchemaError(
                        f"duplicate primary key {value!r} in table {self.schema.name!r}"
                    )
                index[value] = rowid
            self._pk_index = index
        return self._pk_index

    def pk_lookup(self, key: Any) -> int | None:
        """Rowid of the row whose primary key equals ``key``, or None."""
        return self.pk_index().get(key)

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={self.num_rows})"
