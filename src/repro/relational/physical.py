"""Row-based physical operators.

All operators materialize their output as a list of Python tuples; columns
are identified by qualified names (``alias.column``).  Besides the classic
operators (scan, filter, project, hash join, aggregate, sort, limit,
distinct) this module implements the two **predefined-join** operators that
GRainDB contributes (Sec 3.2.1 of the paper):

* :class:`RowIdJoin` — follows an EV-index pointer column (an edge tuple's
  stored rowid of its endpoint tuple) and fetches the vertex row by position,
  skipping hash-table build and probe entirely.
* :class:`CsrJoin` — follows the VE-index (CSR adjacency) from a vertex row's
  rowid to all joinable edge rows.

Scans can emit a hidden ``alias._rowid`` column and EV-index pointer columns
so that downstream predefined joins have something to follow; the planner
decides when to request them.
"""

from __future__ import annotations

import operator
from typing import Any, Sequence

from repro.errors import PlanError
from repro.relational.executor import ExecutionContext
from repro.relational.expr import (
    Expr,
    compile_expr,
    compile_predicate,
    referenced_columns,
)
from repro.relational.logical import AggregateSpec
from repro.relational.table import Table

ROWID_COLUMN = "_rowid"


def rowid_checker(table: Table, predicate: Expr):
    """Compile ``predicate`` into a rowid -> bool check over ``table``.

    Used by the predefined joins, whose fetched side is addressed by rowid;
    the predicate may reference any base column (qualified or not), not just
    projected ones.
    """
    names = sorted(referenced_columns(predicate))
    arrays = [table.column(n.rsplit(".", 1)[-1]) for n in names]
    layout = {n: i for i, n in enumerate(names)}
    pred = compile_predicate(predicate, layout)
    if len(arrays) == 1:
        only = arrays[0]
        return lambda rowid: pred((only[rowid],))
    return lambda rowid: pred(tuple(a[rowid] for a in arrays))


class PhysicalOperator:
    """Base class; subclasses set ``output_columns`` in ``__init__``."""

    output_columns: list[str]

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        raise NotImplementedError

    def children(self) -> list["PhysicalOperator"]:
        return []

    def layout(self) -> dict[str, int]:
        return {name: i for i, name in enumerate(self.output_columns)}

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self._label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


def _column_indices(
    exprs: list[tuple["Expr", str]], columns: Sequence[str]
) -> list[int] | None:
    """Source indices when every projection expression is a plain column
    reference; None when any expression needs real evaluation."""
    from repro.relational.expr import ColumnRef

    indices: list[int] = []
    for expr, _ in exprs:
        if not isinstance(expr, ColumnRef):
            return None
        try:
            indices.append(_resolve(columns, expr.name))
        except PlanError:
            return None
    return indices


def _resolve(columns: Sequence[str], name: str) -> int:
    """Index of ``name`` among ``columns``; tolerates unqualified names."""
    try:
        return list(columns).index(name)
    except ValueError:
        pass
    tail_matches = [i for i, c in enumerate(columns) if c.rsplit(".", 1)[-1] == name]
    if len(tail_matches) == 1:
        return tail_matches[0]
    raise PlanError(f"cannot resolve column {name!r} among {list(columns)}")


class SeqScan(PhysicalOperator):
    """Full scan of a base table with optional inline filter and projection.

    Args:
        table: the table to scan.
        alias: qualifier for output column names.
        predicate: pushed-down filter over the table's (unqualified or
            alias-qualified) columns.
        projected: unqualified column names to emit; None emits all.
        emit_rowid: additionally emit ``alias._rowid`` (physical position),
            enabling downstream predefined joins.
        pointer_columns: extra ``(name, values)`` pairs appended to the
            output — the EV-index rowid pointer columns of an edge table.
    """

    def __init__(
        self,
        table: Table,
        alias: str,
        predicate: Expr | None = None,
        projected: list[str] | None = None,
        emit_rowid: bool = False,
        pointer_columns: list[tuple[str, list[int]]] | None = None,
    ):
        self.table = table
        self.alias = alias
        self.predicate = predicate
        self.projected = (
            projected if projected is not None else table.schema.column_names
        )
        self.emit_rowid = emit_rowid
        self.pointer_columns = pointer_columns or []
        self.output_columns = [f"{alias}.{c}" for c in self.projected]
        if emit_rowid:
            self.output_columns.append(f"{alias}.{ROWID_COLUMN}")
        self.output_columns.extend(name for name, _ in self.pointer_columns)

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        columns = [self.table.column(c) for c in self.projected]
        extras: list[list[Any]] = [values for _, values in self.pointer_columns]
        n = self.table.num_rows
        rowids: range | list[int] = range(n)
        if self.predicate is not None:
            # Evaluate the predicate against the full base row once, then
            # project; the predicate may reference non-projected columns.
            base_layout: dict[str, int] = {}
            for i, c in enumerate(self.table.schema.column_names):
                base_layout[c] = i
                base_layout[f"{self.alias}.{c}"] = i
            pred = compile_predicate(self.predicate, base_layout)
            all_columns = [self.table.column(c) for c in self.table.schema.column_names]
            rowids = [i for i, row in enumerate(zip(*all_columns)) if pred(row)]
        # Assemble column-at-a-time, then zip into rows at C speed.
        parts: list = list(columns)
        if self.emit_rowid:
            parts.append(rowids if isinstance(rowids, (range, list)) else list(rowids))
        parts.extend(extras)
        if isinstance(rowids, range):
            if self.emit_rowid:
                parts[len(columns)] = rowids
            out = list(zip(*parts)) if parts else [()] * n
        else:
            gathered = []
            for part in parts:
                if part is rowids:
                    gathered.append(rowids)
                else:
                    gathered.append([part[i] for i in rowids])
            out = list(zip(*gathered)) if gathered else [()] * len(rowids)
        ctx.charge(len(out), self._label())
        return out

    def _label(self) -> str:
        pred = f" ({self.predicate})" if self.predicate is not None else ""
        return f"SCAN_TABLE {self.table.schema.name} as {self.alias}{pred}"


class FilterOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, predicate: Expr):
        self.child = child
        self.predicate = predicate
        self.output_columns = list(child.output_columns)

    def children(self) -> list[PhysicalOperator]:
        return [self.child]

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        rows = self.child.execute(ctx)
        pred = compile_predicate(self.predicate, self.child.layout())
        out = [row for row in rows if pred(row)]
        ctx.charge(len(out), self._label())
        return out

    def _label(self) -> str:
        return f"SELECTION ({self.predicate})"


class ProjectOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, exprs: list[tuple[Expr, str]]):
        self.child = child
        self.exprs = exprs
        self.output_columns = [alias for _, alias in exprs]

    def children(self) -> list[PhysicalOperator]:
        return [self.child]

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        rows = self.child.execute(ctx)
        layout = self.child.layout()
        indices = _column_indices(self.exprs, self.child.output_columns)
        if indices is not None:
            # Rename-only projection: gather via a C-level itemgetter.
            if len(indices) == 1:
                i0 = indices[0]
                out = [(row[i0],) for row in rows]
            else:
                getter = operator.itemgetter(*indices)
                out = list(map(getter, rows))
        else:
            evaluators = [compile_expr(e, layout) for e, _ in self.exprs]
            out = [tuple(ev(row) for ev in evaluators) for row in rows]
        ctx.charge(len(out), self._label())
        return out

    def _label(self) -> str:
        return "PROJECTION " + ", ".join(a for _, a in self.exprs)


class HashJoin(PhysicalOperator):
    """Inner equi-join: build a hash table on the right, probe with the left."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: list[str],
        right_keys: list[str],
        residual: Expr | None = None,
    ):
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("hash join needs matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.output_columns = list(left.output_columns) + list(right.output_columns)

    def children(self) -> list[PhysicalOperator]:
        return [self.left, self.right]

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        left_rows = self.left.execute(ctx)
        right_rows = self.right.execute(ctx)
        l_idx = [_resolve(self.left.output_columns, k) for k in self.left_keys]
        r_idx = [_resolve(self.right.output_columns, k) for k in self.right_keys]
        build: dict[Any, list[tuple]] = {}
        if len(r_idx) == 1:
            ri = r_idx[0]
            for row in right_rows:
                key = row[ri]
                if key is None:
                    continue
                build.setdefault(key, []).append(row)
            keys = [l_idx[0]]
            probe_key = lambda row: row[keys[0]]  # noqa: E731
        else:
            for row in right_rows:
                key = tuple(row[i] for i in r_idx)
                if any(k is None for k in key):
                    continue
                build.setdefault(key, []).append(row)
            probe_key = lambda row: tuple(row[i] for i in l_idx)  # noqa: E731
        out: list[tuple] = []
        next_check = 16384
        empty: list[tuple] = []
        for row in left_rows:
            key = probe_key(row)
            if key is None:
                continue
            for match in build.get(key, empty):
                out.append(row + match)
                if len(out) >= next_check:
                    ctx.check_size(len(out))
                    next_check = len(out) + 16384
        if self.residual is not None:
            pred = compile_predicate(self.residual, self.layout())
            out = [row for row in out if pred(row)]
        ctx.charge(len(out), self._label())
        return out

    def _label(self) -> str:
        keys = ", ".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))
        return f"HASH_JOIN ({keys})"


class NestedLoopJoin(PhysicalOperator):
    """Fallback join for non-equi (or absent) conditions."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: Expr | None,
    ):
        self.left = left
        self.right = right
        self.condition = condition
        self.output_columns = list(left.output_columns) + list(right.output_columns)

    def children(self) -> list[PhysicalOperator]:
        return [self.left, self.right]

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        left_rows = self.left.execute(ctx)
        right_rows = self.right.execute(ctx)
        if self.condition is not None:
            pred = compile_predicate(self.condition, self.layout())
            out = [
                lrow + rrow
                for lrow in left_rows
                for rrow in right_rows
                if pred(lrow + rrow)
            ]
        else:
            out = [lrow + rrow for lrow in left_rows for rrow in right_rows]
        ctx.charge(len(out), self._label())
        return out

    def _label(self) -> str:
        return f"NL_JOIN ({self.condition})"


class RowIdJoin(PhysicalOperator):
    """GRainDB-style predefined join along an EV-index pointer column.

    For each input row, reads the pointer column (a rowid into ``table``) and
    fetches that row directly — no hash table.  A NULL/-1 pointer drops the
    row (inner-join semantics over a total mapping never produces these, but
    defensive plans may).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        pointer_column: str,
        table: Table,
        alias: str,
        projected: list[str] | None = None,
        predicate: Expr | None = None,
        emit_rowid: bool = False,
    ):
        self.child = child
        self.pointer_column = pointer_column
        self.table = table
        self.alias = alias
        self.projected = (
            projected if projected is not None else table.schema.column_names
        )
        self.predicate = predicate
        self.emit_rowid = emit_rowid
        self.output_columns = list(child.output_columns) + [
            f"{alias}.{c}" for c in self.projected
        ]
        if emit_rowid:
            self.output_columns.append(f"{alias}.{ROWID_COLUMN}")

    def children(self) -> list[PhysicalOperator]:
        return [self.child]

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        rows = self.child.execute(ctx)
        ptr = _resolve(self.child.output_columns, self.pointer_column)
        columns = [self.table.column(c) for c in self.projected]
        check = (
            rowid_checker(self.table, self.predicate)
            if self.predicate is not None
            else None
        )
        if check is not None and not self.emit_rowid:
            # Evaluate the predicate once per base row (a bitmap over the
            # fetched table), then join with comprehensions.
            n = self.table.num_rows
            mask = [check(i) for i in range(n)]
            if len(columns) == 1:
                c0 = columns[0]
                out = [row + (c0[row[ptr]],) for row in rows if mask[row[ptr]]]
            elif len(columns) == 2:
                c0, c1 = columns
                out = [
                    row + (c0[row[ptr]], c1[row[ptr]])
                    for row in rows
                    if mask[row[ptr]]
                ]
            else:
                out = [
                    row + tuple(column[row[ptr]] for column in columns)
                    for row in rows
                    if mask[row[ptr]]
                ]
            ctx.charge(len(out), self._label())
            return out
        # Pointer columns produced by the graph index are total (never NULL),
        # so the common cases vectorize into single comprehensions.
        if check is None and not self.emit_rowid:
            if len(columns) == 1:
                c0 = columns[0]
                out = [row + (c0[row[ptr]],) for row in rows]
            elif len(columns) == 2:
                c0, c1 = columns
                out = [row + (c0[row[ptr]], c1[row[ptr]]) for row in rows]
            else:
                out = [
                    row + tuple(column[row[ptr]] for column in columns)
                    for row in rows
                ]
            ctx.charge(len(out), self._label())
            return out
        out: list[tuple] = []
        for row in rows:
            rowid = row[ptr]
            if rowid is None or rowid < 0:
                continue
            if check is not None and not check(rowid):
                continue
            fetched = tuple(column[rowid] for column in columns)
            if self.emit_rowid:
                out.append(row + fetched + (rowid,))
            else:
                out.append(row + fetched)
        ctx.charge(len(out), self._label())
        return out

    def _label(self) -> str:
        pred = f" ({self.predicate})" if self.predicate is not None else ""
        return (
            f"ROWID_JOIN {self.pointer_column} -> "
            f"{self.table.schema.name} as {self.alias}{pred}"
        )


class CsrJoin(PhysicalOperator):
    """GRainDB-style predefined join along a VE-index (CSR adjacency).

    For each input row, reads ``vertex_rowid_column`` and expands to every
    adjacent edge rowid recorded in the CSR, fetching edge columns (and the
    EV pointer to the far endpoint, so a subsequent :class:`RowIdJoin` can
    complete the hop).

    Args:
        csr_offsets / csr_edges: the CSR arrays — edges for vertex ``v`` are
            ``csr_edges[csr_offsets[v]:csr_offsets[v + 1]]``.
        far_pointer: optional ``(name, values)`` — the EV pointer column of
            the edge table toward the far endpoint, emitted per edge.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        vertex_rowid_column: str,
        csr_offsets: list[int],
        csr_edges: list[int],
        edge_table: Table,
        edge_alias: str,
        projected: list[str] | None = None,
        predicate: Expr | None = None,
        far_pointer: tuple[str, list[int]] | None = None,
    ):
        self.child = child
        self.vertex_rowid_column = vertex_rowid_column
        self.csr_offsets = csr_offsets
        self.csr_edges = csr_edges
        self.edge_table = edge_table
        self.edge_alias = edge_alias
        self.projected = (
            projected if projected is not None else edge_table.schema.column_names
        )
        self.predicate = predicate
        self.far_pointer = far_pointer
        self.output_columns = list(child.output_columns) + [
            f"{edge_alias}.{c}" for c in self.projected
        ]
        if far_pointer is not None:
            self.output_columns.append(far_pointer[0])

    def children(self) -> list[PhysicalOperator]:
        return [self.child]

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        rows = self.child.execute(ctx)
        vid = _resolve(self.child.output_columns, self.vertex_rowid_column)
        columns = [self.edge_table.column(c) for c in self.projected]
        check = (
            rowid_checker(self.edge_table, self.predicate)
            if self.predicate is not None
            else None
        )
        far = self.far_pointer[1] if self.far_pointer is not None else None
        offsets, edges = self.csr_offsets, self.csr_edges
        out: list[tuple] = []
        next_check = 16384
        if check is None and far is not None and len(columns) <= 1:
            # Fast paths for the dominant shapes (edge carries at most one
            # projected column plus the far pointer).
            if columns:
                c0 = columns[0]
                for row in rows:
                    v = row[vid]
                    out.extend(
                        [
                            row + (c0[e], far[e])
                            for e in edges[offsets[v] : offsets[v + 1]]
                        ]
                    )
                    if len(out) >= next_check:
                        ctx.check_size(len(out))
                        next_check = len(out) + 16384
            else:
                for row in rows:
                    v = row[vid]
                    out.extend(
                        [row + (far[e],) for e in edges[offsets[v] : offsets[v + 1]]]
                    )
                    if len(out) >= next_check:
                        ctx.check_size(len(out))
                        next_check = len(out) + 16384
            ctx.charge(len(out), self._label())
            return out
        for row in rows:
            v = row[vid]
            if v is None:
                continue
            for pos in range(offsets[v], offsets[v + 1]):
                e = edges[pos]
                if check is not None and not check(e):
                    continue
                fetched = tuple(column[e] for column in columns)
                if far is not None:
                    out.append(row + fetched + (far[e],))
                else:
                    out.append(row + fetched)
            if len(out) >= next_check:
                ctx.check_size(len(out))
                next_check = len(out) + 16384
        ctx.charge(len(out), self._label())
        return out

    def _label(self) -> str:
        return (
            f"CSR_JOIN {self.vertex_rowid_column} -> "
            f"{self.edge_table.schema.name} as {self.edge_alias}"
        )


class AggregateOp(PhysicalOperator):
    def __init__(
        self,
        child: PhysicalOperator,
        group_by: list[tuple[Expr, str]],
        aggregates: list[AggregateSpec],
    ):
        self.child = child
        self.group_by = group_by
        self.aggregates = aggregates
        self.output_columns = [a for _, a in group_by] + [a.alias for a in aggregates]

    def children(self) -> list[PhysicalOperator]:
        return [self.child]

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        rows = self.child.execute(ctx)
        layout = self.child.layout()
        group_evs = [compile_expr(e, layout) for e, _ in self.group_by]
        agg_evs = [
            compile_expr(a.arg, layout) if a.arg is not None else None
            for a in self.aggregates
        ]
        groups: dict[tuple, list[list[Any]]] = {}
        for row in rows:
            key = tuple(ev(row) for ev in group_evs)
            state = groups.get(key)
            if state is None:
                state = [[] for _ in self.aggregates]
                groups[key] = state
            for values, ev in zip(state, agg_evs):
                values.append(ev(row) if ev is not None else 1)
        if not groups and not self.group_by:
            groups[()] = [[] for _ in self.aggregates]
        out: list[tuple] = []
        for key, state in groups.items():
            aggs = tuple(
                _finalize(spec.func, values)
                for spec, values in zip(self.aggregates, state)
            )
            out.append(key + aggs)
        ctx.charge(len(out), self._label())
        return out

    def _label(self) -> str:
        return "AGGREGATE " + ", ".join(str(a) for a in self.aggregates)


def _finalize(func: str, values: list[Any]) -> Any:
    non_null = [v for v in values if v is not None]
    if func == "COUNT":
        return len(non_null)
    if not non_null:
        return None
    if func == "MIN":
        return min(non_null)
    if func == "MAX":
        return max(non_null)
    if func == "SUM":
        return sum(non_null)
    return sum(non_null) / len(non_null)  # AVG


class SortOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, keys: list[tuple[Expr, bool]]):
        self.child = child
        self.keys = keys
        self.output_columns = list(child.output_columns)

    def children(self) -> list[PhysicalOperator]:
        return [self.child]

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        rows = self.child.execute(ctx)
        layout = self.child.layout()
        # Stable multi-key sort: apply keys from least to most significant.
        for expr, ascending in reversed(self.keys):
            ev = compile_expr(expr, layout)
            rows = sorted(
                rows,
                key=lambda row: _null_safe_key(ev(row)),
                reverse=not ascending,
            )
        ctx.charge(len(rows), self._label())
        return rows

    def _label(self) -> str:
        keys = ", ".join(f"{e} {'ASC' if asc else 'DESC'}" for e, asc in self.keys)
        return f"SORT {keys}"


def _null_safe_key(value: Any) -> tuple:
    return (value is not None, value if value is not None else 0)


class LimitOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, limit: int):
        self.child = child
        self.limit = limit
        self.output_columns = list(child.output_columns)

    def children(self) -> list[PhysicalOperator]:
        return [self.child]

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        rows = self.child.execute(ctx)[: self.limit]
        ctx.charge(len(rows), self._label())
        return rows

    def _label(self) -> str:
        return f"LIMIT {self.limit}"


class DistinctOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator):
        self.child = child
        self.output_columns = list(child.output_columns)

    def children(self) -> list[PhysicalOperator]:
        return [self.child]

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        rows = self.child.execute(ctx)
        seen: set[tuple] = set()
        out: list[tuple] = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        ctx.charge(len(out), self._label())
        return out

    def _label(self) -> str:
        return "DISTINCT"


class MaterializedInput(PhysicalOperator):
    """Wrap precomputed rows as a plan leaf (used by SCAN_GRAPH_TABLE glue)."""

    def __init__(self, columns: list[str], rows: list[tuple], label: str = "MATERIALIZED"):
        self.output_columns = list(columns)
        self.rows = rows
        self.label_text = label

    def execute(self, ctx: ExecutionContext) -> list[tuple]:
        ctx.charge(len(self.rows), self._label())
        return self.rows

    def _label(self) -> str:
        return self.label_text
