"""Row-based physical operators on the batched streaming engine.

All operators implement the shared :class:`repro.exec.Operator` protocol —
``batches(ctx)`` yields chunks of row tuples — so pipelines stream: scans,
filters, projections and join probes keep only one batch in flight, while
genuine pipeline breakers (hash builds, sort/aggregate/distinct state)
acquire :class:`repro.exec.Buffer` handles that the memory budget charges.
Columns are identified by qualified names (``alias.column``).

Besides the classic operators (scan, filter, project, hash join, aggregate,
sort, top-k, limit, distinct) this module implements the two
**predefined-join** operators that GRainDB contributes (Sec 3.2.1 of the
paper):

* :class:`RowIdJoin` — follows an EV-index pointer column (an edge tuple's
  stored rowid of its endpoint tuple) and fetches the vertex row by position,
  skipping hash-table build and probe entirely.
* :class:`CsrJoin` — follows the VE-index (CSR adjacency) from a vertex row's
  rowid to all joinable edge rows.

Scans can emit a hidden ``alias._rowid`` column and EV-index pointer columns
so that downstream predefined joins have something to follow; the planner
decides when to request them.
"""

from __future__ import annotations

import heapq
import itertools
import operator
import threading
from typing import Any, Iterator, Sequence

from repro.errors import PlanError
from repro.exec.context import Buffer, ExecutionContext, close_stream
from repro.exec.kernels import (
    ChunkSizer,
    build_hash_table,
    build_hash_table_columnar,
    chunked,
    emit_batches,
    emit_columnar,
    expand_batches,
    filter_batches,
    filter_columnar,
    grace_hash_join,
    map_batches,
    probe_hash_table,
    probe_hash_table_columnar,
    replicate_columnar,
    rows_to_columnar,
    scalar_key,
    tuple_key,
)
from repro.exec.kernels import csr_expand_filtered
from repro.exec.grouping import (
    GroupedAggregation,
    StreamingDistinct,
    canonical_row,
    make_accumulator,
    sequence_has_nan,
)
from repro.exec.operator import Batch, Operator
from repro.exec.scheduler import fold_source, morsel_bounds, spill_partition_count
from repro.exec.spill import PartitionWriter, spill_hash
from repro.exec.vector import (
    ColumnarBatch,
    gather,
    index_vector,
    is_ndarray,
    take,
    vector_view,
)
from repro.relational.expr import (
    ColumnRef,
    Expr,
    _resolve_layout,
    compile_expr,
    compile_expr_columnar,
    compile_predicate,
    compile_predicate_columnar,
    referenced_columns,
)
from repro.relational.logical import AggregateSpec
from repro.relational.table import Table

ROWID_COLUMN = "_rowid"


def rowid_checker(table: Table, predicate: Expr):
    """Compile ``predicate`` into a rowid -> bool check over ``table``.

    Used by the predefined joins, whose fetched side is addressed by rowid;
    the predicate may reference any base column (qualified or not), not just
    projected ones.
    """
    names = sorted(referenced_columns(predicate))
    arrays = [table.column(n.rsplit(".", 1)[-1]) for n in names]
    layout = {n: i for i, n in enumerate(names)}
    pred = compile_predicate(predicate, layout)
    if len(arrays) == 1:
        only = arrays[0]
        return lambda rowid: pred((only[rowid],))
    return lambda rowid: pred(tuple(a[rowid] for a in arrays))


class PhysicalOperator(Operator):
    """Base class; subclasses set ``output_columns`` in ``__init__``."""

    output_columns: list[str]

    def layout(self) -> dict[str, int]:
        return {name: i for i, name in enumerate(self.output_columns)}


def _column_indices(
    exprs: list[tuple["Expr", str]], columns: Sequence[str]
) -> list[int] | None:
    """Source indices when every projection expression is a plain column
    reference; None when any expression needs real evaluation."""
    from repro.relational.expr import ColumnRef

    indices: list[int] = []
    for expr, _ in exprs:
        if not isinstance(expr, ColumnRef):
            return None
        try:
            indices.append(_resolve(columns, expr.name))
        except PlanError:
            return None
    return indices


def _plain_ref_index(expr: "Expr", columns: Sequence[str]) -> int | None:
    """Index of ``expr`` among ``columns`` when it is a plain column
    reference; None when it is computed or unresolvable (callers then use
    the generic evaluator path)."""
    from repro.relational.expr import ColumnRef

    if not isinstance(expr, ColumnRef):
        return None
    try:
        return _resolve(columns, expr.name)
    except PlanError:
        return None


def _resolve(columns: Sequence[str], name: str) -> int:
    """Index of ``name`` among ``columns``; tolerates unqualified names."""
    try:
        return list(columns).index(name)
    except ValueError:
        pass
    tail_matches = [i for i, c in enumerate(columns) if c.rsplit(".", 1)[-1] == name]
    if len(tail_matches) == 1:
        return tail_matches[0]
    raise PlanError(f"cannot resolve column {name!r} among {list(columns)}")


class SeqScan(PhysicalOperator):
    """Chunked scan of a base table with optional inline filter/projection.

    Args:
        table: the table to scan.
        alias: qualifier for output column names.
        predicate: pushed-down filter over the table's (unqualified or
            alias-qualified) columns.
        projected: unqualified column names to emit; None emits all.
        emit_rowid: additionally emit ``alias._rowid`` (physical position),
            enabling downstream predefined joins.
        pointer_columns: extra ``(name, values)`` pairs appended to the
            output — the EV-index rowid pointer columns of an edge table.

    The scan evaluates its predicate chunk by chunk, so a ``LIMIT`` above
    only pays for the prefix of the table it actually pulls.

    ``row_range`` restricts the scan to a contiguous ``(start, stop)``
    slice of the table — the morsel-driven scheduler clones the scan once
    per morsel.  Rowids, pointer columns and predicates are unaffected
    (they are addressed in the table's global row space).
    """

    #: Optional ``(start, stop)`` morsel bounds; None scans the full table.
    row_range: tuple[int, int] | None = None

    def __init__(
        self,
        table: Table,
        alias: str,
        predicate: Expr | None = None,
        projected: list[str] | None = None,
        emit_rowid: bool = False,
        pointer_columns: list[tuple[str, list[int]]] | None = None,
    ):
        self.table = table
        self.alias = alias
        self.predicate = predicate
        self.projected = (
            projected if projected is not None else table.schema.column_names
        )
        self.emit_rowid = emit_rowid
        self.pointer_columns = pointer_columns or []
        self._pointer_views: dict = {}
        self.output_columns = [f"{alias}.{c}" for c in self.projected]
        if emit_rowid:
            self.output_columns.append(f"{alias}.{ROWID_COLUMN}")
        self.output_columns.extend(name for name, _ in self.pointer_columns)

    def _base_layout(self) -> dict[str, int]:
        """Layout of the full base row (unqualified and alias-qualified)."""
        base_layout: dict[str, int] = {}
        for i, c in enumerate(self.table.schema.column_names):
            base_layout[c] = i
            base_layout[f"{self.alias}.{c}"] = i
        return base_layout

    def _output_column_storage(self, snap) -> list:
        """The output columns as shared base-table storage (zero copy when
        numpy is off; the snapshot's vectorized views otherwise).
        Pointer-column views are memoized per operator so repeated
        executions of one plan never re-copy the EV arrays."""
        from repro.exec.vector import cached_vector

        out: list = [snap.vector(c) for c in self.projected]
        if self.emit_rowid:
            out.append(index_vector(snap.num_rows))
        out.extend(
            cached_vector(self._pointer_views, name, values)
            for name, values in self.pointer_columns
        )
        return out

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._scan_columnar(ctx))

    def _scan_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        """Zero-copy chunked scan: every batch shares the table's column
        lists; only the selection vector (a range, or the surviving rowids
        after the pushed-down filter) is per-chunk state."""
        size = ctx.batch_size
        snap = ctx.pin(self.table)
        n = snap.num_rows
        first, last = morsel_bounds(self.row_range, n)
        out_columns = self._output_column_storage(snap)
        if self.predicate is None:
            for start in range(first, last, size):
                yield ColumnarBatch(
                    out_columns, n, range(start, min(start + size, last))
                )
            return
        selector = compile_predicate_columnar(self.predicate, self._base_layout())
        base_columns = [snap.vector(c) for c in self.table.schema.column_names]
        for start in range(first, last, size):
            chunk = range(start, min(start + size, last))
            # A chunk spanning the whole table evaluates as
            # ``selection=None`` — full-column compares, no index gather.
            sel = selector(base_columns, None if len(chunk) == n else chunk, n)
            if sel is None or len(sel):
                yield ColumnarBatch(out_columns, n, chunk if sel is None else sel)

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._scan(ctx))

    def _scan(self, ctx: ExecutionContext) -> Iterator[Batch]:
        size = ctx.batch_size
        n = ctx.pin(self.table).num_rows
        first, last = morsel_bounds(self.row_range, n)
        columns = [self.table.column(c) for c in self.projected]
        extras: list[list[Any]] = [values for _, values in self.pointer_columns]
        pred = None
        all_columns: list[list[Any]] = []
        if self.predicate is not None:
            # Evaluate the predicate against the full base row, then project;
            # the predicate may reference non-projected columns.
            pred = compile_predicate(self.predicate, self._base_layout())
            all_columns = [
                self.table.column(c) for c in self.table.schema.column_names
            ]
        for start in range(first, last, size):
            stop = min(start + size, last)
            if pred is None:
                # Assemble column-at-a-time, then zip into rows at C speed.
                parts: list = [c[start:stop] for c in columns]
                if self.emit_rowid:
                    parts.append(range(start, stop))
                parts.extend(e[start:stop] for e in extras)
                yield list(zip(*parts)) if parts else [()] * (stop - start)
                continue
            rows = zip(*(c[start:stop] for c in all_columns))
            rowids = [start + i for i, row in enumerate(rows) if pred(row)]
            if not rowids:
                continue
            parts = [[c[i] for i in rowids] for c in columns]
            if self.emit_rowid:
                parts.append(rowids)
            parts.extend([e[i] for i in rowids] for e in extras)
            yield list(zip(*parts)) if parts else [()] * len(rowids)

    def _label(self) -> str:
        pred = f" ({self.predicate})" if self.predicate is not None else ""
        return f"SCAN_TABLE {self.table.schema.name} as {self.alias}{pred}"


class FilterOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, predicate: Expr):
        self.child = child
        self.predicate = predicate
        self.output_columns = list(child.output_columns)

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        pred = compile_predicate(self.predicate, self.child.layout())
        return emit_batches(
            ctx, self._label(), filter_batches(self.child.batches(ctx), pred)
        )

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        # Selection-vector refinement: no rows move, no closures per row.
        selector = compile_predicate_columnar(self.predicate, self.child.layout())
        return emit_columnar(
            ctx,
            self._label(),
            filter_columnar(self.child.columnar_batches(ctx), selector),
        )

    def _label(self) -> str:
        return f"SELECTION ({self.predicate})"


class ProjectOp(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, exprs: list[tuple[Expr, str]]):
        self.child = child
        self.exprs = exprs
        self.output_columns = [alias for _, alias in exprs]

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        layout = self.child.layout()
        indices = _column_indices(self.exprs, self.child.output_columns)
        if indices is not None:
            # Rename-only projection: gather via a C-level itemgetter.
            if len(indices) == 1:
                i0 = indices[0]
                transform = lambda batch: [(row[i0],) for row in batch]  # noqa: E731
            else:
                getter = operator.itemgetter(*indices)
                transform = lambda batch: list(map(getter, batch))  # noqa: E731
        else:
            evaluators = [compile_expr(e, layout) for e, _ in self.exprs]
            transform = lambda batch: [  # noqa: E731
                tuple(ev(row) for ev in evaluators) for row in batch
            ]
        return emit_batches(
            ctx, self._label(), map_batches(self.child.batches(ctx), transform)
        )

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._project_columnar(ctx))

    def _project_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        layout = self.child.layout()
        indices = _column_indices(self.exprs, self.child.output_columns)
        source = self.child.columnar_batches(ctx)
        if indices is not None:
            # Rename-only projection: reorder shared column references and
            # keep the selection vector — a true zero-copy gather.
            for cb in source:
                yield ColumnarBatch(
                    [cb.columns[i] for i in indices], cb.length, cb.selection
                )
            return
        evaluators = [compile_expr_columnar(e, layout) for e, _ in self.exprs]
        for cb in source:
            columns = [ev(cb.columns, cb.selection, cb.length) for ev in evaluators]
            yield ColumnarBatch(columns, len(cb), None)

    def _label(self) -> str:
        return "PROJECTION " + ", ".join(a for _, a in self.exprs)


class HashJoin(PhysicalOperator):
    """Inner equi-join: build a hash table on the right, probe with the left.

    The build side is the only buffered state (charged against the memory
    budget); probe output streams in re-chunked batches.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: list[str],
        right_keys: list[str],
        residual: Expr | None = None,
    ):
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("hash join needs matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.output_columns = list(left.output_columns) + list(right.output_columns)

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def _key_indices(self) -> tuple[list[int], list[int]]:
        l_idx = [_resolve(self.left.output_columns, k) for k in self.left_keys]
        r_idx = [_resolve(self.right.output_columns, k) for k in self.right_keys]
        return l_idx, r_idx

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        l_idx, r_idx = self._key_indices()
        if len(r_idx) == 1:
            build_key, probe_key = scalar_key(r_idx[0]), scalar_key(l_idx[0])
        else:
            build_key, probe_key = tuple_key(r_idx), tuple_key(l_idx)
        buffer = ctx.buffer(f"{self._label()} build")
        try:
            if ctx.spill_limit() is not None:
                probe = grace_hash_join(
                    self.right.batches(ctx),
                    self.left.batches(ctx),
                    build_key,
                    probe_key,
                    buffer,
                    ctx,
                    self._label(),
                )
            else:
                table = build_hash_table(
                    self.right.batches(ctx), build_key, buffer
                )
                probe = probe_hash_table(
                    self.left.batches(ctx), table, probe_key, ctx.batch_size
                )
            if self.residual is None:
                yield from probe
                return
            pred = compile_predicate(self.residual, self.layout())
            yield from filter_batches(probe, pred)
        finally:
            buffer.release()

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        l_idx, r_idx = self._key_indices()
        if ctx.spill_limit() is not None:
            # Out-of-core joins run the grace kernel through the row
            # boundary (build values are picklable row tuples either way);
            # the exchange's merged row stream serves parallel builds, so
            # partitions spill once, not per worker shard.
            stream = self._stream(ctx)
            try:
                yield from rows_to_columnar(stream)
            finally:
                close_stream(stream)
            return
        buffer = ctx.buffer(f"{self._label()} build")
        try:
            table = self._build_columnar(ctx, r_idx, buffer)
            probe = probe_hash_table_columnar(
                self.left.columnar_batches(ctx), table, l_idx, ctx
            )
            if self.residual is None:
                yield from probe
                return
            pred = compile_predicate_columnar(self.residual, self.layout())
            yield from filter_columnar(probe, pred)
        finally:
            buffer.release()

    def _build_columnar(self, ctx: ExecutionContext, r_idx, buffer):
        """Drain the build side into the hash table.

        When the build child is a morsel exchange under a parallel context,
        each worker builds a private shard from its morsels and the shards
        merge in morsel order — bucket lists end up in global row order, so
        probe output is identical to a serial build.  Every worker charges
        the same shared (lock-protected) buffer: shards are disjoint, so
        the cumulative charge — and the OOM trip point — matches serial
        execution exactly.
        """
        exchange = fold_source(self.right, ctx)
        if exchange is None:
            return build_hash_table_columnar(
                self.right.columnar_batches(ctx), r_idx, buffer
            )
        shards = exchange.fold(
            ctx,
            "columnar_batches",
            lambda i, stream: build_hash_table_columnar(stream, r_idx, buffer),
        )
        table = shards[0]
        for shard in shards[1:]:
            for key, bucket in shard.items():
                existing = table.get(key)
                if existing is None:
                    table[key] = bucket
                else:
                    existing.extend(bucket)
        return table

    def _label(self) -> str:
        keys = ", ".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))
        return f"HASH_JOIN ({keys})"


class NestedLoopJoin(PhysicalOperator):
    """Fallback join for non-equi (or absent) conditions.

    Buffers the right side (charged), streams the left.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: Expr | None,
    ):
        self.left = left
        self.right = right
        self.condition = condition
        self.output_columns = list(left.output_columns) + list(right.output_columns)

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        buffer = ctx.buffer(f"{self._label()} build")
        build_src = None
        try:
            right_rows: list[tuple] = []
            build_src = self.right.batches(ctx)
            for batch in build_src:
                right_rows.extend(batch)
                buffer.grow(len(batch))
            if self.condition is not None:
                pred = compile_predicate(self.condition, self.layout())

                def expand(lrow: tuple, out: list) -> None:
                    out.extend(
                        [lrow + rrow for rrow in right_rows if pred(lrow + rrow)]
                    )

            else:

                def expand(lrow: tuple, out: list) -> None:
                    out.extend([lrow + rrow for rrow in right_rows])

            yield from expand_batches(self.left.batches(ctx), expand, ctx)
        finally:
            # A budget trip mid-build pins this frame in the traceback; the
            # explicit close unwinds the suspended build stream now.
            close_stream(build_src)
            buffer.release()

    def _label(self) -> str:
        return f"NL_JOIN ({self.condition})"


class RowIdJoin(PhysicalOperator):
    """GRainDB-style predefined join along an EV-index pointer column.

    For each input row, reads the pointer column (a rowid into ``table``) and
    fetches that row directly — no hash table, no buffered state.  A
    NULL/-1 pointer drops the row (inner-join semantics over a total mapping
    never produces these, but defensive plans may).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        pointer_column: str,
        table: Table,
        alias: str,
        projected: list[str] | None = None,
        predicate: Expr | None = None,
        emit_rowid: bool = False,
    ):
        self.child = child
        self.pointer_column = pointer_column
        self.table = table
        self.alias = alias
        self.projected = (
            projected if projected is not None else table.schema.column_names
        )
        self.predicate = predicate
        self.emit_rowid = emit_rowid
        self.output_columns = list(child.output_columns) + [
            f"{alias}.{c}" for c in self.projected
        ]
        if emit_rowid:
            self.output_columns.append(f"{alias}.{ROWID_COLUMN}")

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        """Columnar pointer-follow: the pointer column is extracted once per
        batch and the fetched columns are whole-column gathers through it —
        native ndarray fancy-indexing when the table exposes vector views."""
        ptr = _resolve(self.child.output_columns, self.pointer_column)
        snap = ctx.pin(self.table)
        columns = [snap.vector(c) for c in self.projected]
        check = (
            rowid_checker(self.table, self.predicate)
            if self.predicate is not None
            else None
        )
        for cb in self.child.columnar_batches(ctx):
            pointers = cb.column_vector(ptr)
            if check is None and is_ndarray(pointers):
                # Typed pointer columns hold no NULLs; negatives are the
                # defensive no-match encoding.
                mask = pointers >= 0
                if not mask.all():
                    keep = mask.nonzero()[0]
                    if not len(keep):
                        continue
                    cb = cb.take(keep)
                    pointers = pointers[keep]
            else:
                # as_values-style normalization: ndarray pointers must
                # become Python ints here, because this branch's output
                # (including the emit_rowid column) is built from plist.
                if type(pointers) is list:
                    plist = pointers
                elif hasattr(pointers, "tolist"):
                    plist = pointers.tolist()
                else:
                    plist = list(pointers)
                if check is None:
                    keep = None
                    if any(p is None or p < 0 for p in plist):
                        keep = [
                            j for j, p in enumerate(plist) if p is not None and p >= 0
                        ]
                else:
                    keep = [
                        j
                        for j, p in enumerate(plist)
                        if p is not None and p >= 0 and check(p)
                    ]
                if keep is not None:
                    if not keep:
                        continue
                    cb = cb.take(keep)
                    plist = [plist[j] for j in keep]
                pointers = plist
            fetched = [take(column, pointers) for column in columns]
            if self.emit_rowid:
                fetched.append(pointers)
            out = [cb.column_vector(i) for i in range(cb.width)]
            out.extend(fetched)
            yield ColumnarBatch(out, len(pointers), None)

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        ptr = _resolve(self.child.output_columns, self.pointer_column)
        columns = [self.table.column(c) for c in self.projected]
        check = (
            rowid_checker(self.table, self.predicate)
            if self.predicate is not None
            else None
        )
        source = self.child.batches(ctx)
        if check is not None and not self.emit_rowid:
            # Evaluate the predicate once per base row (a bitmap over the
            # fetched table), then join with per-batch comprehensions.
            n = ctx.pin(self.table).num_rows
            mask = [check(i) for i in range(n)]
            if len(columns) == 1:
                c0 = columns[0]
                transform = lambda batch: [  # noqa: E731
                    row + (c0[row[ptr]],) for row in batch if mask[row[ptr]]
                ]
            elif len(columns) == 2:
                c0, c1 = columns
                transform = lambda batch: [  # noqa: E731
                    row + (c0[row[ptr]], c1[row[ptr]])
                    for row in batch
                    if mask[row[ptr]]
                ]
            else:
                transform = lambda batch: [  # noqa: E731
                    row + tuple(column[row[ptr]] for column in columns)
                    for row in batch
                    if mask[row[ptr]]
                ]
            yield from map_batches(source, transform)
            return
        # Pointer columns produced by the graph index are total (never NULL),
        # so the common cases vectorize into single comprehensions.
        if check is None and not self.emit_rowid:
            if len(columns) == 1:
                c0 = columns[0]
                transform = lambda batch: [  # noqa: E731
                    row + (c0[row[ptr]],) for row in batch
                ]
            elif len(columns) == 2:
                c0, c1 = columns
                transform = lambda batch: [  # noqa: E731
                    row + (c0[row[ptr]], c1[row[ptr]]) for row in batch
                ]
            else:
                transform = lambda batch: [  # noqa: E731
                    row + tuple(column[row[ptr]] for column in columns)
                    for row in batch
                ]
            yield from map_batches(source, transform)
            return
        for batch in source:
            out: list[tuple] = []
            for row in batch:
                rowid = row[ptr]
                if rowid is None or rowid < 0:
                    continue
                if check is not None and not check(rowid):
                    continue
                fetched = tuple(column[rowid] for column in columns)
                if self.emit_rowid:
                    out.append(row + fetched + (rowid,))
                else:
                    out.append(row + fetched)
            if out:
                yield out

    def _label(self) -> str:
        pred = f" ({self.predicate})" if self.predicate is not None else ""
        return (
            f"ROWID_JOIN {self.pointer_column} -> "
            f"{self.table.schema.name} as {self.alias}{pred}"
        )


class CsrJoin(PhysicalOperator):
    """GRainDB-style predefined join along a VE-index (CSR adjacency).

    For each input row, reads ``vertex_rowid_column`` and expands to every
    adjacent edge rowid recorded in the CSR, fetching edge columns (and the
    EV pointer to the far endpoint, so a subsequent :class:`RowIdJoin` can
    complete the hop).  Expansion output streams in bounded chunks.

    Args:
        csr_offsets / csr_edges: the CSR arrays — edges for vertex ``v`` are
            ``csr_edges[csr_offsets[v]:csr_offsets[v + 1]]``.
        far_pointer: optional ``(name, values)`` — the EV pointer column of
            the edge table toward the far endpoint, emitted per edge.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        vertex_rowid_column: str,
        csr_offsets: list[int],
        csr_edges: list[int],
        edge_table: Table,
        edge_alias: str,
        projected: list[str] | None = None,
        predicate: Expr | None = None,
        far_pointer: tuple[str, list[int]] | None = None,
    ):
        self.child = child
        self.vertex_rowid_column = vertex_rowid_column
        self.csr_offsets = csr_offsets
        self.csr_edges = csr_edges
        self.edge_table = edge_table
        self.edge_alias = edge_alias
        self.projected = (
            projected if projected is not None else edge_table.schema.column_names
        )
        self.predicate = predicate
        self.far_pointer = far_pointer
        self.output_columns = list(child.output_columns) + [
            f"{edge_alias}.{c}" for c in self.projected
        ]
        if far_pointer is not None:
            self.output_columns.append(far_pointer[0])

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        if self.predicate is not None:
            # Predicated CSR joins drop to the row protocol (rare plans).
            return Operator.columnar_batches(self, ctx)
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        """Columnar CSR expansion: accumulate a parent-position vector and
        the adjacent edge rowids, then assemble output batches as gathers —
        no per-edge row tuples.  With numpy, the whole batch expands as one
        repeat/cumsum/fancy-index pass over the typed CSR arrays.  Flush
        thresholds adapt to observed fan-out."""
        vid = _resolve(self.child.output_columns, self.vertex_rowid_column)
        snap = ctx.pin(self.edge_table)
        columns = [snap.vector(c) for c in self.projected]
        far = (
            vector_view(self.far_pointer[1]) if self.far_pointer is not None else None
        )
        offsets = vector_view(self.csr_offsets)
        edges = vector_view(self.csr_edges)
        np_ready = is_ndarray(offsets) and is_ndarray(edges)
        sizer = ChunkSizer(ctx)

        def assemble(cb: ColumnarBatch, parents, edge_ids) -> ColumnarBatch:
            new_columns = [take(c, edge_ids) for c in columns]
            if far is not None:
                new_columns.append(take(far, edge_ids))
            return replicate_columnar(cb, parents, new_columns)

        for cb in self.child.columnar_batches(ctx):
            vertices = cb.column_vector(vid)
            if np_ready and is_ndarray(vertices):
                # Vertex rowid columns in the array domain cannot hold
                # NULLs, so the batch expands wholesale; output chunks stay
                # at the full batch size (column-backed chunks are cheap —
                # see _expand_columnar in repro.graph.physical).
                expanded = csr_expand_filtered(vertices, offsets, edges)
                if expanded is None:
                    continue
                parents, edge_ids = expanded
                total = len(parents)
                size = ctx.batch_size
                for start in range(0, total, size):
                    stop = min(start + size, total)
                    yield assemble(cb, parents[start:stop], edge_ids[start:stop])
                continue
            parents_l: list[int] = []
            edge_ids_l: list[int] = []
            flushed = 0
            for j, v in enumerate(vertices):
                if v is None:
                    continue
                lo, hi = offsets[v], offsets[v + 1]
                if lo == hi:
                    continue
                parents_l.extend([j] * (hi - lo))
                edge_ids_l.extend(edges[lo:hi])
                if len(parents_l) >= sizer.size:
                    flushed += len(parents_l)
                    yield assemble(cb, parents_l, edge_ids_l)
                    parents_l, edge_ids_l = [], []
            sizer.observe(len(vertices), flushed + len(parents_l))
            if parents_l:
                yield assemble(cb, parents_l, edge_ids_l)

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        vid = _resolve(self.child.output_columns, self.vertex_rowid_column)
        columns = [self.edge_table.column(c) for c in self.projected]
        check = (
            rowid_checker(self.edge_table, self.predicate)
            if self.predicate is not None
            else None
        )
        far = self.far_pointer[1] if self.far_pointer is not None else None
        offsets, edges = self.csr_offsets, self.csr_edges
        sizer = ChunkSizer(ctx)
        out: list[tuple] = []
        if check is None and far is not None and len(columns) <= 2:
            # Fast paths for the dominant shapes (edge carries at most its
            # two FK columns plus the far pointer); inline comprehensions —
            # this is the predefined-join hot path.  Flushing follows the
            # fan-out-adaptive contract of expand_batches.
            if len(columns) == 2:
                ca, cb = columns
                for batch in self.child.batches(ctx):
                    carry, flushed = len(out), 0
                    for row in batch:
                        v = row[vid]
                        if v is None:  # this shape used the guarded slow path
                            continue
                        out.extend(
                            [
                                row + (ca[e], cb[e], far[e])
                                for e in edges[offsets[v] : offsets[v + 1]]
                            ]
                        )
                        if len(out) >= sizer.size:
                            flushed += len(out)
                            yield out
                            out = []
                    sizer.observe(len(batch), flushed + len(out) - carry)
            elif columns:
                c0 = columns[0]
                for batch in self.child.batches(ctx):
                    carry, flushed = len(out), 0
                    for row in batch:
                        v = row[vid]
                        out.extend(
                            [
                                row + (c0[e], far[e])
                                for e in edges[offsets[v] : offsets[v + 1]]
                            ]
                        )
                        if len(out) >= sizer.size:
                            flushed += len(out)
                            yield out
                            out = []
                    sizer.observe(len(batch), flushed + len(out) - carry)
            else:
                for batch in self.child.batches(ctx):
                    carry, flushed = len(out), 0
                    for row in batch:
                        v = row[vid]
                        out.extend(
                            [
                                row + (far[e],)
                                for e in edges[offsets[v] : offsets[v + 1]]
                            ]
                        )
                        if len(out) >= sizer.size:
                            flushed += len(out)
                            yield out
                            out = []
                    sizer.observe(len(batch), flushed + len(out) - carry)
            if out:
                yield out
            return
        for batch in self.child.batches(ctx):
            carry, flushed = len(out), 0
            for row in batch:
                v = row[vid]
                if v is None:
                    continue
                for pos in range(offsets[v], offsets[v + 1]):
                    e = edges[pos]
                    if check is not None and not check(e):
                        continue
                    fetched = tuple(column[e] for column in columns)
                    if far is not None:
                        out.append(row + fetched + (far[e],))
                    else:
                        out.append(row + fetched)
                if len(out) >= sizer.size:
                    flushed += len(out)
                    yield out
                    out = []
            sizer.observe(len(batch), flushed + len(out) - carry)
        if out:
            yield out

    def _label(self) -> str:
        return (
            f"CSR_JOIN {self.vertex_rowid_column} -> "
            f"{self.edge_table.schema.name} as {self.edge_alias}"
        )


class _AggSpiller:
    """Hash-partitioned spill routing for out-of-core aggregation.

    Exported :class:`GroupedAggregation` states append as per-partition
    state frames to lazily created spill files (creation is locked so
    parallel fold workers routing to the same partition share one file —
    the frames themselves append under the file's own lock).  Drain
    re-absorbs one partition at a time: every frame of a group key lands
    in the same partition, so a partition's merged engine holds that key's
    complete aggregate.
    """

    __slots__ = ("_ctx", "_label", "num_keys", "funcs", "_parts", "_lock", "files")

    def __init__(self, ctx: ExecutionContext, label: str, num_keys: int, funcs):
        self._ctx = ctx
        self._label = label
        self.num_keys = num_keys
        self.funcs = funcs
        self._parts = spill_partition_count(ctx.parallelism)
        self._lock = threading.Lock()
        self.files: dict[int, Any] = {}

    def _file(self, p: int):
        with self._lock:
            f = self.files.get(p)
            if f is None:
                f = self.files[p] = self._ctx.spill.create_file(
                    f"{self._label} p{p}"
                )
            return f

    def export(self, engine: GroupedAggregation, charged: Buffer) -> None:
        """Move the engine's whole state out to its partitions' files and
        give the ``charged`` buffer the rows back."""
        keys, cells = engine.export_and_reset()
        if not keys:
            return
        parts: dict[int, list[int]] = {}
        P = self._parts
        for g, key in enumerate(keys):
            parts.setdefault(spill_hash(key) % P, []).append(g)
        for p in sorted(parts):
            gids = parts[p]
            self._file(p).append_state(
                [keys[g] for g in gids],
                [[col[g] for g in gids] for col in cells],
            )
        charged.shrink(len(keys))

    def export_groups(self, groups: dict, charged: Buffer) -> None:
        """Row-path export: a ``key tuple -> cells`` dict, re-keyed to the
        engine's frame format (bare values for single-key states)."""
        if not groups:
            return
        single = self.num_keys == 1
        parts: dict[int, tuple[list, list[list]]] = {}
        P = self._parts
        for key, cells in groups.items():
            ek = key[0] if single else key
            p = spill_hash(ek) % P
            entry = parts.get(p)
            if entry is None:
                entry = parts[p] = ([], [[] for _ in self.funcs])
            entry[0].append(ek)
            for i, cell in enumerate(cells):
                entry[1][i].append(cell)
        for p in sorted(parts):
            keys, cells = parts[p]
            self._file(p).append_state(keys, cells)
        charged.shrink(len(groups))
        groups.clear()

    def drain(self, charged: Buffer):
        """Yield one re-merged engine per partition.

        Each engine's groups are charged to ``charged`` while resident;
        the caller shrinks after emitting them.  Files are deleted as
        their partition completes.
        """
        for p in sorted(self.files):
            f = self.files[p]
            engine = GroupedAggregation(self.num_keys, self.funcs)
            for keys, cells in f.read_states():
                before = engine.num_groups
                engine.absorb(keys, cells)
                charged.grow(engine.num_groups - before)
            f.delete()
            yield engine


class AggregateOp(PhysicalOperator):
    """Hash aggregation with O(1) running state per (group, aggregate).

    The buffered state — one cell list per group — is charged per new
    group, so only genuinely wide aggregations trip the memory budget.

    The columnar path runs the factorize + segment-reduction engine of
    :mod:`repro.exec.grouping` (group keys factorized to dense codes,
    COUNT/SUM/AVG/MIN/MAX as NULL-aware segment reductions); the row path
    is the per-row reference it must agree with.  Both canonicalize NaN
    keys so all NaN rows fall into one group (SQL grouping semantics).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_by: list[tuple[Expr, str]],
        aggregates: list[AggregateSpec],
    ):
        self.child = child
        self.group_by = group_by
        self.aggregates = aggregates
        self.output_columns = [a for _, a in group_by] + [a.alias for a in aggregates]

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _column_getters(self, exprs: list["Expr | None"]):
        """Per-expression batch-column extractors.

        Plain column references read :meth:`ColumnarBatch.column_vector`
        directly so ndarray columns stay in the array domain (the factorize
        / segment-reduction fast paths); computed expressions evaluate to
        dense lists; None (COUNT(*)) passes through.
        """
        layout = self.child.layout()
        getters = []
        for expr in exprs:
            if expr is None:
                getters.append(None)
                continue
            idx = _plain_ref_index(expr, self.child.output_columns)
            if idx is not None:
                getters.append(
                    lambda cb, idx=idx: cb.column_vector(idx)
                )
            else:
                ev = compile_expr_columnar(expr, layout)
                getters.append(
                    lambda cb, ev=ev: ev(cb.columns, cb.selection, cb.length)
                )
        return getters

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        """Columnar aggregation through the grouping engine: per batch, key
        columns factorize to dense group codes and every aggregate runs as
        a segment reduction, so Python-level work scales with the batch's
        distinct keys.  Output is emitted column-major straight from the
        engine's grouped state — no row-tuple transpose.

        Over a morsel exchange under a parallel context, each worker folds
        its morsels into a private :class:`GroupedAggregation` and the
        partials merge in morsel order (the merge cells are associative;
        see :meth:`GroupedAggregation.merge_from`).  Per-worker partials
        charge untracked buffers — each is a subset of the merged state,
        which this (tracked) buffer charges in full, exactly like serial
        execution.
        """
        key_getters = self._column_getters([e for e, _ in self.group_by])
        arg_getters = self._column_getters([a.arg for a in self.aggregates])
        funcs = [a.func for a in self.aggregates]
        label = self._label()
        limit = ctx.spill_limit()
        spiller = (
            _AggSpiller(ctx, label, len(key_getters), funcs)
            if limit is not None
            else None
        )

        def consume(engine: GroupedAggregation, stream, partial: Buffer) -> None:
            for cb in stream:
                n = len(cb)
                key_cols = [get(cb) for get in key_getters]
                arg_cols = [
                    get(cb) if get is not None else None for get in arg_getters
                ]
                before = engine.num_groups
                # A batch can open at most n new groups: export the state
                # to its spill partitions *before* the query's tracked
                # working set could pass the limit.
                if spiller is not None and before and ctx.buffered_rows + n > limit:
                    spiller.export(engine, partial)
                    before = 0
                engine.consume(key_cols, arg_cols, n)
                partial.grow(engine.num_groups - before)

        buffer = ctx.buffer(label)
        source = None
        try:
            exchange = fold_source(self.child, ctx)
            if exchange is None:
                engine = GroupedAggregation(len(key_getters), funcs)
                source = self.child.columnar_batches(ctx)
                consume(engine, source, buffer)
            else:

                def run(i: int, stream) -> GroupedAggregation:
                    partial = ctx.buffer(f"{label} partial", tracked=False)
                    state = GroupedAggregation(len(key_getters), funcs)
                    try:
                        consume(state, stream, partial)
                    finally:
                        partial.release()
                    return state

                engine = GroupedAggregation(len(key_getters), funcs)
                for state in exchange.fold(ctx, "columnar_batches", run):
                    if (
                        spiller is not None
                        and engine.num_groups
                        and ctx.buffered_rows + state.num_groups > limit
                    ):
                        spiller.export(engine, buffer)
                    before = engine.num_groups
                    engine.merge_from(state)
                    buffer.grow(engine.num_groups - before)
            if spiller is not None and spiller.files:
                # Something spilled: push the resident remainder out too and
                # drain partition by partition (each re-absorbed state is
                # charged while resident, then shrunk as it emits).
                spiller.export(engine, buffer)
                size = ctx.batch_size
                for part_engine in spiller.drain(buffer):
                    columns = part_engine.result_columns()
                    total = part_engine.num_groups
                    for start in range(0, total, size):
                        yield ColumnarBatch(
                            columns, total, range(start, min(start + size, total))
                        )
                    buffer.shrink(total)
                return
            engine.ensure_group()
            columns = engine.result_columns()
            total = engine.num_groups
            size = ctx.batch_size
            for start in range(0, total, size):
                yield ColumnarBatch(
                    columns, total, range(start, min(start + size, total))
                )
        finally:
            close_stream(source)
            buffer.release()

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        layout = self.child.layout()
        group_evs = [compile_expr(e, layout) for e, _ in self.group_by]
        agg_evs = [
            compile_expr(a.arg, layout) if a.arg is not None else None
            for a in self.aggregates
        ]
        accumulators = [make_accumulator(a.func) for a in self.aggregates]
        initials = [init for init, _, _ in accumulators]
        updates = [update for _, update, _ in accumulators]
        finals = [final for _, _, final in accumulators]
        buffer = ctx.buffer(self._label())
        source = self.child.batches(ctx)
        limit = ctx.spill_limit()
        spiller = (
            _AggSpiller(
                ctx, self._label(), len(self.group_by),
                [a.func for a in self.aggregates],
            )
            if limit is not None
            else None
        )
        try:
            groups: dict[tuple, list[Any]] = {}
            for batch in source:
                for row in batch:
                    # canonical_row folds every NaN key into one group —
                    # without it each NaN row would open its own group
                    # (dict identity), contradicting SQL semantics.
                    key = canonical_row(tuple(ev(row) for ev in group_evs))
                    cells = groups.get(key)
                    if cells is None:
                        if spiller is not None and groups and ctx.buffered_rows >= limit:
                            spiller.export_groups(groups, buffer)
                        cells = list(initials)
                        groups[key] = cells
                        buffer.grow(1)
                    for i, ev in enumerate(agg_evs):
                        cells[i] = updates[i](
                            cells[i], ev(row) if ev is not None else 1
                        )
            if spiller is not None and spiller.files:
                spiller.export_groups(groups, buffer)
                size = ctx.batch_size
                for engine in spiller.drain(buffer):
                    out = list(zip(*engine.result_columns()))
                    yield from chunked(out, size)
                    buffer.shrink(engine.num_groups)
                return
            if not groups and not self.group_by:
                groups[()] = list(initials)
            out = [
                key + tuple(final(cell) for final, cell in zip(finals, cells))
                for key, cells in groups.items()
            ]
            yield from chunked(out, ctx.batch_size)
        finally:
            close_stream(source)
            buffer.release()

    def _label(self) -> str:
        return "AGGREGATE " + ", ".join(str(a) for a in self.aggregates)


class _DictKeyAccumulator:
    """Sort-key accumulator that stays in the dictionary code domain.

    For a bare-column ORDER BY key over a dictionary-encoded vector, the
    naive evaluator decodes every row to a string and the sort compares
    strings.  This accumulator instead collects the raw int codes per
    batch, and at sort time sorts the *dictionary* once (W values, not N
    rows) into a rank table — the per-row sort keys become dense ints.

    The accumulator is opportunistic: the moment a batch arrives whose
    vector is not dictionary-encoded (or carries a different dictionary —
    possible after a union of sources), :meth:`demote` decodes what was
    collected and the key falls back to the string evaluator.  The spill
    path demotes unconditionally, keeping the external sort's decorated
    keys (and its on-disk runs) in the value domain.
    """

    __slots__ = ("chunks", "values")

    def __init__(self) -> None:
        self.chunks: list = []  # int code arrays, one per batch
        self.values: list | None = None  # the shared dictionary

    def add(self, batch: "ColumnarBatch", idx: int) -> bool:
        """Collect this batch's codes; False demands demotion."""
        from repro.exec.vector import dict_vector, take

        dv = dict_vector(batch.columns[idx])
        if dv is None:
            return False
        if self.values is None:
            self.values = dv.values
        elif dv.values is not self.values:
            return False
        if batch.selection is not None:
            dv = take(dv, batch.selection)
        elif len(dv) > batch.length:
            dv = dv[: batch.length]
        self.chunks.append(dv.codes)
        return True

    def decoded(self) -> list:
        """The accumulated keys as plain values (the fallback domain)."""
        values = self.values
        out: list = []
        for codes in self.chunks:
            out.extend(values[c] for c in codes.tolist())
        return out

    def ranked(self) -> list:
        """The accumulated keys as order-preserving dictionary ranks.

        Sorting the W-entry dictionary once gives ``rank[code]`` such that
        rank order == null-safe value order (dictionary values are unique,
        so ranks are collision-free); rows then sort by int comparisons.
        """
        values = self.values or []
        order = sorted(range(len(values)), key=lambda c: _null_safe_key(values[c]))
        rank = [0] * len(values)
        for r, c in enumerate(order):
            rank[c] = r
        out: list = []
        for codes in self.chunks:
            out.extend(rank[c] for c in codes.tolist())
        return out


class SortOp(PhysicalOperator):
    """Full sort — a pipeline breaker whose buffer is charged as it fills."""

    def __init__(self, child: PhysicalOperator, keys: list[tuple[Expr, bool]]):
        self.child = child
        self.keys = keys
        self.output_columns = list(child.output_columns)

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        # A sort is a full pipeline breaker either way; the columnar value
        # is upstream (the buffered input arrives through vectorized
        # operators) plus key columns computed without per-row closures.
        buffer = ctx.buffer(self._label())
        source = self.child.columnar_batches(ctx)
        try:
            layout = self.child.layout()
            evs = [compile_expr_columnar(e, layout) for e, _ in self.keys]
            limit = ctx.spill_limit()
            rows: list[tuple] = []
            key_parts: list[list] = [[] for _ in self.keys]
            # Bare-column keys may stay in the dictionary code domain:
            # per-key accumulators collect raw codes, translated to ranks
            # once at sort time (dictionary sorted once, not N rows).
            dict_accs: list[_DictKeyAccumulator | None] = []
            dict_idx: list[int] = []
            for expr, _ in self.keys:
                if isinstance(expr, ColumnRef):
                    dict_accs.append(_DictKeyAccumulator())
                    dict_idx.append(_resolve_layout(expr.name, layout))
                else:
                    dict_accs.append(None)
                    dict_idx.append(-1)

            def demote(k: int) -> None:
                acc = dict_accs[k]
                assert acc is not None
                dict_accs[k] = None
                key_parts[k] = acc.decoded()

            for cb in source:
                if limit is not None and ctx.buffered_rows + cb.length > limit:
                    # External sort works in the value domain: decode any
                    # code-domain accumulators before seeding it.
                    for k, acc in enumerate(dict_accs):
                        if acc is not None:
                            demote(k)
                    # Past the working-set cliff: hand everything buffered
                    # so far (plus the rest of the input) to the external
                    # merge sort.  Until this point the armed path is the
                    # disarmed path, so armed-but-under-limit costs only
                    # this comparison per batch.
                    def keyed(first=cb):
                        if rows:
                            yield list(zip(zip(*key_parts), rows))
                        for later in itertools.chain((first,), source):
                            parts = [
                                ev(later.columns, later.selection, later.length)
                                for ev in evs
                            ]
                            yield list(zip(zip(*parts), later.to_rows()))

                    buffer.shrink(len(rows))  # the external sort re-charges
                    for chunk in self._external_sort(ctx, buffer, keyed()):
                        yield ColumnarBatch.from_rows(chunk)
                    return
                batch_rows = cb.to_rows()
                rows.extend(batch_rows)
                buffer.grow(len(batch_rows))
                for k, ev in enumerate(evs):
                    acc = dict_accs[k]
                    if acc is not None:
                        if acc.add(cb, dict_idx[k]):
                            continue
                        # Not (or no longer) dictionary-encoded: decode
                        # what was accumulated and fall back for good.
                        demote(k)
                    key_parts[k].extend(ev(cb.columns, cb.selection, cb.length))
            for k, acc in enumerate(dict_accs):
                if acc is not None:
                    key_parts[k] = acc.ranked()
            order = list(range(len(rows)))
            for (_, ascending), part in reversed(list(zip(self.keys, key_parts))):
                order.sort(
                    key=lambda i: _null_safe_key(part[i]),
                    reverse=not ascending,
                )
            ordered = [rows[i] for i in order]
            for chunk in chunked(ordered, ctx.batch_size):
                yield ColumnarBatch.from_rows(chunk)
        finally:
            close_stream(source)
            buffer.release()

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        buffer = ctx.buffer(self._label())
        source = self.child.batches(ctx)
        try:
            layout = self.child.layout()
            limit = ctx.spill_limit()
            rows: list[tuple] = []
            for batch in source:
                if limit is not None and ctx.buffered_rows + len(batch) > limit:
                    # Past the working-set cliff: switch to the external
                    # merge sort, seeding it with the rows buffered so far.
                    # Under the limit the armed path stays byte-for-byte
                    # the disarmed in-memory cascade below.
                    evs = [compile_expr(e, layout) for e, _ in self.keys]

                    def keyed(first=batch):
                        for b in itertools.chain((rows,), (first,), source):
                            yield [
                                (tuple(ev(row) for ev in evs), row) for row in b
                            ]

                    buffer.shrink(len(rows))  # the external sort re-charges
                    yield from self._external_sort(ctx, buffer, keyed())
                    return
                rows.extend(batch)
                buffer.grow(len(batch))
            # Stable multi-key sort: apply keys from least to most significant.
            for expr, ascending in reversed(self.keys):
                ev = compile_expr(expr, layout)
                rows.sort(
                    key=lambda row: _null_safe_key(ev(row)),
                    reverse=not ascending,
                )
            yield from chunked(rows, ctx.batch_size)
        finally:
            close_stream(source)
            buffer.release()

    def _external_sort(
        self, ctx: ExecutionContext, buffer: Buffer, batches
    ) -> Iterator[Batch]:
        """External merge sort with *exact* order parity.

        ``batches`` yields lists of ``(key_values, row)`` pairs in arrival
        order.  Items carry a global arrival counter and sort by their
        fully decorated key — per-component NaN-canonical null-safe keys
        with descending components wrapped (:func:`_spill_decorated`), the
        counter last — which for totally ordered key values is precisely
        the order the in-memory reversed-stable-sort cascade produces.
        Sorted runs flush to spill files whenever the resident buffer
        would pass the working-set limit; the k-way ``heapq.merge`` over
        the runs (plus the final resident run) is then byte-identical to
        the in-memory sort, because every item's decorated key is
        globally unique.

        NaN key values are the one exception: ``heapq.merge`` (and any
        comparison sort) needs a total order, and NaN is incomparable, so
        the decoration canonicalizes it — all NaN keys tie (resolving by
        arrival) and order after every non-NaN value ascending, before
        them descending.  The disarmed in-memory sort leaves NaN
        comparisons to timsort, whose placement of NaN-keyed rows is a
        merge-pattern artifact no run-split can reproduce; the armed
        order is the better-defined of the two.
        """
        manager = ctx.spill
        limit = ctx.spill_limit()
        ascs = [asc for _, asc in self.keys]
        label = self._label()
        size = ctx.batch_size

        def decorate(item):
            return tuple(
                _spill_decorated(v, a) for v, a in zip(item[0], ascs)
            ) + (item[1],)

        runs: list = []
        pending: list = []
        seq = 0

        def flush_run() -> None:
            nonlocal pending
            pending.sort(key=decorate)
            run = manager.create_file(f"{label} run{len(runs)}")
            for start in range(0, len(pending), size):
                run.append_rows(pending[start : start + size])
            runs.append(run)
            buffer.shrink(len(pending))
            pending = []

        for items in batches:
            n = len(items)
            if not n:
                continue
            if pending and ctx.buffered_rows + n > limit:
                flush_run()
            for kv, row in items:
                pending.append((kv, seq, row))
                seq += 1
            buffer.grow(n)
        pending.sort(key=decorate)
        if not runs:
            yield from chunked([item[2] for item in pending], size)
            return

        def run_items(run):
            for frame in run.read_rows():
                yield from frame

        streams = [run_items(run) for run in runs]
        streams.append(iter(pending))
        out: list = []
        for item in heapq.merge(*streams, key=decorate):
            out.append(item[2])
            if len(out) >= size:
                yield out
                out = []
        if out:
            yield out
        for run in runs:
            run.delete()

    def _label(self) -> str:
        keys = ", ".join(f"{e} {'ASC' if asc else 'DESC'}" for e, asc in self.keys)
        return f"SORT {keys}"


def _null_safe_key(value: Any) -> tuple:
    return (value is not None, value if value is not None else 0)




class _Descending:
    """Inverts comparisons so DESC keys fit a smallest-first heap order."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Descending") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and other.value == self.value


def _first_decorated(value: Any, asc: bool):
    """One sort-key component decorated the way candidate keys are."""
    key = _null_safe_key(value)
    return key if asc else _Descending(key)


def _nan_total_key(value: Any) -> tuple:
    """Null-safe key with NaN canonicalized into a total order.

    NaN is incomparable under ``<``, which makes it poison for
    ``heapq.merge`` (heap invariants assume transitivity).  The external
    sort therefore maps every NaN to one sentinel component ordered after
    all non-NaN values, so run sorting and merging see a genuine total
    order.  Only :meth:`SortOp._external_sort` uses this — the disarmed
    in-memory sort keeps :func:`_null_safe_key` byte for byte.
    """
    if value is None:
        return (False, False, 0)
    if isinstance(value, float) and value != value:
        return (True, True, 0.0)
    return (True, False, value)


def _spill_decorated(value: Any, asc: bool):
    """One external-sort key component: NaN-canonical, DESC-wrapped."""
    key = _nan_total_key(value)
    return key if asc else _Descending(key)


class TopKOp(PhysicalOperator):
    """Streaming ``ORDER BY ... LIMIT k``: a bounded top-k selection.

    Instead of sorting (and buffering) the full input, candidate rows are
    decorated with a heap-ordered key and pruned to the best ``k`` via
    :func:`heapq.nsmallest` whenever the candidate buffer doubles.  The
    buffered state is therefore O(k); ties resolve by arrival order, so the
    emitted rows are exactly what ``SORT`` + ``LIMIT`` would produce.
    """

    def __init__(
        self, child: PhysicalOperator, keys: list[tuple[Expr, bool]], limit: int
    ):
        self.child = child
        self.keys = keys
        self.limit = limit
        self.output_columns = list(child.output_columns)

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def _selection_setup(self, k: int):
        """(select, tiebreak, uniform) for the configured key directions."""
        all_asc = all(asc for _, asc in self.keys)
        all_desc = all(not asc for _, asc in self.keys)
        if all_asc or all_desc:
            select = (
                (lambda cands: heapq.nsmallest(k, cands))
                if all_asc
                else (lambda cands: heapq.nlargest(k, cands))
            )
            return select, (1 if all_asc else -1), True
        return (lambda cands: heapq.nsmallest(k, cands)), 1, False

    def _prune_threshold(self, ctx: ExecutionContext, k: int) -> int:
        # Prune once candidates double past k — or sooner when a tighter
        # memory budget is in force, so any LIMIT that fits the budget
        # (k <= budget) streams without tripping it.
        threshold = max(2 * k, ctx.batch_size)
        if ctx.memory_budget_rows is not None:
            threshold = min(threshold, ctx.memory_budget_rows + 1)
        return threshold

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _admission_filter(self):
        """``(admit, make_keys)`` for late-materializing candidate intake.

        ``make_keys(key_cols, positions)`` decorates the rows at
        ``positions`` into heap-comparable keys (bare null-safe keys for a
        single sort key, tuples otherwise, with descending components
        wrapped for mixed directions).  ``admit(key_cols, bound)`` returns
        the positions whose decorated key can still enter the top-k given
        ``bound``, the decorated key of the current k-th best: the
        tiebreak is arrival order and every unseen row arrives later, so
        admission requires *strictly* beating the bound (``<`` under
        nsmallest, ``>`` under the uniform-descending nlargest).  A None
        bound admits everything.
        """
        all_asc = all(asc for _, asc in self.keys)
        all_desc = all(not asc for _, asc in self.keys)
        ascs = [asc for _, asc in self.keys]

        if len(self.keys) == 1:
            # A single key is always "uniform": bare decorated values.
            def make_single(key_cols, positions):
                col = key_cols[0]
                return [_null_safe_key(col[j]) for j in positions]

            if all_asc:

                def admit_asc(key_cols, bound):
                    col = key_cols[0]
                    if bound is None:
                        return range(len(col))
                    return [
                        j
                        for j, v in enumerate(col)
                        if _null_safe_key(v) < bound
                    ]

                return admit_asc, make_single

            def admit_desc(key_cols, bound):
                col = key_cols[0]
                if bound is None:
                    return range(len(col))
                return [
                    j for j, v in enumerate(col) if _null_safe_key(v) > bound
                ]

            return admit_desc, make_single

        def decorate(parts):
            if all_asc or all_desc:
                return tuple(_null_safe_key(v) for v in parts)
            return tuple(
                _null_safe_key(v) if asc else _Descending(_null_safe_key(v))
                for v, asc in zip(parts, ascs)
            )

        def make_multi(key_cols, positions):
            return [decorate([col[j] for col in key_cols]) for j in positions]

        beats = (lambda key, bound: key > bound) if all_desc else (
            lambda key, bound: key < bound
        )

        def admit_multi(key_cols, bound):
            n = len(key_cols[0])
            if bound is None:
                return range(n)
            # Prefilter on the first key alone (non-strictly: a tie there
            # can still win on later keys), then compare full keys.
            first = key_cols[0]
            b0 = bound[0]
            if all_desc:
                coarse = (
                    j
                    for j in range(n)
                    if not (_null_safe_key(first[j]) < b0)
                )
            else:
                coarse = (
                    j
                    for j in range(n)
                    if not (b0 < _first_decorated(first[j], ascs[0]))
                )
            return [
                j
                for j in coarse
                if beats(decorate([col[j] for col in key_cols]), bound)
            ]

        return admit_multi, make_multi

    def _admit_vectorized(self, cb: ColumnarBatch, key_ref_idx, bound, asc: bool):
        """Numpy admission for a single plain-column sort key.

        When the key column is an ndarray (hence NULL-free) and a bound is
        set, the strict beats-the-k-th-best test is one vectorized
        comparison.  Before any bound exists (the first batch), an
        ``np.partition`` pivot preselects the within-batch top-k *candidate
        set* — rows strictly worse than the batch's k-th best value can
        never reach the heap, so only the contenders decorate and
        materialize.  Returns ``(n, positions, decorated_keys)`` or None
        when the generic path must run (computed keys, list columns, or
        incomparable dtypes).
        """
        if key_ref_idx is None:
            return None
        column = cb.column_vector(key_ref_idx)
        if not is_ndarray(column):
            return None
        if sequence_has_nan(column):
            # NaN poisons both the partition pivot (a NaN pivot admits
            # nothing) and ordered comparisons; the generic decorated path
            # shares the row protocol's semantics for such keys.  (Only
            # ordered admission still needs a NaN scan — grouping
            # canonicalizes NaN keys instead of detouring around them.)
            return None
        n = len(column)
        k = self.limit
        if bound is None:
            if n <= k:
                return n, range(n), [(True, v) for v in column.tolist()]
            from repro.exec import vector

            np = vector._np
            try:
                if asc:
                    pivot = np.partition(column, k - 1)[k - 1]
                    mask = column <= pivot
                else:
                    pivot = np.partition(column, n - k)[n - k]
                    mask = column >= pivot
            except TypeError:
                return None
            # Keep pivot ties (>= / <=): the heap resolves them by arrival.
            positions = mask.nonzero()[0]
            keys = [(True, v) for v in column[positions].tolist()]
            return n, positions, keys
        has_value, bound_value = bound
        if not has_value:
            # The k-th best is NULL: under ASC nothing beats it (ties lose
            # by arrival); under DESC every non-NULL value does.
            if asc:
                return n, [], []
            return n, range(n), [(True, v) for v in column.tolist()]
        try:
            mask = (column < bound_value) if asc else (column > bound_value)
        except TypeError:
            return None
        positions = mask.nonzero()[0]
        if not len(positions):
            return n, positions, []
        keys = [(True, v) for v in column[positions].tolist()]
        return n, positions, keys

    def _collect_columnar(
        self, ctx: ExecutionContext, source, buffer: Buffer, morsel: int = 0
    ) -> list[tuple]:
        """Drain ``source`` into a pruned candidate list (the shared body of
        the serial and per-worker top-k paths).

        Sort keys are computed as whole columns, and once ``k`` candidates
        are buffered the key of the current k-th best becomes an
        **admission bound** — rows that cannot beat it are dropped straight
        off the key column, so row tuples materialize (into the candidate
        heap, the genuinely buffered state charged to ``buffer``) only for
        the shrinking stream of contenders.

        Entries are ``(key, (±morsel, ±arrival), row)``: morsels are
        contiguous input ranges, so the lexicographic (morsel, arrival)
        pair is the global arrival order — per-worker candidate lists
        merged by one final selection resolve ties exactly as the serial
        stream does.
        """
        k = self.limit
        layout = self.child.layout()
        evs = [compile_expr_columnar(e, layout) for e, _ in self.keys]
        select, tiebreak, _ = self._selection_setup(k)
        threshold = self._prune_threshold(ctx, k)
        admit, make_keys = self._admission_filter()
        key_ref_idx = None
        if len(self.keys) == 1:
            key_ref_idx = _plain_ref_index(self.keys[0][0], self.child.output_columns)
        asc0 = self.keys[0][1]
        tagged_morsel = tiebreak * morsel
        candidates: list[tuple] = []  # (key, (±morsel, ±arrival), row)
        arrival = 0
        bound = None  # decorated key of the k-th best candidate
        for cb in source:
            keyed = self._admit_vectorized(cb, key_ref_idx, bound, asc0)
            if keyed is not None:
                n, positions, keys = keyed
            else:
                key_cols = [ev(cb.columns, cb.selection, cb.length) for ev in evs]
                n = len(key_cols[0])
                positions = admit(key_cols, bound)
                keys = (
                    make_keys(key_cols, positions) if len(positions) else []
                )
            if len(positions):
                rows = cb.take(positions).to_rows()
                base = arrival
                for key, j, row in zip(keys, positions, rows):
                    candidates.append(
                        (key, (tagged_morsel, tiebreak * (base + j)), row)
                    )
            arrival += n
            if len(candidates) >= threshold:
                candidates = select(candidates)
                if len(candidates) == k:
                    bound = candidates[-1][0]
            elif bound is None and len(candidates) >= k:
                # Establish the admission bound as soon as k candidates
                # exist — pruning the stream early matters more than
                # deferring the first k log k selection.
                candidates = select(candidates)
                bound = candidates[-1][0]
            delta = len(candidates) - buffer.rows
            if delta >= 0:
                buffer.grow(delta)
            else:
                buffer.shrink(-delta)
        return candidates

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        k = self.limit
        if k <= 0:
            return
        select, _, _ = self._selection_setup(k)
        label = self._label()
        buffer = ctx.buffer(label)
        source = None
        try:
            exchange = fold_source(self.child, ctx)
            if exchange is None:
                source = self.child.columnar_batches(ctx)
                candidates = self._collect_columnar(ctx, source, buffer)
            else:
                # Per-worker top-k over the morsel exchange: each worker
                # prunes its own candidates (untracked O(k) partials) and
                # one final selection merges them; (morsel, arrival) tags
                # keep tie-breaking identical to the serial stream.
                def run(morsel: int, stream) -> list[tuple]:
                    partial = ctx.buffer(f"{label} partial", tracked=False)
                    try:
                        return self._collect_columnar(ctx, stream, partial, morsel)
                    finally:
                        partial.release()

                candidates = [
                    entry
                    for part in exchange.fold(ctx, "columnar_batches", run)
                    for entry in part
                ]
            top = select(candidates)
            if exchange is not None:
                buffer.grow(len(top))
            for chunk in chunked([entry[2] for entry in top], ctx.batch_size):
                yield ColumnarBatch.from_rows(chunk)
        finally:
            close_stream(source)
            buffer.release()

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        k = self.limit
        if k <= 0:
            return
        layout = self.child.layout()
        evs = [(compile_expr(e, layout), asc) for e, asc in self.keys]
        select, tiebreak, uniform = self._selection_setup(k)
        if uniform:
            # Uniform direction: plain comparable key tuples, selected with
            # nsmallest/nlargest.  The arrival counter breaks ties — negated
            # for nlargest so earlier rows still win — and shields rows
            # themselves from ever being compared.
            if len(evs) == 1:
                ev0 = evs[0][0]
                key_of = lambda row: _null_safe_key(ev0(row))  # noqa: E731
            else:
                key_of = lambda row: tuple(  # noqa: E731
                    _null_safe_key(ev(row)) for ev, _ in evs
                )
        else:

            def key_of(row: tuple) -> tuple:
                return tuple(
                    _null_safe_key(ev(row))
                    if asc
                    else _Descending(_null_safe_key(ev(row)))
                    for ev, asc in evs
                )

        threshold = self._prune_threshold(ctx, k)
        buffer = ctx.buffer(self._label())
        source = self.child.batches(ctx)
        try:
            candidates: list[tuple] = []  # (key, ±arrival, row)
            arrival = 0
            for batch in source:
                for row in batch:
                    candidates.append((key_of(row), tiebreak * arrival, row))
                    arrival += 1
                if len(candidates) >= threshold:
                    candidates = select(candidates)
                # Charge the retained candidates (post-prune); the
                # just-consumed batch is in-flight, not buffered state.
                delta = len(candidates) - buffer.rows
                if delta >= 0:
                    buffer.grow(delta)
                else:
                    buffer.shrink(-delta)
            top = select(candidates)
            yield from chunked([entry[2] for entry in top], ctx.batch_size)
        finally:
            close_stream(source)
            buffer.release()

    def _label(self) -> str:
        keys = ", ".join(f"{e} {'ASC' if asc else 'DESC'}" for e, asc in self.keys)
        return f"TOPK {self.limit} BY {keys}"


class LimitOp(PhysicalOperator):
    """Emit the first ``limit`` rows, then stop pulling from upstream."""

    def __init__(self, child: PhysicalOperator, limit: int):
        self.child = child
        self.limit = limit
        self.output_columns = list(child.output_columns)

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        remaining = self.limit
        if remaining <= 0:
            return
        label = self._label()
        source = self.child.batches(ctx)
        try:
            for batch in source:
                if len(batch) >= remaining:
                    out = batch[:remaining]
                    ctx.emit(len(out), label)
                    yield out
                    return
                remaining -= len(batch)
                ctx.emit(len(batch), label)
                yield batch
        finally:
            # Covers the satisfied-early return too: upstream breakers see
            # the close (not an eventual GC) and release their buffers now.
            close_stream(source)

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        remaining = self.limit
        if remaining <= 0:
            return
        label = self._label()
        source = self.child.columnar_batches(ctx)
        try:
            for cb in source:
                n = len(cb)
                if not n:
                    continue
                if n >= remaining:
                    out = cb.head(remaining)
                    ctx.emit(len(out), label)
                    yield out
                    return
                remaining -= n
                ctx.emit(n, label)
                yield cb
        finally:
            close_stream(source)

    def _label(self) -> str:
        return f"LIMIT {self.limit}"


class _DistinctSpiller:
    """Spilled phase of out-of-core DISTINCT.

    At switchover the streamed seen-set exports to per-partition key files
    (those keys were already emitted); every later input row routes — by
    its canonical key's partition — to a pending file, dedup deferred.
    Drain replays one partition at a time: the partition's emitted-keys
    set loads (re-canonicalized, since NaN identity does not survive a
    pickle round-trip), pending rows replay in arrival order, and unseen
    rows emit.  A key's occurrences all land in one partition, so the
    per-partition seen state is complete for its keys.
    """

    __slots__ = ("_ctx", "_label", "_parts", "keys", "pending")

    def __init__(self, ctx: ExecutionContext, label: str):
        self._ctx = ctx
        self._label = label
        self._parts = spill_partition_count(ctx.parallelism)
        self.keys: dict[int, PartitionWriter] = {}
        self.pending: dict[int, PartitionWriter] = {}

    def export_seen(self, seen_keys) -> None:
        manager = self._ctx.spill
        for key in seen_keys:
            p = spill_hash(key) % self._parts
            writer = self.keys.get(p)
            if writer is None:
                writer = self.keys[p] = PartitionWriter(
                    manager, f"{self._label} keys p{p}"
                )
            writer.append(key)

    def route_rows(self, rows) -> None:
        manager = self._ctx.spill
        for row in rows:
            key = canonical_row(row)
            p = spill_hash(key) % self._parts
            writer = self.pending.get(p)
            if writer is None:
                writer = self.pending[p] = PartitionWriter(
                    manager, f"{self._label} pending p{p}"
                )
            writer.append(row)

    def drain_rows(self, buffer: Buffer) -> Iterator[Batch]:
        size = self._ctx.batch_size
        for p in sorted(set(self.keys) | set(self.pending)):
            key_writer = self.keys.pop(p, None)
            pending_writer = self.pending.pop(p, None)
            seen: set[tuple] = set()
            if key_writer is not None:
                for frame in key_writer.drain():
                    seen.update(canonical_row(key) for key in frame)
                key_writer.delete()
            if pending_writer is None:
                continue
            buffer.grow(len(seen))
            charged = len(seen)
            out: list[tuple] = []
            for frame in pending_writer.drain():
                for row in frame:
                    key = canonical_row(row)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(row)
                    if len(out) >= size:
                        buffer.grow(len(out))
                        charged += len(out)
                        yield out
                        out = []
            if out:
                buffer.grow(len(out))
                charged += len(out)
                yield out
            pending_writer.delete()
            buffer.shrink(charged)


class DistinctOp(PhysicalOperator):
    """Streaming dedup; the seen-set is the charged buffered state.

    Keys are NaN-canonical (all-NaN rows dedup together, matching the
    grouping engine and SQL semantics).  The columnar path factorizes the
    batch's columns and dedups on combined group codes
    (:class:`repro.exec.grouping.StreamingDistinct`); survivors are emitted
    as a selection over the input batch — no row materialization.

    Out-of-core: when the seen-set would pass ``ctx.spill_limit()`` the
    operator switches over — exported keys and all later rows go to hash
    partitions on disk (:class:`_DistinctSpiller`) and dedup completes
    partition by partition on drain, so the tracked state never exceeds
    the working-set limit.
    """

    def __init__(self, child: PhysicalOperator):
        self.child = child
        self.output_columns = list(child.output_columns)

    def children(self) -> list[Operator]:
        return [self.child]

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        return emit_batches(ctx, self.cached_label(), self._stream(ctx))

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        return emit_columnar(ctx, self.cached_label(), self._stream_columnar(ctx))

    def _stream_columnar(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        exchange = fold_source(self.child, ctx)
        if exchange is not None:
            yield from self._parallel_columnar(ctx, exchange)
            return
        yield from self._columnar_dedup(ctx, self.child.columnar_batches(ctx))

    def _columnar_dedup(
        self, ctx: ExecutionContext, source: Iterator[ColumnarBatch]
    ) -> Iterator[ColumnarBatch]:
        state = StreamingDistinct()
        buffer = ctx.buffer(self._label())
        limit = ctx.spill_limit()
        spiller: _DistinctSpiller | None = None
        try:
            for cb in source:
                n = len(cb)
                if spiller is None and limit is not None and ctx.buffered_rows + n > limit:
                    spiller = _DistinctSpiller(ctx, self._label())
                    charged = state.seen_count
                    spiller.export_seen(state.export_keys())
                    buffer.shrink(charged)
                if spiller is not None:
                    spiller.route_rows(cb.to_rows())
                    continue
                columns = [cb.column_vector(i) for i in range(cb.width)]
                kept = state.positions(columns, n)
                if not kept:
                    continue
                buffer.grow(len(kept))
                yield cb if len(kept) == len(cb) else cb.take(kept)
            if spiller is not None:
                for rows in spiller.drain_rows(buffer):
                    yield ColumnarBatch.from_rows(rows)
        finally:
            close_stream(source)
            buffer.release()

    def _parallel_columnar(
        self, ctx: ExecutionContext, exchange
    ) -> Iterator[ColumnarBatch]:
        """Per-worker partial dedup over a morsel exchange — streaming.

        Each morsel subplan is wrapped in a :class:`_PartialDistinct`
        stage, so workers emit only their within-morsel first occurrences
        (compacted) into the exchange's bounded queues; this pass then
        re-dedups the merged stream.  First occurrences across ordered
        morsels are the serial first occurrences, so output rows and order
        match serial execution, and resident survivor state is bounded by
        the exchange's run-ahead window plus the final seen-set — which
        charges this operator's tracked buffer exactly as the serial path
        does (no morsel-count-times-footprint barrier).
        """
        from repro.exec.scheduler import ExchangeOp

        pre = ExchangeOp(
            [_PartialDistinct(plan) for plan in exchange.plans],
            source_label=exchange.source_label,
        )
        yield from self._columnar_dedup(ctx, pre.columnar_batches(ctx))

    def _stream(self, ctx: ExecutionContext) -> Iterator[Batch]:
        buffer = ctx.buffer(self._label())
        source = self.child.batches(ctx)
        limit = ctx.spill_limit()
        spiller: _DistinctSpiller | None = None
        try:
            seen: set[tuple] = set()
            add = seen.add
            for batch in source:
                if spiller is None and limit is not None and ctx.buffered_rows + len(batch) > limit:
                    spiller = _DistinctSpiller(ctx, self._label())
                    # Row-path keys may be the raw row tuples themselves
                    # (clean rows skip canonicalization); canonicalize at
                    # export so partition routing matches drain-time keys.
                    spiller.export_seen(canonical_row(key) for key in seen)
                    buffer.shrink(len(seen))
                    seen = set()
                if spiller is not None:
                    spiller.route_rows(batch)
                    continue
                out: list[tuple] = []
                for row in batch:
                    # Inline NaN probe: clean rows (the overwhelming case)
                    # dedup on the tuple itself, no canonicalization call.
                    key = row
                    for v in row:
                        if v != v:
                            key = canonical_row(row)
                            break
                    if key not in seen:
                        add(key)
                        out.append(row)
                if out:
                    buffer.grow(len(out))
                    yield out
            if spiller is not None:
                yield from spiller.drain_rows(buffer)
        finally:
            close_stream(source)
            buffer.release()

    def _label(self) -> str:
        return "DISTINCT"


class _PartialDistinct(PhysicalOperator):
    """Within-stream dedup stage of the parallel DISTINCT.

    Runs on a worker inside the morsel exchange: emits the child stream's
    first occurrences (compacted, so queued batches never pin full backing
    columns) and nothing else — no emit counting, no buffer charge.  Its
    seen-set is morsel-local in-flight state; the consuming
    :class:`DistinctOp` re-dedups the merged stream and owns the tracked
    (budget-charged) global seen-set.
    """

    def __init__(self, child: PhysicalOperator):
        self.child = child
        self.output_columns = list(child.output_columns)

    def children(self) -> list[Operator]:
        return [self.child]

    def columnar_batches(self, ctx: ExecutionContext) -> Iterator[ColumnarBatch]:
        state = StreamingDistinct()
        for cb in self.child.columnar_batches(ctx):
            columns = [cb.column_vector(i) for i in range(cb.width)]
            kept = state.positions(columns, len(cb))
            if kept:
                yield cb.take(kept).compact()

    def _label(self) -> str:
        return "DISTINCT(partial)"


class MaterializedInput(PhysicalOperator):
    """Wrap precomputed rows as a plan leaf (used by SCAN_GRAPH_TABLE glue)."""

    def __init__(self, columns: list[str], rows: list[tuple], label: str = "MATERIALIZED"):
        self.output_columns = list(columns)
        self.rows = rows
        self.label_text = label

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        buffer = ctx.buffer(self._label())
        try:
            buffer.grow(len(self.rows))
            yield from emit_batches(
                ctx, self._label(), chunked(self.rows, ctx.batch_size)
            )
        finally:
            buffer.release()

    def _label(self) -> str:
        return self.label_text
