"""Scalar expression AST and compilation.

Expressions appear in selections (``σ``), join conditions, projections and —
after FilterIntoMatchRule fires — as constraints attached to pattern vertices
and edges.  The AST is deliberately small and immutable; evaluation compiles
an expression into a Python closure over a *layout* (a mapping from column
name to position in the row tuple), so per-row evaluation is a chain of plain
function calls with no name lookups.

Helpers at the bottom (``split_conjuncts``, ``referenced_columns``,
``rename_columns``) are what the optimizer rules are built out of.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.errors import PlanError

Row = tuple
Evaluator = Callable[[Row], Any]


# ---------------------------------------------------------------------- #
# AST
# ---------------------------------------------------------------------- #


class Expr:
    """Base class of all scalar expressions (immutable)."""

    def __and__(self, other: "Expr") -> "Expr":
        return and_(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return BoolOp("OR", (self, other))


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to a column by (possibly qualified) name, e.g. ``p.name``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (int, float, str, bool, or None for NULL)."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class ParamLiteral(Literal):
    """A literal lifted into a plan-cache parameter slot.

    Behaves exactly like :class:`Literal` everywhere — evaluation,
    compilation, ``__str__`` (so implicit output aliases match the
    uncached parse byte-for-byte) — but additionally remembers which
    fingerprint slot its value came from, so a cached plan template can be
    rebound to fresh literals (:func:`substitute_params`) without
    re-optimizing.  The slot is part of equality/hash: two ``x = ?``
    predicates over different slots never collapse in ``and_``'s
    string-keyed dedup *unless* their values also coincide — the one case
    the cache layer detects via :func:`param_slots` and refuses to cache.
    """

    slot: int = -1


_COMPARISON_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expr):
    """``left op right`` with SQL comparison semantics (NULL-safe)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise PlanError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BoolOp(Expr):
    """N-ary AND / OR."""

    op: str  # "AND" | "OR"
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.op not in ("AND", "OR"):
            raise PlanError(f"unknown boolean operator {self.op!r}")
        if len(self.args) < 2:
            raise PlanError("BoolOp needs at least two arguments")

    def __str__(self) -> str:
        sep = f" {self.op} "
        return "(" + sep.join(str(a) for a in self.args) + ")"


@dataclass(frozen=True)
class Not(Expr):
    arg: Expr

    def __str__(self) -> str:
        return f"(NOT {self.arg})"


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b != 0 else None,
    "%": lambda a, b: a % b if b != 0 else None,
}


@dataclass(frozen=True)
class Arith(Expr):
    """``left op right`` arithmetic; NULL-propagating, division by zero -> NULL."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise PlanError(f"unknown arithmetic operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Like(Expr):
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards (and STARTS WITH sugar)."""

    arg: Expr
    pattern: str

    def __str__(self) -> str:
        return f"({self.arg} LIKE '{self.pattern}')"


@dataclass(frozen=True)
class InList(Expr):
    """``arg IN (v1, v2, ...)`` over literal values."""

    arg: Expr
    values: tuple[Any, ...]

    def __str__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"({self.arg} IN ({inner}))"


@dataclass(frozen=True)
class IsNull(Expr):
    arg: Expr
    negated: bool = False

    def __str__(self) -> str:
        return f"({self.arg} IS {'NOT ' if self.negated else ''}NULL)"


# ---------------------------------------------------------------------- #
# construction helpers
# ---------------------------------------------------------------------- #


def col(name: str) -> ColumnRef:
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    return Literal(value)


def eq(left: Expr | str, right: Expr | Any) -> Comparison:
    return _cmp("=", left, right)


def ne(left: Expr | str, right: Expr | Any) -> Comparison:
    return _cmp("<>", left, right)


def lt(left: Expr | str, right: Expr | Any) -> Comparison:
    return _cmp("<", left, right)


def le(left: Expr | str, right: Expr | Any) -> Comparison:
    return _cmp("<=", left, right)


def gt(left: Expr | str, right: Expr | Any) -> Comparison:
    return _cmp(">", left, right)


def ge(left: Expr | str, right: Expr | Any) -> Comparison:
    return _cmp(">=", left, right)


def _coerce(value: Expr | Any) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        # Bare strings in the builder API are column names only when they
        # look like identifiers with an optional qualifier; everything else
        # must be wrapped in lit() explicitly.  To keep the builder
        # unambiguous we treat plain strings as column references.
        return ColumnRef(value)
    return Literal(value)


def _cmp(op: str, left: Expr | str, right: Expr | Any) -> Comparison:
    left_expr = _coerce(left)
    right_expr = right if isinstance(right, Expr) else Literal(right)
    return Comparison(op, left_expr, right_expr)


def and_(*args: Expr) -> Expr:
    """Conjunction; flattens nested ANDs and drops duplicates, preserving order."""
    flat: list[Expr] = []
    seen: set[str] = set()
    for arg in args:
        parts = arg.args if isinstance(arg, BoolOp) and arg.op == "AND" else (arg,)
        for part in parts:
            key = str(part)
            if key not in seen:
                seen.add(key)
                flat.append(part)
    if not flat:
        raise PlanError("and_() needs at least one argument")
    if len(flat) == 1:
        return flat[0]
    return BoolOp("AND", tuple(flat))


def starts_with(arg: Expr | str, prefix: str) -> Like:
    return Like(_coerce(arg), prefix + "%")


# ---------------------------------------------------------------------- #
# compilation
# ---------------------------------------------------------------------- #


def _like_matcher(pattern: str) -> Callable[[str], bool]:
    """Translate a LIKE pattern into a compiled-regex matcher.

    Fast paths for the three overwhelmingly common shapes (prefix, suffix,
    infix) avoid regex entirely.
    """
    if "_" not in pattern:
        body = pattern.strip("%")
        if "%" not in body:
            if pattern.endswith("%") and not pattern.startswith("%"):
                return lambda s: s.startswith(body)
            if pattern.startswith("%") and not pattern.endswith("%"):
                return lambda s: s.endswith(body)
            if pattern.startswith("%") and pattern.endswith("%"):
                return lambda s: body in s
            return lambda s: s == body
    regex = re.compile(
        "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$",
        re.DOTALL,
    )
    return lambda s: regex.match(s) is not None


def compile_expr(expr: Expr, layout: Mapping[str, int]) -> Evaluator:
    """Compile ``expr`` into a closure evaluating it against a row tuple.

    Args:
        expr: the expression to compile.
        layout: maps each column name referenced by ``expr`` to its index in
            the row tuples the closure will receive.

    Raises:
        PlanError: when the expression references a column absent from the
            layout — this indicates a planner bug, not bad user input, since
            binding happens earlier.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ColumnRef):
        idx = _resolve_layout(expr.name, layout)
        return lambda row: row[idx]
    if isinstance(expr, Comparison):
        fn = _COMPARISON_OPS[expr.op]
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)

        def _compare(row: Row) -> Any:
            lv = left(row)
            rv = right(row)
            if lv is None or rv is None:
                return None
            return fn(lv, rv)

        return _compare
    if isinstance(expr, BoolOp):
        parts = [compile_expr(a, layout) for a in expr.args]
        if expr.op == "AND":

            def _and(row: Row) -> Any:
                saw_null = False
                for part in parts:
                    value = part(row)
                    if value is None:
                        saw_null = True
                    elif not value:
                        return False
                return None if saw_null else True

            return _and

        def _or(row: Row) -> Any:
            saw_null = False
            for part in parts:
                value = part(row)
                if value is None:
                    saw_null = True
                elif value:
                    return True
            return None if saw_null else False

        return _or
    if isinstance(expr, Not):
        arg = compile_expr(expr.arg, layout)

        def _not(row: Row) -> Any:
            value = arg(row)
            return None if value is None else (not value)

        return _not
    if isinstance(expr, Arith):
        fn = _ARITH_OPS[expr.op]
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)

        def _arith(row: Row) -> Any:
            lv = left(row)
            rv = right(row)
            if lv is None or rv is None:
                return None
            return fn(lv, rv)

        return _arith
    if isinstance(expr, Like):
        arg = compile_expr(expr.arg, layout)
        match = _like_matcher(expr.pattern)

        def _like(row: Row) -> Any:
            value = arg(row)
            if value is None:
                return None
            return match(value)

        return _like
    if isinstance(expr, InList):
        arg = compile_expr(expr.arg, layout)
        values = frozenset(expr.values)

        def _in(row: Row) -> Any:
            value = arg(row)
            if value is None:
                return None
            return value in values

        return _in
    if isinstance(expr, IsNull):
        arg = compile_expr(expr.arg, layout)
        if expr.negated:
            return lambda row: arg(row) is not None
        return lambda row: arg(row) is None
    raise PlanError(f"cannot compile expression {expr!r}")


def compile_predicate(expr: Expr, layout: Mapping[str, int]) -> Callable[[Row], bool]:
    """Like :func:`compile_expr` but collapses NULL to False (WHERE semantics)."""
    evaluator = compile_expr(expr, layout)

    def _predicate(row: Row) -> bool:
        value = evaluator(row)
        return bool(value) if value is not None else False

    return _predicate


# ---------------------------------------------------------------------- #
# columnar compilation
# ---------------------------------------------------------------------- #
#
# The vectorized execution path evaluates expressions column-at-a-time.
# Two compiled shapes exist:
#
# * a **columnar evaluator** ``(columns, selection, length) -> values``
#   computes the expression's value for every visible row; ``columns`` is
#   the operator's raw column list (layout order), ``selection`` an optional
#   row-index vector, and the result is a dense list aligned with the
#   visible rows.
# * a **selection evaluator** ``(columns, selection, length) -> selection``
#   refines the selection to the rows where the predicate holds (WHERE
#   semantics: NULL filters out).  Returning the *input* selection object
#   unchanged signals the all-selected fast path, so callers can skip
#   rebuilding batches.
#
# Common shapes (column vs literal comparisons, IN lists, LIKE, conjunction
# chains) compile to single comprehensions with no per-row closure calls —
# this is where the columnar engine's speedup over the row engine comes
# from.  Everything else falls back to the row-wise evaluator applied to
# reconstructed tuples, which keeps semantics identical by construction.

ColumnarEvaluator = Callable[[Sequence, "Sequence[int] | None", int], list]
SelectionEvaluator = Callable[
    [Sequence, "Sequence[int] | None", int], "Sequence[int] | None"
]


def _resolve_layout(name: str, layout: Mapping[str, int]) -> int:
    """Column index of ``name``; unqualified references resolve when exactly
    one layout column has that tail (SQL's usual disambiguation rule).
    Shared by the row-wise and columnar compilers so both resolve names
    identically."""
    if name in layout:
        return layout[name]
    matches = {
        i for lname, i in layout.items() if lname.rsplit(".", 1)[-1] == name
    }
    if len(matches) != 1:
        raise PlanError(f"column {name!r} not in layout {sorted(layout)}")
    return matches.pop()


def _candidates(sel: "Sequence[int] | None", n: int) -> Sequence:
    return range(n) if sel is None else sel


def _refined(kept: list, sel: "Sequence[int] | None", n: int):
    """Normalize a refined selection: hand back the input object (or None)
    unchanged when every visible row survived, enabling identity-checked
    all-selected fast paths downstream."""
    if sel is None:
        return None if len(kept) == n else kept
    return sel if len(kept) == len(sel) else kept


#: Memo for compiled columnar evaluators/selectors.  Compiled closures are
#: pure functions of ``(columns, selection, length)`` — they close over
#: layout *indices* only and re-check numpy enablement per call — so one
#: compilation serves every execution of the same (expr, layout) shape.
#: Exprs are frozen dataclasses (hashable); unhashable literals skip the
#: cache.  Bounded by wholesale clear: plan shapes per process are few.
_COMPILE_CACHE: dict = {}
_COMPILE_CACHE_LIMIT = 1024


def _literal_types(expr: Expr, out: list) -> None:
    """Collect the concrete types of every literal value in tree order.

    Python equality conflates ``True == 1 == 1.0``, so two exprs can be
    ``==`` (and hash-equal) while compiling to closures that emit
    *differently-typed* values; the cache key must tell them apart.
    """
    if isinstance(expr, Literal):
        out.append(type(expr.value))
    elif isinstance(expr, (Comparison, Arith)):
        _literal_types(expr.left, out)
        _literal_types(expr.right, out)
    elif isinstance(expr, BoolOp):
        for arg in expr.args:
            _literal_types(arg, out)
    elif isinstance(expr, Not):
        _literal_types(expr.arg, out)
    elif isinstance(expr, (Like, IsNull)):
        _literal_types(expr.arg, out)
    elif isinstance(expr, InList):
        _literal_types(expr.arg, out)
        out.extend(type(v) for v in expr.values)


def _compile_cached(kind: str, expr: Expr, layout: Mapping[str, int], build):
    try:
        literal_types: list = []
        _literal_types(expr, literal_types)
        key = (kind, expr, tuple(literal_types), tuple(sorted(layout.items())))
        cached = _COMPILE_CACHE.get(key)
    except TypeError:  # unhashable literal somewhere in the expression
        return build(expr, layout)
    if cached is None:
        cached = build(expr, layout)
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_LIMIT:
            _COMPILE_CACHE.clear()
        _COMPILE_CACHE[key] = cached
    return cached


def compile_expr_columnar(
    expr: Expr, layout: Mapping[str, int]
) -> ColumnarEvaluator:
    """Compile ``expr`` into a column-at-a-time evaluator (memoized).

    The returned callable maps ``(columns, selection, length)`` to a dense
    list holding the expression's value per visible row.
    """
    return _compile_cached("expr", expr, layout, _compile_expr_columnar)


def _compile_expr_columnar(
    expr: Expr, layout: Mapping[str, int]
) -> ColumnarEvaluator:
    from repro.exec.vector import as_values, gather

    if isinstance(expr, Literal):
        value = expr.value

        def _lit(cols: Sequence, sel, n: int) -> list:
            return [value] * (len(sel) if sel is not None else n)

        return _lit
    if isinstance(expr, ColumnRef):
        idx = _resolve_layout(expr.name, layout)

        def _col(cols: Sequence, sel, n: int) -> list:
            column = cols[idx]
            if sel is None:
                values = as_values(column)
                return values if isinstance(values, list) else list(values)
            return gather(column, sel)

        return _col
    if isinstance(expr, Comparison):
        fn = _COMPARISON_OPS[expr.op]
        return _columnar_binary(expr.left, expr.right, fn, layout)
    if isinstance(expr, Arith):
        fn = _ARITH_OPS[expr.op]
        return _columnar_binary(expr.left, expr.right, fn, layout)
    if isinstance(expr, Like):
        arg = compile_expr_columnar(expr.arg, layout)
        match = _like_matcher(expr.pattern)

        def _like(cols: Sequence, sel, n: int) -> list:
            return [None if v is None else match(v) for v in arg(cols, sel, n)]

        return _like
    if isinstance(expr, InList):
        arg = compile_expr_columnar(expr.arg, layout)
        values = frozenset(expr.values)

        def _in(cols: Sequence, sel, n: int) -> list:
            return [None if v is None else v in values for v in arg(cols, sel, n)]

        return _in
    if isinstance(expr, IsNull):
        arg = compile_expr_columnar(expr.arg, layout)
        if expr.negated:
            return lambda cols, sel, n: [v is not None for v in arg(cols, sel, n)]
        return lambda cols, sel, n: [v is None for v in arg(cols, sel, n)]
    if isinstance(expr, Not):
        arg = compile_expr_columnar(expr.arg, layout)

        def _not(cols: Sequence, sel, n: int) -> list:
            return [None if v is None else (not v) for v in arg(cols, sel, n)]

        return _not
    # Generic fallback (boolean combinations in value position, future node
    # types): evaluate row-wise over reconstructed tuples.
    rowwise = compile_expr(expr, layout)

    def _fallback(cols: Sequence, sel, n: int) -> list:
        out = []
        for i in _candidates(sel, n):
            out.append(rowwise(tuple(c[i] for c in cols)))
        return out

    return _fallback


def _columnar_binary(
    left: Expr, right: Expr, fn: Callable[[Any, Any], Any], layout: Mapping[str, int]
) -> ColumnarEvaluator:
    """NULL-propagating binary evaluator with literal-operand fast paths."""
    if isinstance(right, Literal):
        k = right.value
        lv = compile_expr_columnar(left, layout)
        if k is None:
            return lambda cols, sel, n: [None] * (len(sel) if sel is not None else n)
        return lambda cols, sel, n: [
            None if v is None else fn(v, k) for v in lv(cols, sel, n)
        ]
    if isinstance(left, Literal):
        k = left.value
        rv = compile_expr_columnar(right, layout)
        if k is None:
            return lambda cols, sel, n: [None] * (len(sel) if sel is not None else n)
        return lambda cols, sel, n: [
            None if v is None else fn(k, v) for v in rv(cols, sel, n)
        ]
    lv = compile_expr_columnar(left, layout)
    rv = compile_expr_columnar(right, layout)
    return lambda cols, sel, n: [
        None if a is None or b is None else fn(a, b)
        for a, b in zip(lv(cols, sel, n), rv(cols, sel, n))
    ]


def compile_predicate_columnar(
    expr: Expr, layout: Mapping[str, int]
) -> SelectionEvaluator:
    """Compile ``expr`` into a selection-vector refiner (WHERE semantics).

    The returned callable (memoized per (expr, layout) shape) maps
    ``(columns, selection, length)`` to the refined selection: the subset
    of visible row indices where the predicate evaluates to TRUE (NULL and
    FALSE filter out).  When every visible row passes, the input
    ``selection`` object itself is returned so callers can detect the
    all-selected fast path with an identity check.
    """
    return _compile_cached("pred", expr, layout, _compile_predicate_columnar)


def _compile_predicate_columnar(
    expr: Expr, layout: Mapping[str, int]
) -> SelectionEvaluator:
    if isinstance(expr, BoolOp) and expr.op == "AND":
        # Conjunction chain: each conjunct refines the survivors of the
        # previous one, so later (often more expensive) conjuncts only see
        # already-filtered rows.
        parts = [compile_predicate_columnar(a, layout) for a in expr.args]
        masks = [getattr(p, "_numpy_mask", None) for p in parts]
        all_maskable = all(m is not None for m in masks)

        def _and(cols: Sequence, sel, n: int):
            # A full-prefix ``range`` selection (how table scans window
            # into cached whole-column vectors) is just as dense as None.
            if all_maskable and (
                sel is None
                or (type(sel) is range and sel.start == 0 and sel.step == 1)
                and len(sel) == n
            ):
                # Dense input and every conjunct is a vectorizable
                # column-vs-literal: AND the boolean masks directly and
                # materialize survivor indices once, instead of a
                # flatnonzero + index-gather round per conjunct.
                combined = _combined_mask(masks, cols, n)
                if combined is not _NO_NUMPY_PATH:
                    from repro.exec import vector

                    if combined.all():
                        return sel
                    return vector._np.flatnonzero(combined)
            for part in parts:
                sel = part(cols, sel, n)
                if sel is not None and len(sel) == 0:
                    return sel
            return sel

        if all_maskable:
            _and._numpy_mask = lambda cols, n: _combined_mask(  # type: ignore[attr-defined]
                masks, cols, n
            )
        return _and
    if isinstance(expr, Comparison):
        fn = _COMPARISON_OPS[expr.op]
        left, right = expr.left, expr.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return _selection_vs_literal(left, right.value, fn, layout, expr.op)
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            flipped = lambda a, b: fn(b, a)  # noqa: E731
            # ``=``/``<>`` are symmetric, so the dictionary code-compare
            # fast path keyed on the op stays valid with the operands
            # flipped; order ops only ever use the flipped ``fn``.
            return _selection_vs_literal(
                right, left.value, flipped, layout, expr.op
            )
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            li = _resolve_layout(left.name, layout)
            ri = _resolve_layout(right.name, layout)

            def _col_col(cols: Sequence, sel, n: int):
                ca, cb = cols[li], cols[ri]
                np_sel = _numpy_selection_pair(ca, cb, sel, n, fn)
                if np_sel is not _NO_NUMPY_PATH:
                    return np_sel
                kept = [
                    i
                    for i in _candidates(sel, n)
                    if (a := ca[i]) is not None
                    and (b := cb[i]) is not None
                    and fn(a, b)
                ]
                return _refined(kept, sel, n)

            def _col_col_mask(cols: Sequence, n: int):
                from repro.exec import vector

                np = vector._np
                ca, cb = cols[li], cols[ri]
                if (
                    np is None
                    or not vector.numpy_enabled()
                    or not isinstance(ca, np.ndarray)
                    or not isinstance(cb, np.ndarray)
                    or ca.dtype == object
                    or cb.dtype == object
                ):
                    return _NO_NUMPY_PATH
                try:
                    return fn(ca[:n], cb[:n])
                except (TypeError, ValueError):
                    return _NO_NUMPY_PATH

            _col_col._numpy_mask = _col_col_mask  # type: ignore[attr-defined]
            return _col_col
    if isinstance(expr, InList) and isinstance(expr.arg, ColumnRef):
        idx = _resolve_layout(expr.arg.name, layout)
        values = frozenset(expr.values)

        def _in(cols: Sequence, sel, n: int):
            column = cols[idx]
            dict_sel = _dict_selection_in(column, sel, n, values)
            if dict_sel is not _NO_NUMPY_PATH:
                return dict_sel
            kept = [
                i
                for i in _candidates(sel, n)
                if (v := column[i]) is not None and v in values
            ]
            return _refined(kept, sel, n)

        def _in_mask(cols: Sequence, n: int):
            from repro.exec import vector

            dv = vector.dict_vector(cols[idx])
            if dv is None:
                return _NO_NUMPY_PATH
            codes = [
                c
                for c in (
                    dv.index.get(v) for v in values if type(v) is str
                )
                if c is not None
            ]
            return vector._np.isin(dv.codes[:n], codes)

        _in._numpy_mask = _in_mask  # type: ignore[attr-defined]
        return _in
    if isinstance(expr, Like) and isinstance(expr.arg, ColumnRef):
        idx = _resolve_layout(expr.arg.name, layout)
        match = _like_matcher(expr.pattern)

        def _like(cols: Sequence, sel, n: int):
            column = cols[idx]
            dict_sel = _dict_selection_vs_dictionary(column, sel, n, match)
            if dict_sel is not _NO_NUMPY_PATH:
                return dict_sel
            kept = [
                i
                for i in _candidates(sel, n)
                if (v := column[i]) is not None and match(v)
            ]
            return _refined(kept, sel, n)

        def _like_mask(cols: Sequence, n: int):
            from repro.exec import vector

            dv = vector.dict_vector(cols[idx])
            if dv is None:
                return _NO_NUMPY_PATH
            mask = _dictionary_value_mask(dv, match, vector._np)
            return mask[dv.codes[:n]] if mask is not _NO_NUMPY_PATH else mask

        _like._numpy_mask = _like_mask  # type: ignore[attr-defined]
        return _like
    if isinstance(expr, IsNull) and isinstance(expr.arg, ColumnRef):
        idx = _resolve_layout(expr.arg.name, layout)
        negated = expr.negated

        def _isnull(cols: Sequence, sel, n: int):
            column = cols[idx]
            if getattr(column, "is_dictionary", False):
                # Dictionary columns hold no NULLs (a NULL demotes the
                # whole column to a list before any view is built).
                return sel if negated else []
            if negated:
                kept = [i for i in _candidates(sel, n) if column[i] is not None]
            else:
                kept = [i for i in _candidates(sel, n) if column[i] is None]
            return _refined(kept, sel, n)

        return _isnull
    if isinstance(expr, Literal):
        value = expr.value
        if value is not None and value:
            return lambda cols, sel, n: sel
        return lambda cols, sel, n: []
    # Generic fallback: evaluate as a value column, keep the truthy rows
    # (None is falsy, matching WHERE semantics).
    evaluator = compile_expr_columnar(expr, layout)

    def _generic(cols: Sequence, sel, n: int):
        values = evaluator(cols, sel, n)
        if sel is None:
            kept = [i for i, v in enumerate(values) if v]
        else:
            kept = [s for s, v in zip(sel, values) if v]
        return _refined(kept, sel, n)

    return _generic


def _selection_vs_literal(
    ref: ColumnRef,
    k: Any,
    fn: Callable[[Any, Any], Any],
    layout: Mapping[str, int],
    op: str,
) -> SelectionEvaluator:
    """column-vs-constant comparison: the hottest filter shape."""
    idx = _resolve_layout(ref.name, layout)
    if k is None:
        # Comparison with NULL is NULL for every row -> nothing passes.
        return lambda cols, sel, n: []

    def _cmp_lit(cols: Sequence, sel, n: int):
        column = cols[idx]
        dict_sel = _dict_selection(column, sel, n, fn, k, op)
        if dict_sel is not _NO_NUMPY_PATH:
            return dict_sel
        np_sel = _numpy_selection(column, sel, n, fn, k)
        if np_sel is not _NO_NUMPY_PATH:
            return np_sel
        kept = [
            i
            for i in _candidates(sel, n)
            if (v := column[i]) is not None and fn(v, k)
        ]
        return _refined(kept, sel, n)

    def _mask(cols: Sequence, n: int):
        """Dense boolean mask over rows [0, n), or _NO_NUMPY_PATH."""
        from repro.exec import vector

        np = vector._np
        column = cols[idx]
        dv = vector.dict_vector(column)
        if dv is not None:
            return _dict_code_mask(dv, dv.codes[:n], fn, k, op, np)
        if (
            np is None
            or not vector.numpy_enabled()
            or not isinstance(column, np.ndarray)
            or column.dtype == object
        ):
            return _NO_NUMPY_PATH
        try:
            return fn(column[:n], k)
        except (TypeError, ValueError):
            return _NO_NUMPY_PATH

    _cmp_lit._numpy_mask = _mask  # type: ignore[attr-defined]
    return _cmp_lit


# ---------------------------------------------------------------------- #
# dictionary-encoded fast paths
# ---------------------------------------------------------------------- #
#
# Dictionary columns arrive as ``repro.exec.vector.DictVector``: an int64
# code ndarray plus the column's value dictionary.  String predicates then
# never touch the strings row-wise — equality/inequality compare codes
# against one literal lookup, and anything evaluated *per value* (order
# comparisons, LIKE) runs once over the dictionary (size = distinct
# values) and broadcasts to rows by indexing the per-value mask with the
# codes.  A literal missing from the dictionary is a constant-false (or,
# for ``<>``, constant-true: dictionary columns hold no NULLs) predicate.


def _dict_code_mask(dv, codes, fn, k, op: str, np):
    """Boolean mask aligned with ``codes``, or _NO_NUMPY_PATH."""
    if op == "=" or op == "<>":
        code = dv.index.get(k) if type(k) is str else None
        if code is None:
            mask = np.zeros(len(codes), dtype=bool)
            return ~mask if op == "<>" else mask
        return (codes != code) if op == "<>" else (codes == code)
    values = dv.values
    try:
        per_value = np.fromiter(
            (fn(v, k) for v in values), dtype=bool, count=len(values)
        )
    except TypeError:  # incomparable literal: keep exact row-path errors
        return _NO_NUMPY_PATH
    if not len(per_value):
        return np.zeros(len(codes), dtype=bool)
    return per_value[codes]


def _dictionary_value_mask(dv, match, np):
    """``match`` evaluated once per dictionary value, as a code-indexed mask."""
    values = dv.values
    if not values:
        return _NO_NUMPY_PATH
    return np.fromiter((match(v) for v in values), dtype=bool, count=len(values))


def _mask_to_selection(mask, sel, n: int, np, vector):
    """Shared mask -> refined-selection tail (the _refined conventions)."""
    if sel is None:
        kept = np.flatnonzero(mask)
        return None if len(kept) == n else kept
    cand = vector.as_index_array(sel)
    if mask.all():
        return sel
    return cand[mask]


def _dict_selection(column, sel, n: int, fn, k, op: str):
    """Comparison on a dictionary column's codes (numpy or pure Python)."""
    from repro.exec import vector

    if not getattr(column, "is_dictionary", False):
        return _NO_NUMPY_PATH
    dv = vector.dict_vector(column)
    if dv is None:
        # Raw DictColumn storage (the no-numpy leg): integer-compare the
        # code buffer in Python — still beats decoding every row.
        if op != "=" and op != "<>":
            return _NO_NUMPY_PATH
        code = column.index.get(k) if type(k) is str else None
        if code is None:
            return [] if op == "=" else sel
        codes = column.codes
        if op == "=":
            kept = [i for i in _candidates(sel, n) if codes[i] == code]
        else:
            kept = [i for i in _candidates(sel, n) if codes[i] != code]
        return _refined(kept, sel, n)
    np = vector._np
    if op == "=" or op == "<>":
        # One hash lookup replaces every per-row string compare.
        code = dv.index.get(k) if type(k) is str else None
        if code is None:
            if op == "=":
                return []
            return sel  # <> a value the column never holds: all rows pass
        codes = dv.codes
        if sel is None:
            mask = codes[:n] == code if op == "=" else codes[:n] != code
            kept = np.flatnonzero(mask)
            return None if len(kept) == n else kept
        if type(sel) is range and sel.step == 1:
            # Scan batches window into whole-column vectors with a range
            # selection: slice the codes (zero-copy) instead of paying an
            # arange + fancy-index gather per batch.
            window = codes[sel.start : sel.stop]
            mask = window == code if op == "=" else window != code
            if mask.all():
                return sel
            kept = np.flatnonzero(mask)
            return kept + sel.start if sel.start else kept
        cand = vector.as_index_array(sel)
        mask = codes[cand] == code if op == "=" else codes[cand] != code
        if mask.all():
            return sel
        return cand[mask]
    codes = dv.codes[:n] if sel is None else dv.codes[vector.as_index_array(sel)]
    mask = _dict_code_mask(dv, codes, fn, k, op, np)
    if mask is _NO_NUMPY_PATH:
        return _NO_NUMPY_PATH
    return _mask_to_selection(mask, sel, n, np, vector)


def _dict_selection_in(column, sel, n: int, values):
    """IN-list membership over translated codes (``np.isin`` / int set)."""
    from repro.exec import vector

    if not getattr(column, "is_dictionary", False):
        return _NO_NUMPY_PATH
    index = column.index
    codes = [
        c
        for c in (index.get(v) for v in values if type(v) is str)
        if c is not None
    ]
    if not codes:
        return []
    dv = vector.dict_vector(column)
    if dv is None:
        wanted = set(codes)
        col_codes = column.codes
        kept = [i for i in _candidates(sel, n) if col_codes[i] in wanted]
        return _refined(kept, sel, n)
    np = vector._np
    col_codes = (
        dv.codes[:n] if sel is None else dv.codes[vector.as_index_array(sel)]
    )
    return _mask_to_selection(np.isin(col_codes, codes), sel, n, np, vector)


def _dict_selection_vs_dictionary(column, sel, n: int, match):
    """A per-value predicate (LIKE) broadcast through the codes."""
    from repro.exec import vector

    if not getattr(column, "is_dictionary", False):
        return _NO_NUMPY_PATH
    dv = vector.dict_vector(column)
    if dv is None:
        values = column.values
        wanted = {c for c, v in enumerate(values) if match(v)}
        if not wanted:
            return []
        col_codes = column.codes
        kept = [i for i in _candidates(sel, n) if col_codes[i] in wanted]
        return _refined(kept, sel, n)
    np = vector._np
    per_value = _dictionary_value_mask(dv, match, np)
    if per_value is _NO_NUMPY_PATH:
        return []
    col_codes = (
        dv.codes[:n] if sel is None else dv.codes[vector.as_index_array(sel)]
    )
    return _mask_to_selection(per_value[col_codes], sel, n, np, vector)


def _combined_mask(mask_fns, cols: Sequence, n: int):
    """AND of per-conjunct dense masks; _NO_NUMPY_PATH when any declines."""
    combined = None
    for mask_fn in mask_fns:
        mask = mask_fn(cols, n)
        if mask is _NO_NUMPY_PATH:
            return _NO_NUMPY_PATH
        combined = mask if combined is None else combined & mask
    return combined


def compile_predicate_mask(expr: Expr, layout: Mapping[str, int]):
    """``expr`` as a dense boolean-mask evaluator, or None.

    Returns ``(columns, n) -> bool ndarray | None`` when every piece of the
    predicate compiles to a vectorizable mask shape (column-vs-literal /
    column-vs-column comparisons and conjunctions thereof); None when the
    predicate has no fully-vectorized form, so callers can keep per-row
    checks instead of paying a whole-relation Python pass.  The evaluator
    itself returns None when the columns turn out not to be ndarrays at
    run time.
    """
    pred = compile_predicate_columnar(expr, layout)
    mask_fn = getattr(pred, "_numpy_mask", None)
    if mask_fn is None:
        return None

    def run(cols: Sequence, n: int):
        mask = mask_fn(cols, n)
        return None if mask is _NO_NUMPY_PATH else mask

    return run


#: Sentinel distinguishing "no numpy fast path applies" from a legitimate
#: all-selected result (which is ``None`` / the input selection object).
_NO_NUMPY_PATH = object()


def _numpy_selection(column, sel, n: int, fn, k):
    """Vectorized comparison when the column is a numpy array.

    Returns the refined selection (following the :func:`_refined`
    conventions; refined selections stay ndarrays so downstream gathers
    never leave the array domain), or :data:`_NO_NUMPY_PATH` when the
    caller must use the pure-Python fallback.
    """
    from repro.exec import vector

    np = vector._np
    if np is None or not vector.numpy_enabled():
        return _NO_NUMPY_PATH
    if not isinstance(column, np.ndarray) or column.dtype == object:
        return _NO_NUMPY_PATH
    try:
        if sel is None:
            mask = fn(column[:n], k)
            kept = np.flatnonzero(mask)
            return None if len(kept) == n else kept
        cand = vector.as_index_array(sel)
        mask = fn(column[cand], k)
        if mask.all():
            return sel
        return cand[mask]
    except (TypeError, ValueError):  # incomparable dtype: use the fallback
        return _NO_NUMPY_PATH


def _numpy_selection_pair(ca, cb, sel, n: int, fn):
    """Vectorized column-vs-column comparison (both columns ndarrays).

    Typed ndarray columns cannot hold NULLs, so the mask needs no
    NULL-handling; anything else falls back to the pure-Python loop.
    """
    from repro.exec import vector

    np = vector._np
    if np is None or not vector.numpy_enabled():
        return _NO_NUMPY_PATH
    if not (isinstance(ca, np.ndarray) and isinstance(cb, np.ndarray)):
        return _NO_NUMPY_PATH
    if ca.dtype == object or cb.dtype == object:
        return _NO_NUMPY_PATH
    try:
        if sel is None:
            mask = fn(ca[:n], cb[:n])
            kept = np.flatnonzero(mask)
            return None if len(kept) == n else kept
        cand = vector.as_index_array(sel)
        mask = fn(ca[cand], cb[cand])
        if mask.all():
            return sel
        return cand[mask]
    except (TypeError, ValueError):  # incomparable dtypes: use the fallback
        return _NO_NUMPY_PATH


# ---------------------------------------------------------------------- #
# analysis / rewriting helpers
# ---------------------------------------------------------------------- #


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BoolOp) and expr.op == "AND":
        out: list[Expr] = []
        for arg in expr.args:
            out.extend(split_conjuncts(arg))
        return out
    return [expr]


def conjoin(conjuncts: Sequence[Expr]) -> Expr | None:
    """Inverse of :func:`split_conjuncts`; None for an empty list."""
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return and_(*conjuncts)


def referenced_columns(expr: Expr) -> set[str]:
    """All column names mentioned anywhere in the expression."""
    out: set[str] = set()
    _collect_columns(expr, out)
    return out


def _collect_columns(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, ColumnRef):
        out.add(expr.name)
    elif isinstance(expr, (Comparison, Arith)):
        _collect_columns(expr.left, out)
        _collect_columns(expr.right, out)
    elif isinstance(expr, BoolOp):
        for arg in expr.args:
            _collect_columns(arg, out)
    elif isinstance(expr, Not):
        _collect_columns(expr.arg, out)
    elif isinstance(expr, (Like, InList, IsNull)):
        _collect_columns(expr.arg, out)


def rename_columns(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Return a copy of ``expr`` with column names substituted via ``mapping``.

    Names absent from the mapping are kept as-is.
    """
    if isinstance(expr, ColumnRef):
        return ColumnRef(mapping.get(expr.name, expr.name))
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op, rename_columns(expr.left, mapping), rename_columns(expr.right, mapping)
        )
    if isinstance(expr, Arith):
        return Arith(
            expr.op, rename_columns(expr.left, mapping), rename_columns(expr.right, mapping)
        )
    if isinstance(expr, BoolOp):
        return BoolOp(expr.op, tuple(rename_columns(a, mapping) for a in expr.args))
    if isinstance(expr, Not):
        return Not(rename_columns(expr.arg, mapping))
    if isinstance(expr, Like):
        return Like(rename_columns(expr.arg, mapping), expr.pattern)
    if isinstance(expr, InList):
        return InList(rename_columns(expr.arg, mapping), expr.values)
    if isinstance(expr, IsNull):
        return IsNull(rename_columns(expr.arg, mapping), expr.negated)
    raise PlanError(f"cannot rename columns in {expr!r}")


def param_slots(expr: Expr) -> set[int]:
    """Fingerprint slots of every :class:`ParamLiteral` under ``expr``."""
    out: set[int] = set()
    _collect_params(expr, out)
    return out


def _collect_params(expr: Expr, out: set[int]) -> None:
    if isinstance(expr, ParamLiteral):
        out.add(expr.slot)
    elif isinstance(expr, (Comparison, Arith)):
        _collect_params(expr.left, out)
        _collect_params(expr.right, out)
    elif isinstance(expr, BoolOp):
        for arg in expr.args:
            _collect_params(arg, out)
    elif isinstance(expr, (Not, Like, InList, IsNull)):
        _collect_params(expr.arg, out)


def substitute_params(expr: Expr, values: Sequence[Any]) -> Expr:
    """Bind a plan template's parameter literals to fresh values.

    Every :class:`ParamLiteral` becomes a plain :class:`Literal` holding
    ``values[slot]``; subtrees without parameters are returned *as the
    same object*, so rebinding shares everything it can with the cached
    template.
    """
    if isinstance(expr, ParamLiteral):
        return Literal(values[expr.slot])
    if isinstance(expr, (Comparison, Arith)):
        left = substitute_params(expr.left, values)
        right = substitute_params(expr.right, values)
        if left is expr.left and right is expr.right:
            return expr
        return type(expr)(expr.op, left, right)
    if isinstance(expr, BoolOp):
        args = tuple(substitute_params(a, values) for a in expr.args)
        if all(a is b for a, b in zip(args, expr.args)):
            return expr
        return BoolOp(expr.op, args)
    if isinstance(expr, Not):
        arg = substitute_params(expr.arg, values)
        return expr if arg is expr.arg else Not(arg)
    if isinstance(expr, Like):
        arg = substitute_params(expr.arg, values)
        return expr if arg is expr.arg else Like(arg, expr.pattern)
    if isinstance(expr, InList):
        arg = substitute_params(expr.arg, values)
        return expr if arg is expr.arg else InList(arg, expr.values)
    if isinstance(expr, IsNull):
        arg = substitute_params(expr.arg, values)
        return expr if arg is expr.arg else IsNull(arg, expr.negated)
    return expr


def substitute_columns(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace column references by whole expressions (e.g. a constant label).

    Used by the graph-agnostic transformation to splice GRAPH_TABLE output
    columns into the outer query's predicates and projections.
    """
    if isinstance(expr, ColumnRef):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op,
            substitute_columns(expr.left, mapping),
            substitute_columns(expr.right, mapping),
        )
    if isinstance(expr, Arith):
        return Arith(
            expr.op,
            substitute_columns(expr.left, mapping),
            substitute_columns(expr.right, mapping),
        )
    if isinstance(expr, BoolOp):
        return BoolOp(expr.op, tuple(substitute_columns(a, mapping) for a in expr.args))
    if isinstance(expr, Not):
        return Not(substitute_columns(expr.arg, mapping))
    if isinstance(expr, Like):
        return Like(substitute_columns(expr.arg, mapping), expr.pattern)
    if isinstance(expr, InList):
        return InList(substitute_columns(expr.arg, mapping), expr.values)
    if isinstance(expr, IsNull):
        return IsNull(substitute_columns(expr.arg, mapping), expr.negated)
    raise PlanError(f"cannot substitute columns in {expr!r}")


def is_equi_join_condition(expr: Expr) -> tuple[str, str] | None:
    """If ``expr`` is ``colA = colB``, return the pair of column names."""
    if (
        isinstance(expr, Comparison)
        and expr.op == "="
        and isinstance(expr.left, ColumnRef)
        and isinstance(expr.right, ColumnRef)
    ):
        return (expr.left.name, expr.right.name)
    return None
