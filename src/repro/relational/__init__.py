"""The relational engine substrate.

This subpackage is the reproduction's stand-in for DuckDB: a small columnar,
single-threaded relational engine with a catalog, a scalar expression
language, logical and physical plan algebras, a cost-based optimizer, and a
row-at-a-time executor with a memory budget.

All compared systems in the paper share one execution engine and differ only
in how plans are produced (and whether the graph index is available to the
physical layer); this package provides that shared engine.
"""

from repro.relational.catalog import Catalog
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType

__all__ = ["Catalog", "Column", "TableSchema", "Table", "DataType"]
