"""Backwards-compatible façade over the converged execution engine.

The execution context, result type and plan runner moved to
:mod:`repro.exec.context` when the engine became batched/streaming (one
runtime now serves both the relational and the graph physical layers).
Every historical import site — ``from repro.relational.executor import
ExecutionContext`` and friends — keeps working through this module.
"""

from __future__ import annotations

from repro.exec.context import (
    DEFAULT_BATCH_SIZE,
    Buffer,
    ExecutionContext,
    QueryResult,
    execute_plan,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "Buffer",
    "ExecutionContext",
    "QueryResult",
    "execute_plan",
]
