"""Execution context: memory budget, counters, and the plan runner.

The context is threaded through every physical operator.  Its single most
important job for the reproduction is the **memory budget**: the paper's
evaluation reports OOM entries (RelGoNoEI on the 4-clique QC3; Kùzu on
IC3-1), and we reproduce those by capping the number of rows any single
materialized intermediate may hold.  Operators call
:meth:`ExecutionContext.charge` as they buffer rows; exceeding the budget
raises :class:`repro.errors.OutOfMemoryError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import OutOfMemoryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.relational.physical import PhysicalOperator


@dataclass
class ExecutionContext:
    """Mutable per-query execution state.

    Attributes:
        memory_budget_rows: maximum rows a single materialized intermediate
            may hold; ``None`` means unlimited.
        rows_produced: total rows emitted by all operators (a cheap proxy for
            work done, used by tests and the benchmark reports).
        operator_rows: per-operator-label row counts for plan forensics.
    """

    memory_budget_rows: int | None = None
    rows_produced: int = 0
    operator_rows: dict[str, int] = field(default_factory=dict)
    start_time: float = field(default_factory=time.perf_counter)

    def charge(self, rows: int, label: str = "") -> None:
        """Account for ``rows`` buffered rows; raise OOM when over budget."""
        self.rows_produced += rows
        if label:
            self.operator_rows[label] = self.operator_rows.get(label, 0) + rows
        if self.memory_budget_rows is not None and rows > self.memory_budget_rows:
            raise OutOfMemoryError(rows, self.memory_budget_rows)

    def check_size(self, rows: int) -> None:
        """Raise OOM if a buffer of ``rows`` rows would exceed the budget."""
        if self.memory_budget_rows is not None and rows > self.memory_budget_rows:
            raise OutOfMemoryError(rows, self.memory_budget_rows)

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.start_time


@dataclass
class QueryResult:
    """The outcome of executing a physical plan."""

    columns: list[str]
    rows: list[tuple[Any, ...]]
    execution_time: float
    rows_produced: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def sorted_rows(self) -> list[tuple[Any, ...]]:
        """Rows in a canonical order, for order-insensitive comparisons."""
        return sorted(self.rows, key=_sort_key)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


def _sort_key(row: tuple) -> tuple:
    # None sorts before everything; mixed types sort by type name first.
    return tuple((v is not None, type(v).__name__, v) for v in row)


def execute_plan(
    plan: "PhysicalOperator",
    memory_budget_rows: int | None = None,
) -> QueryResult:
    """Run a physical plan to completion and package the result."""
    ctx = ExecutionContext(memory_budget_rows=memory_budget_rows)
    rows = plan.execute(ctx)
    return QueryResult(
        columns=list(plan.output_columns),
        rows=rows,
        execution_time=ctx.elapsed,
        rows_produced=ctx.rows_produced,
    )
