"""The catalog: named tables, their statistics, property graphs and indexes.

The catalog is the single shared-state object of the engine.  Systems under
comparison receive the *same* catalog (same tables, same graph index) and
differ only in which parts of it their optimizer consults — e.g. the
DuckDB-like baseline ignores the graph index during planning even when it is
present, exactly as in the paper's setup.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING, Any

from repro.errors import CatalogError
from repro.relational.schema import TableSchema
from repro.relational.statistics import TableStats, collect_stats
from repro.relational.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graph.index import GraphIndex
    from repro.graph.rgmapping import RGMapping


class Catalog:
    """A named collection of tables plus graph metadata layered on top."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        self._histogram_stats: dict[str, TableStats] = {}
        self._graphs: dict[str, "RGMapping"] = {}
        self._graph_indexes: dict[str, "GraphIndex"] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic schema/statistics epoch.

        Bumped by every change that can invalidate a cached query plan —
        DDL (tables, graphs, graph indexes) and explicit statistics
        refresh.  The plan cache stamps each entry with the version it was
        optimized under and discards entries whose stamp is stale.  Plain
        data appends do NOT bump it: snapshot pinning already gives cached
        plans a consistent view, and re-optimizing per append would defeat
        the cache.
        """
        return self._version

    def _bump_version(self) -> None:
        self._version += 1

    # ------------------------------------------------------------------ #
    # tables
    # ------------------------------------------------------------------ #

    def create_table(
        self,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]] | None = None,
        validate: bool = True,
    ) -> Table:
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema, rows=rows, validate=validate)
        self._tables[schema.name] = table
        self._bump_version()
        return table

    def add_table(self, table: Table) -> None:
        if table.schema.name in self._tables:
            raise CatalogError(f"table {table.schema.name!r} already exists")
        self._tables[table.schema.name] = table
        self._bump_version()

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def analyze(self, histogram_buckets: int = 32) -> None:
        """(Re)collect statistics for every table.

        Both the low-order tier and the histogram tier are refreshed;
        individual optimizers pick the tier they are allowed to see.
        """
        for name, table in self._tables.items():
            self._stats[name] = collect_stats(table, histogram_buckets=0)
            self._histogram_stats[name] = collect_stats(
                table, histogram_buckets=histogram_buckets
            )
        self._bump_version()

    def stats(self, name: str, histograms: bool = False) -> TableStats:
        """Statistics for ``name``; collected lazily if analyze() wasn't run."""
        store = self._histogram_stats if histograms else self._stats
        if name not in store:
            table = self.table(name)
            buckets = 32 if histograms else 0
            store[name] = collect_stats(table, histogram_buckets=buckets)
        return store[name]

    # ------------------------------------------------------------------ #
    # property graphs & indexes
    # ------------------------------------------------------------------ #

    def register_graph(self, mapping: "RGMapping") -> None:
        if mapping.name in self._graphs:
            raise CatalogError(f"property graph {mapping.name!r} already exists")
        self._graphs[mapping.name] = mapping
        self._bump_version()

    def graph(self, name: str) -> "RGMapping":
        try:
            return self._graphs[name]
        except KeyError:
            raise CatalogError(f"no property graph named {name!r}") from None

    def has_graph(self, name: str) -> bool:
        return name in self._graphs

    def graph_names(self) -> list[str]:
        return sorted(self._graphs)

    def default_graph(self) -> "RGMapping":
        """The sole registered graph; raises if zero or several exist."""
        if len(self._graphs) != 1:
            raise CatalogError(
                f"expected exactly one property graph, found {sorted(self._graphs)}"
            )
        return next(iter(self._graphs.values()))

    def register_graph_index(self, index: "GraphIndex") -> None:
        self._graph_indexes[index.graph_name] = index
        self._bump_version()

    def graph_index(self, graph_name: str) -> "GraphIndex | None":
        return self._graph_indexes.get(graph_name)

    def drop_graph_index(self, graph_name: str) -> None:
        self._graph_indexes.pop(graph_name, None)
        self._bump_version()

    def __repr__(self) -> str:
        return (
            f"Catalog(tables={len(self._tables)}, graphs={len(self._graphs)}, "
            f"indexes={len(self._graph_indexes)})"
        )
