"""Lowering: logical plans → physical operators.

Two modes:

* **plain** — scans, hash joins, filters, projections (the DuckDB baseline).
* **graph-indexed** — GRainDB's improvement (Sec 4.1): eligible hash joins
  are replaced by *predefined joins*.  A join ``edge.fk = vertex.pk`` whose
  edge tuples are already flowing becomes a :class:`RowIdJoin` following the
  EV-index pointer; a join ``vertex.pk = edge.fk`` whose vertex tuples are
  flowing becomes a :class:`CsrJoin` walking the VE-index.  Joins the order
  does not make eligible (the paper's GRainDB weakness — "relational
  optimizers can occasionally alter the order of EVJoin operations, making
  graph index ineffective") silently fall back to hash joins.

The substitution needs leaves to emit hidden columns (vertex rowids, edge
EV pointers), so lowering runs in two passes: an analysis pass walks the
join tree, decides each join's strategy and records which scans must emit
what; the build pass then constructs operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.relational.catalog import Catalog
from repro.relational.expr import (
    Expr,
    conjoin,
    is_equi_join_condition,
    split_conjuncts,
)
from repro.relational.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.relational.physical import (
    AggregateOp,
    CsrJoin,
    DistinctOp,
    FilterOp,
    HashJoin,
    LimitOp,
    NestedLoopJoin,
    PhysicalOperator,
    ProjectOp,
    RowIdJoin,
    SeqScan,
    SortOp,
    TopKOp,
)


def ptr_column(edge_alias: str, endpoint: str) -> str:
    """Name of the hidden EV-pointer column for one endpoint of an edge scan."""
    return f"{edge_alias}._ptr_{endpoint}"


def rowid_column(alias: str) -> str:
    return f"{alias}._rowid"


@dataclass
class _JoinDecision:
    strategy: str  # "hash" | "rowid" | "csr" | "nl"
    # rowid: pointer column to follow + matched condition index
    pointer: str | None = None
    matched: tuple[str, str] | None = None
    # csr: probe vertex alias + adjacency key + far endpoint
    vertex_alias: str | None = None
    adjacency_key: tuple[str, str, str] | None = None
    far_endpoint: str | None = None
    swap: bool = False


@dataclass
class _Analysis:
    decisions: dict[int, _JoinDecision] = field(default_factory=dict)
    # edge scan alias -> endpoints ("src"/"dst") whose pointers must be emitted
    pointer_reqs: dict[str, set[str]] = field(default_factory=dict)
    # vertex aliases whose rowid must be emitted by whatever attaches them
    rowid_reqs: set[str] = field(default_factory=set)


class PhysicalPlanner:
    """Lowers logical plans, optionally substituting predefined joins."""

    def __init__(
        self,
        catalog: Catalog,
        use_graph_index: bool = False,
        graph_name: str | None = None,
    ):
        self.catalog = catalog
        self.use_graph_index = use_graph_index
        self.mapping = None
        self.index = None
        if use_graph_index:
            if graph_name is None:
                graph_name = catalog.default_graph().name
            self.mapping = catalog.graph(graph_name)
            self.index = catalog.graph_index(graph_name)
            if self.index is None:
                raise PlanError(
                    f"graph {graph_name!r} has no graph index; build it first"
                )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def lower(self, node: LogicalNode) -> PhysicalOperator:
        analysis = _Analysis()
        if self.use_graph_index:
            self._analyze(node, analysis)
        return self._build(node, analysis)

    # ------------------------------------------------------------------ #
    # analysis pass
    # ------------------------------------------------------------------ #

    def _scan_tables(self, node: LogicalNode) -> dict[str, str]:
        """alias -> table name for every base scan in the subtree."""
        out: dict[str, str] = {}
        stack = [node]
        while stack:
            n = stack.pop()
            if isinstance(n, LogicalScan):
                out[n.alias] = n.table_name
            stack.extend(n.children())
        return out

    def _analyze(self, node: LogicalNode, analysis: _Analysis) -> None:
        if isinstance(node, LogicalJoin):
            self._analyze(node.left, analysis)
            self._analyze(node.right, analysis)
            decision = self._decide_join(node, analysis)
            analysis.decisions[id(node)] = decision
            return
        for child in node.children():
            self._analyze(child, analysis)

    def _decide_join(self, node: LogicalJoin, analysis: _Analysis) -> _JoinDecision:
        assert self.mapping is not None
        if node.condition is None:
            return _JoinDecision("nl")
        conjuncts = split_conjuncts(node.condition)
        equi = [is_equi_join_condition(c) for c in conjuncts]
        pairs = [p for p in equi if p is not None]
        if not pairs:
            return _JoinDecision("nl")
        # Predefined joins handle exactly one FK equality and nothing else;
        # composite or residual-carrying joins stay hash joins.
        if len(conjuncts) != 1 or len(pairs) != 1:
            return _JoinDecision("hash")
        lcol, rcol = pairs[0]
        left_tables = self._scan_tables(node.left)
        right_tables = self._scan_tables(node.right)
        for swap in (False, True):
            pipe_tables = right_tables if swap else left_tables
            scan_side = node.left if swap else node.right
            # The extension side must be a bare scan (possibly filtered).
            scan = _bare_scan(scan_side)
            if scan is None:
                continue
            pipe_col, scan_col = (rcol, lcol) if swap else (lcol, rcol)
            if scan_col.split(".", 1)[0] != scan.alias:
                pipe_col, scan_col = scan_col, pipe_col
            if scan_col.split(".", 1)[0] != scan.alias:
                continue
            pipe_alias = pipe_col.split(".", 1)[0]
            if pipe_alias not in pipe_tables:
                continue
            decision = self._match_predefined(
                pipe_alias,
                pipe_tables[pipe_alias],
                pipe_col.rsplit(".", 1)[-1],
                scan,
                scan_col.rsplit(".", 1)[-1],
                analysis,
            )
            if decision is not None:
                decision.swap = swap
                decision.matched = (pipe_col, scan_col)
                return decision
        return _JoinDecision("hash")

    def _match_predefined(
        self,
        pipe_alias: str,
        pipe_table: str,
        pipe_column: str,
        scan: LogicalScan,
        scan_column: str,
        analysis: _Analysis,
    ) -> _JoinDecision | None:
        assert self.mapping is not None
        # Pattern A: pipeline has the edge tuples, the scan is the vertex
        # relation -> RowIdJoin along the EV pointer.
        for em in self.mapping.edges.values():
            if em.table_name != pipe_table:
                continue
            for endpoint, fk, vlabel in (
                ("src", em.source_key, em.source_label),
                ("dst", em.target_key, em.target_label),
            ):
                vm = self.mapping.vertex(vlabel)
                if (
                    pipe_column == fk
                    and scan.table_name == vm.table_name
                    and scan_column == vm.key
                ):
                    analysis.pointer_reqs.setdefault(pipe_alias, set()).add(endpoint)
                    return _JoinDecision(
                        "rowid", pointer=ptr_column(pipe_alias, endpoint)
                    )
        # Pattern B: pipeline has the vertex tuples, the scan is the edge
        # relation -> CsrJoin along the VE adjacency.
        for em in self.mapping.edges.values():
            if em.table_name != scan.table_name:
                continue
            for direction, fk, vlabel in (
                ("out", em.source_key, em.source_label),
                ("in", em.target_key, em.target_label),
            ):
                vm = self.mapping.vertex(vlabel)
                if (
                    scan_column == fk
                    and pipe_table == vm.table_name
                    and pipe_column == vm.key
                ):
                    assert self.index is not None
                    if not self.index.has_adjacency(vlabel, em.label, direction):
                        continue
                    analysis.rowid_reqs.add(pipe_alias)
                    far = "dst" if direction == "out" else "src"
                    return _JoinDecision(
                        "csr",
                        vertex_alias=pipe_alias,
                        adjacency_key=(vlabel, em.label, direction),
                        far_endpoint=far,
                    )
        return None

    # ------------------------------------------------------------------ #
    # build pass
    # ------------------------------------------------------------------ #

    def _build(self, node: LogicalNode, analysis: _Analysis) -> PhysicalOperator:
        to_physical = getattr(node, "to_physical", None)
        if to_physical is not None:
            return to_physical(self.catalog)
        if isinstance(node, LogicalScan):
            return self._build_scan(node, analysis)
        if isinstance(node, LogicalFilter):
            return FilterOp(self._build(node.child, analysis), node.predicate)
        if isinstance(node, LogicalProject):
            return ProjectOp(self._build(node.child, analysis), node.exprs)
        if isinstance(node, LogicalJoin):
            return self._build_join(node, analysis)
        if isinstance(node, LogicalAggregate):
            return AggregateOp(
                self._build(node.child, analysis), node.group_by, node.aggregates
            )
        if isinstance(node, LogicalSort):
            return SortOp(self._build(node.child, analysis), node.keys)
        if isinstance(node, LogicalLimit):
            # ORDER BY ... LIMIT k fuses into a streaming top-k selection:
            # O(k) buffered state instead of a full sort, identical rows.
            if isinstance(node.child, LogicalSort):
                return TopKOp(
                    self._build(node.child.child, analysis),
                    node.child.keys,
                    node.limit,
                )
            return LimitOp(self._build(node.child, analysis), node.limit)
        if isinstance(node, LogicalDistinct):
            return DistinctOp(self._build(node.child, analysis))
        raise PlanError(f"cannot lower {type(node).__name__}")

    def _build_scan(self, node: LogicalScan, analysis: _Analysis) -> PhysicalOperator:
        table = self.catalog.table(node.table_name)
        pointer_columns: list[tuple[str, list[int]]] = []
        endpoints = analysis.pointer_reqs.get(node.alias, set())
        if endpoints:
            assert self.mapping is not None and self.index is not None
            edge_label = self._edge_label_of(node.table_name)
            ev = self.index.edge_index(edge_label)
            if "src" in endpoints:
                pointer_columns.append((ptr_column(node.alias, "src"), ev.src_rowids))
            if "dst" in endpoints:
                pointer_columns.append((ptr_column(node.alias, "dst"), ev.dst_rowids))
        return SeqScan(
            table,
            node.alias,
            predicate=node.predicate,
            projected=node.projected,
            emit_rowid=node.alias in analysis.rowid_reqs,
            pointer_columns=pointer_columns,
        )

    def _edge_label_of(self, table_name: str) -> str:
        assert self.mapping is not None
        for em in self.mapping.edges.values():
            if em.table_name == table_name:
                return em.label
        raise PlanError(f"table {table_name!r} is not an edge relation")

    def _vertex_label_of(self, table_name: str) -> str | None:
        assert self.mapping is not None
        for vm in self.mapping.vertices.values():
            if vm.table_name == table_name:
                return vm.label
        return None

    def _build_join(self, node: LogicalJoin, analysis: _Analysis) -> PhysicalOperator:
        decision = analysis.decisions.get(id(node), _JoinDecision("hash"))
        if decision.strategy == "rowid":
            return self._build_rowid_join(node, decision, analysis)
        if decision.strategy == "csr":
            return self._build_csr_join(node, decision, analysis)
        left = self._build(node.left, analysis)
        right = self._build(node.right, analysis)
        if node.condition is None or decision.strategy == "nl":
            return NestedLoopJoin(left, right, node.condition)
        conjuncts = split_conjuncts(node.condition)
        left_cols, right_cols, residual = [], [], []
        left_quals = {c.split(".", 1)[0] for c in left.output_columns if "." in c}
        for c in conjuncts:
            pair = is_equi_join_condition(c)
            if pair is None:
                residual.append(c)
                continue
            a, b = pair
            if a.split(".", 1)[0] in left_quals:
                left_cols.append(a)
                right_cols.append(b)
            else:
                left_cols.append(b)
                right_cols.append(a)
        if not left_cols:
            return NestedLoopJoin(left, right, node.condition)
        return HashJoin(left, right, left_cols, right_cols, residual=conjoin(residual))

    def _build_rowid_join(
        self, node: LogicalJoin, decision: _JoinDecision, analysis: _Analysis
    ) -> PhysicalOperator:
        pipe_node = node.right if decision.swap else node.left
        scan_node = node.left if decision.swap else node.right
        scan = _bare_scan(scan_node)
        assert scan is not None and decision.pointer is not None
        pipe = self._build(pipe_node, analysis)
        table = self.catalog.table(scan.table_name)
        return RowIdJoin(
            pipe,
            pointer_column=decision.pointer,
            table=table,
            alias=scan.alias,
            projected=scan.projected,
            predicate=_scan_filter(scan_node),
            emit_rowid=scan.alias in analysis.rowid_reqs,
        )

    def _build_csr_join(
        self, node: LogicalJoin, decision: _JoinDecision, analysis: _Analysis
    ) -> PhysicalOperator:
        assert self.index is not None
        pipe_node = node.right if decision.swap else node.left
        scan_node = node.left if decision.swap else node.right
        scan = _bare_scan(scan_node)
        assert scan is not None and decision.adjacency_key is not None
        pipe = self._build(pipe_node, analysis)
        adjacency = self.index.adjacency(*decision.adjacency_key)
        edge_label = decision.adjacency_key[1]
        ev = self.index.edge_index(edge_label)
        far_values = ev.dst_rowids if decision.far_endpoint == "dst" else ev.src_rowids
        far_name = ptr_column(scan.alias, decision.far_endpoint or "dst")
        return CsrJoin(
            pipe,
            vertex_rowid_column=rowid_column(decision.vertex_alias or ""),
            csr_offsets=adjacency.offsets,
            csr_edges=adjacency.edge_rowids,
            edge_table=self.catalog.table(scan.table_name),
            edge_alias=scan.alias,
            projected=scan.projected,
            predicate=_scan_filter(scan_node),
            far_pointer=(far_name, far_values),
        )


def _bare_scan(node: LogicalNode) -> LogicalScan | None:
    """The scan beneath at most one filter, else None."""
    if isinstance(node, LogicalScan):
        return node
    if isinstance(node, LogicalFilter) and isinstance(node.child, LogicalScan):
        return node.child
    return None


def _scan_filter(node: LogicalNode) -> Expr | None:
    """Combined predicate of a (possibly filtered) scan node."""
    if isinstance(node, LogicalScan):
        return node.predicate
    if isinstance(node, LogicalFilter) and isinstance(node.child, LogicalScan):
        child_pred = node.child.predicate
        if child_pred is None:
            return node.predicate
        from repro.relational.expr import and_

        return and_(child_pred, node.predicate)
    return None
