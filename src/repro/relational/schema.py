"""Table schemas: ordered, named, typed columns plus key metadata.

Primary/foreign key declarations matter beyond integrity: RGMapping (Sec 2.1
of the paper) derives the total functions ``λˢ`` and ``λᵗ`` that map edge
tuples to endpoint vertex tuples from exactly these PK/FK relationships, and
the graph index (Sec 3.2.1) is built along them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.relational.types import DataType


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    dtype: DataType

    def __str__(self) -> str:
        return f"{self.name}:{self.dtype.value}"


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key declaration: ``column`` references ``ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass
class TableSchema:
    """The schema of one relation.

    Attributes:
        name: relation name, unique within a catalog.
        columns: ordered column list; order defines the tuple layout.
        primary_key: name of the primary-key column (single-column keys are
            sufficient for the paper's workloads), or ``None``.
        foreign_keys: foreign-key declarations used by RGMapping and the
            graph index builder.
    """

    name: str
    columns: list[Column]
    primary_key: str | None = None
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            if col.name in seen:
                raise SchemaError(f"duplicate column {col.name!r} in table {self.name!r}")
            seen.add(col.name)
        if self.primary_key is not None and self.primary_key not in seen:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for fk in self.foreign_keys:
            if fk.column not in seen:
                raise SchemaError(
                    f"foreign key column {fk.column!r} is not a column of {self.name!r}"
                )

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def column_index(self, name: str) -> int:
        """Position of ``name`` in the tuple layout; raises if absent."""
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def column_type(self, name: str) -> DataType:
        return self.columns[self.column_index(name)].dtype

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        for fk in self.foreign_keys:
            if fk.column == column:
                return fk
        return None

    def __str__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        return f"{self.name}({cols})"
