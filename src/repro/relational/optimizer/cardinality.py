"""Cardinality estimation for join ordering.

Base relations: ``rows × selectivity(pushed predicate)`` where selectivity
comes from :mod:`repro.relational.statistics` (low-order or histogram tier).
Leaves that are not base scans (notably SCAN_GRAPH_TABLE) expose their own
``estimated_rows`` / ``column_ndv`` — that is how RelGo's GLogue-backed
graph cardinalities flow into the relational optimizer.

Joins use the classic distinct-value formula
``|L ⋈ R| = |L|·|R| / Π max(ndv(l_k), ndv(r_k))`` with primary-key-aware
ndv lookups.
"""

from __future__ import annotations

from repro.relational.catalog import Catalog
from repro.relational.logical import LogicalNode, LogicalScan
from repro.relational.statistics import predicate_selectivity


class CardinalityModel:
    """Estimates leaf and join cardinalities against a catalog."""

    def __init__(self, catalog: Catalog, histograms: bool = False):
        self.catalog = catalog
        self.histograms = histograms

    # ------------------------------------------------------------------ #
    # leaves
    # ------------------------------------------------------------------ #

    def leaf_rows(self, node: LogicalNode) -> float:
        if isinstance(node, LogicalScan):
            stats = self.catalog.stats(node.table_name, histograms=self.histograms)
            selectivity = predicate_selectivity(node.predicate, stats)
            return max(stats.row_count * selectivity, 1e-6)
        estimated = getattr(node, "estimated_rows", None)
        if estimated is not None:
            return max(float(estimated), 1e-6)
        return 1000.0  # unknown leaf: neutral default

    def leaf_ndv(self, node: LogicalNode, column: str) -> float:
        """Number of distinct values of ``column`` in the leaf's output."""
        rows = self.leaf_rows(node)
        if isinstance(node, LogicalScan):
            stats = self.catalog.stats(node.table_name, histograms=self.histograms)
            tail = column.rsplit(".", 1)[-1]
            ndv = float(stats.distinct(tail))
            return max(min(ndv, rows), 1.0)
        ndv_fn = getattr(node, "column_ndv", None)
        if ndv_fn is not None:
            value = ndv_fn(column)
            if value is not None:
                return max(min(float(value), rows), 1.0)
        return max(rows, 1.0)

    # ------------------------------------------------------------------ #
    # joins
    # ------------------------------------------------------------------ #

    def join_rows(
        self,
        left_rows: float,
        right_rows: float,
        key_ndvs: list[tuple[float, float]],
    ) -> float:
        """Distinct-value join estimate over one or more equi-key pairs."""
        rows = left_rows * right_rows
        for left_ndv, right_ndv in key_ndvs:
            rows /= max(left_ndv, right_ndv, 1.0)
        return max(rows, 1e-6)
