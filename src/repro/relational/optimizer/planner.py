"""The relational optimizer facade.

Takes a :class:`QueryBlock` — leaves (scans / SCAN_GRAPH_TABLE), a bag of
conjuncts, projections, aggregates, ordering — and produces an optimized
logical plan:

1. classify conjuncts: single-leaf predicates are pushed into scans,
   two-leaf equality of columns becomes a join edge, the rest is residual;
2. enumerate the join order (DPsub / greedy / exhaustive per profile);
3. assemble joins (probe side = larger input), residual filter, projection
   pruning, then the requested projection/aggregation/sort/limit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.relational.catalog import Catalog
from repro.relational.expr import (
    Expr,
    and_,
    col,
    conjoin,
    eq,
    is_equi_join_condition,
    referenced_columns,
    split_conjuncts,
    substitute_columns,
)
from repro.relational.logical import (
    AggregateSpec,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.relational.optimizer.cardinality import CardinalityModel
from repro.relational.optimizer.dp import (
    JoinProblem,
    JoinTree,
    dp_order,
    greedy_order,
)
from repro.relational.optimizer.volcano import ExhaustiveEnumerator


@dataclass
class QueryBlock:
    """A single SELECT block in conjunctive normal form."""

    relations: list[LogicalNode]
    predicates: list[Expr] = field(default_factory=list)
    projections: list[tuple[Expr, str]] | None = None
    group_by: list[tuple[Expr, str]] = field(default_factory=list)
    aggregates: list[AggregateSpec] = field(default_factory=list)
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False


@dataclass
class RelationalOptimizerConfig:
    join_enumeration: str = "dp"  # "dp" | "greedy" | "exhaustive"
    dp_threshold: int = 12
    histograms: bool = False
    timeout: float | None = None  # exhaustive profile's wall-clock budget
    prune_projections: bool = True


@dataclass
class OptimizationReport:
    """Optimizer telemetry surfaced by the benchmark harness."""

    optimization_time: float = 0.0
    trees_visited: int = 0
    strategy: str = "dp"


class RelationalOptimizer:
    """Optimizes one query block against a catalog."""

    def __init__(self, catalog: Catalog, config: RelationalOptimizerConfig | None = None):
        self.catalog = catalog
        self.config = config or RelationalOptimizerConfig()
        self.card_model = CardinalityModel(catalog, histograms=self.config.histograms)

    def optimize(self, block: QueryBlock) -> tuple[LogicalNode, OptimizationReport]:
        started = time.perf_counter()
        report = OptimizationReport(strategy=self.config.join_enumeration)
        leaves, leaf_aliases = self._leaves_with_aliases(block.relations)
        leaves, join_edges, residual = self._classify(block, leaves, leaf_aliases)
        problem = JoinProblem(
            leaves=leaves,
            leaf_aliases=leaf_aliases,
            edges=join_edges,
            card_model=self.card_model,
        )
        tree = self._enumerate(problem, report)
        plan = self._assemble(problem, tree)
        if residual:
            plan = LogicalFilter(plan, and_(*residual))
        plan = self._finish(block, plan)
        if self.config.prune_projections:
            self._prune_projections(block, plan)
        report.optimization_time = time.perf_counter() - started
        return plan, report

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #

    @staticmethod
    def _leaves_with_aliases(
        relations: list[LogicalNode],
    ) -> tuple[list[LogicalNode], list[frozenset[str]]]:
        leaves = list(relations)
        aliases = []
        for leaf in leaves:
            quals = {
                c.split(".", 1)[0] for c in leaf.output_columns if "." in c
            }
            if not quals:
                raise PlanError(
                    f"leaf {leaf!r} must expose qualified output columns"
                )
            aliases.append(frozenset(quals))
        return leaves, aliases

    def _classify(
        self,
        block: QueryBlock,
        leaves: list[LogicalNode],
        leaf_aliases: list[frozenset[str]],
    ):
        alias_to_leaf: dict[str, int] = {}
        for i, quals in enumerate(leaf_aliases):
            for q in quals:
                if q in alias_to_leaf:
                    raise PlanError(f"alias {q!r} provided by two relations")
                alias_to_leaf[q] = i
        join_edges: dict[frozenset[int], list[tuple[str, str]]] = {}
        residual: list[Expr] = []
        single_leaf: dict[int, list[Expr]] = {}
        for conjunct in [c for p in block.predicates for c in split_conjuncts(p)]:
            owners = set()
            for name in referenced_columns(conjunct):
                qual = name.split(".", 1)[0] if "." in name else None
                if qual is not None and qual in alias_to_leaf:
                    owners.add(alias_to_leaf[qual])
                else:
                    owners.add(-1)  # unqualified / unknown: keep residual
            if owners == set() or -1 in owners:
                residual.append(conjunct)
                continue
            if len(owners) == 1:
                single_leaf.setdefault(owners.pop(), []).append(conjunct)
                continue
            pair = is_equi_join_condition(conjunct)
            if pair is not None and len(owners) == 2:
                i, j = sorted(owners)
                lcol, rcol = pair
                # Normalize so the first column belongs to leaf i.
                if alias_to_leaf[lcol.split(".", 1)[0]] != i:
                    lcol, rcol = rcol, lcol
                join_edges.setdefault(frozenset({i, j}), []).append((lcol, rcol))
            else:
                residual.append(conjunct)
        # Push single-leaf predicates.
        for i, conjuncts in single_leaf.items():
            leaf = leaves[i]
            pred = and_(*conjuncts)
            if isinstance(leaf, LogicalScan):
                merged = pred if leaf.predicate is None else and_(leaf.predicate, pred)
                # Scans evaluate predicates against unqualified base columns
                # as well as alias-qualified ones; keep as-is.
                leaves[i] = LogicalScan(
                    leaf.table_name,
                    leaf.alias,
                    leaf.table_columns,
                    predicate=merged,
                    projected=leaf.projected,
                )
            else:
                leaves[i] = LogicalFilter(leaf, pred)
        return leaves, join_edges, residual

    # ------------------------------------------------------------------ #
    # enumeration & assembly
    # ------------------------------------------------------------------ #

    def _enumerate(self, problem: JoinProblem, report: OptimizationReport) -> JoinTree:
        if problem.size == 1:
            from repro.relational.optimizer.dp import make_leaf

            return make_leaf(problem, 0)
        mode = self.config.join_enumeration
        if mode == "exhaustive":
            enumerator = ExhaustiveEnumerator(problem, timeout=self.config.timeout)
            tree = enumerator.best_plan_allow_cross()
            report.trees_visited = enumerator.trees_visited
            return tree
        if mode == "greedy" or problem.size > self.config.dp_threshold:
            report.strategy = "greedy"
            return greedy_order(problem)
        return dp_order(problem)

    def _assemble(self, problem: JoinProblem, tree: JoinTree) -> LogicalNode:
        if tree.leaf is not None:
            return problem.leaves[tree.leaf]
        assert tree.left is not None and tree.right is not None
        # Probe side (left) is the larger input; build side the smaller.
        left_tree, right_tree = tree.left, tree.right
        conditions = tree.conditions
        if left_tree.rows < right_tree.rows:
            left_tree, right_tree = right_tree, left_tree
            conditions = [(r, l) for l, r in conditions]
        left = self._assemble(problem, left_tree)
        right = self._assemble(problem, right_tree)
        condition = conjoin([eq(col(l), col(r)) for l, r in conditions])
        return LogicalJoin(left, right, condition)

    def _finish(self, block: QueryBlock, plan: LogicalNode) -> LogicalNode:
        sorted_early = False
        if block.group_by or block.aggregates:
            plan = LogicalAggregate(plan, block.group_by, block.aggregates)
        elif block.projections is not None:
            # ORDER BY may reference columns the projection drops (SQL
            # permits this); in that case sort before projecting, rewriting
            # any references to projection aliases back to their expressions.
            if block.order_by and not self._keys_resolve(
                block.order_by, [a for _, a in block.projections]
            ):
                alias_exprs = {alias: expr for expr, alias in block.projections}
                keys = [
                    (substitute_columns(key, alias_exprs), asc)
                    for key, asc in block.order_by
                ]
                plan = LogicalSort(plan, keys)
                sorted_early = True
            plan = LogicalProject(plan, block.projections)
        if block.distinct:
            plan = LogicalDistinct(plan)
        if block.order_by and not sorted_early:
            plan = LogicalSort(plan, block.order_by)
        if block.limit is not None:
            plan = LogicalLimit(plan, block.limit)
        return plan

    @staticmethod
    def _keys_resolve(order_by: list[tuple[Expr, bool]], aliases: list[str]) -> bool:
        available = set(aliases)
        for key, _ in order_by:
            if not referenced_columns(key) <= available:
                return False
        return True

    # ------------------------------------------------------------------ #
    # projection pruning
    # ------------------------------------------------------------------ #

    def _prune_projections(self, block: QueryBlock, plan: LogicalNode) -> None:
        """Restrict every base scan to the columns the query references.

        Scan predicates are evaluated against the base row during the scan,
        so filter-only columns need not be projected.
        """
        if block.projections is None and not block.aggregates and not block.group_by:
            # SELECT *: every column is part of the output; nothing to prune.
            return
        needed: set[str] = set()
        for p in block.predicates:
            needed |= referenced_columns(p)
        if block.projections:
            for e, _ in block.projections:
                needed |= referenced_columns(e)
        for e, _ in block.group_by:
            needed |= referenced_columns(e)
        for spec in block.aggregates:
            if spec.arg is not None:
                needed |= referenced_columns(spec.arg)
        for e, _ in block.order_by:
            needed |= referenced_columns(e)
        from repro.relational.logical import walk

        for node in walk(plan):
            if isinstance(node, LogicalScan) and node.projected is None:
                keep = []
                for column in node.table_columns:
                    if f"{node.alias}.{column}" in needed or column in needed:
                        keep.append(column)
                node.projected = keep
