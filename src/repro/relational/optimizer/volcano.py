"""The exhaustive "Calcite-like" enumerator (Fig 4b baseline).

Calcite's VolcanoPlanner with default rules explores join commutativity and
associativity transformations without the aggressive pruning commercial
engines add; on the graph-agnostic translation of an SPJM query (2m + 1
relations for an m-edge pattern) that search space is the exponential count
of Fig 4a.  This module reproduces that behaviour honestly: it walks *every*
bushy join tree without cross products (no memoized best-only shortcuts),
keeps the cheapest, and raises :class:`OptimizationTimeout` when the time
budget — the paper's 10 minutes, scaled down for laptop benches — runs out.

``count_trees_visited`` is exposed so tests can assert the space really is
the Fig 4a number for path patterns.
"""

from __future__ import annotations

import time

from repro.errors import OptimizationTimeout, PlanError
from repro.relational.optimizer.dp import (
    JoinProblem,
    JoinTree,
    combine,
    cross_combine,
    make_leaf,
)


class ExhaustiveEnumerator:
    """Full enumeration of bushy join trees with a wall-clock budget."""

    def __init__(self, problem: JoinProblem, timeout: float | None = None):
        self.problem = problem
        self.timeout = timeout
        self.start = 0.0
        self.trees_visited = 0
        self._tick = 0

    def best_plan(self) -> JoinTree:
        self.start = time.perf_counter()
        self.trees_visited = 0
        full = (1 << self.problem.size) - 1
        best: JoinTree | None = None
        for tree in self._all_plans(full):
            self.trees_visited += 1
            if best is None or tree.cost < best.cost:
                best = tree
        if best is None:
            raise PlanError("no join tree found (disconnected join graph?)")
        return best

    def _check_time(self) -> None:
        self._tick += 1
        if self.timeout is not None and self._tick % 1024 == 0:
            elapsed = time.perf_counter() - self.start
            if elapsed > self.timeout:
                raise OptimizationTimeout(elapsed, self.timeout)

    def _all_plans(self, mask: int):
        """Yield every join tree over ``mask`` (no memoization on purpose)."""
        self._check_time()
        if mask & (mask - 1) == 0:
            yield make_leaf(self.problem, mask.bit_length() - 1)
            return
        # Enumerate ordered splits: each (sub, rest) pair with sub containing
        # the lowest bit, then both orientations — join commutativity, the
        # way Volcano's rule set would generate both.
        low = mask & -mask
        sub = (mask - 1) & mask
        while sub:
            if sub & low:
                rest = mask ^ sub
                if rest:
                    for left in self._all_plans(sub):
                        for right in self._all_plans(rest):
                            joined = combine(self.problem, left, right)
                            if joined is not None:
                                yield joined
                                swapped = combine(self.problem, right, left)
                                if swapped is not None:
                                    yield swapped
            sub = (sub - 1) & mask

    def best_plan_allow_cross(self) -> JoinTree:
        """Like :meth:`best_plan` but tolerates disconnected join graphs by
        cross-joining component-optimal plans (rare; JOB/LDBC are connected)."""
        try:
            return self.best_plan()
        except PlanError:
            from repro.relational.optimizer.dp import _components, _dp_component

            components = [
                _dp_component(self.problem, comp) for comp in _components(self.problem)
            ]
            components.sort(key=lambda t: t.rows)
            plan = components[0]
            for other in components[1:]:
                plan = cross_combine(self.problem, plan, other)
            return plan
