"""Join-order enumeration: DPsub with a greedy fallback.

The join problem is a set of leaves (base-table scans or SCAN_GRAPH_TABLE
nodes) plus equi-join predicates between pairs of leaves.  ``dp_order``
finds the cost-optimal bushy tree without cross products (the "DuckDB-like"
profile — DP up to a size threshold, greedy above it, mirroring how real
engines aggressively prune).  Cost is C_out: the sum of estimated
intermediate result sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.relational.logical import LogicalNode
from repro.relational.optimizer.cardinality import CardinalityModel


@dataclass
class JoinProblem:
    """Leaves + equi-join edges, ready for enumeration."""

    leaves: list[LogicalNode]
    leaf_aliases: list[frozenset[str]]
    # frozenset({i, j}) -> [(col_on_i, col_on_j), ...]
    edges: dict[frozenset[int], list[tuple[str, str]]]
    card_model: CardinalityModel
    leaf_rows: list[float] = field(default_factory=list)
    _mask_rows: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.leaf_rows:
            self.leaf_rows = [self.card_model.leaf_rows(n) for n in self.leaves]

    @property
    def size(self) -> int:
        return len(self.leaves)

    def mask_rows(self, mask: int) -> float:
        """Estimated cardinality of joining exactly the leaves in ``mask``.

        Computed from the leaf *set* (product of leaf rows divided by the
        distinct-value reduction of every join edge inside the set), so the
        estimate is identical for every join order over the set — the
        invariance dynamic programming needs for Bellman optimality.
        """
        cached = self._mask_rows.get(mask)
        if cached is not None:
            return cached
        rows = 1.0
        m = mask
        while m:
            bit = m & -m
            m ^= bit
            rows *= self.leaf_rows[bit.bit_length() - 1]
        alias_map = self.alias_to_leaf()
        for pair, conds in self.edges.items():
            i, j = sorted(pair)
            if (mask >> i) & 1 and (mask >> j) & 1:
                for lcol, rcol in conds:
                    lleaf = alias_map.get(lcol.split(".", 1)[0])
                    rleaf = alias_map.get(rcol.split(".", 1)[0])
                    lndv = (
                        min(
                            self.card_model.leaf_ndv(self.leaves[lleaf], lcol),
                            self.leaf_rows[lleaf],
                        )
                        if lleaf is not None
                        else 1.0
                    )
                    rndv = (
                        min(
                            self.card_model.leaf_ndv(self.leaves[rleaf], rcol),
                            self.leaf_rows[rleaf],
                        )
                        if rleaf is not None
                        else 1.0
                    )
                    rows /= max(lndv, rndv, 1.0)
        rows = max(rows, 1e-6)
        self._mask_rows[mask] = rows
        return rows

    def adjacency(self) -> list[int]:
        adj = [0] * self.size
        for pair in self.edges:
            i, j = sorted(pair)
            adj[i] |= 1 << j
            adj[j] |= 1 << i
        return adj

    def alias_to_leaf(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for i, aliases in enumerate(self.leaf_aliases):
            for alias in aliases:
                out[alias] = i
        return out


@dataclass
class JoinTree:
    """A (sub)plan over a set of leaves, as produced by enumeration."""

    mask: int
    rows: float
    cost: float
    leaf: int | None = None
    left: "JoinTree | None" = None
    right: "JoinTree | None" = None
    conditions: list[tuple[str, str]] = field(default_factory=list)

    def leaf_indices(self) -> list[int]:
        if self.leaf is not None:
            return [self.leaf]
        assert self.left is not None and self.right is not None
        return self.left.leaf_indices() + self.right.leaf_indices()


def _join_candidates(
    problem: JoinProblem, left_mask: int, right_mask: int
) -> list[tuple[str, str]]:
    """All equi conditions crossing the two leaf sets, as (left, right) cols."""
    out: list[tuple[str, str]] = []
    for pair, conds in problem.edges.items():
        i, j = sorted(pair)
        if (left_mask >> i) & 1 and (right_mask >> j) & 1:
            out.extend(conds if i < j else [(b, a) for a, b in conds])
        elif (left_mask >> j) & 1 and (right_mask >> i) & 1:
            out.extend([(b, a) for a, b in conds] if i < j else conds)
    return out


def _estimate_join(
    problem: JoinProblem,
    left: JoinTree,
    right: JoinTree,
    conditions: list[tuple[str, str]],
) -> float:
    # Order-invariant: the joined cardinality depends only on the leaf set.
    return problem.mask_rows(left.mask | right.mask)


def make_leaf(problem: JoinProblem, index: int) -> JoinTree:
    rows = problem.leaf_rows[index]
    return JoinTree(mask=1 << index, rows=rows, cost=rows, leaf=index)


def combine(
    problem: JoinProblem, left: JoinTree, right: JoinTree
) -> JoinTree | None:
    """Join two disjoint subtrees; None when no join edge crosses."""
    conditions = _join_candidates(problem, left.mask, right.mask)
    if not conditions:
        return None
    rows = _estimate_join(problem, left, right, conditions)
    return JoinTree(
        mask=left.mask | right.mask,
        rows=rows,
        cost=left.cost + right.cost + rows,
        left=left,
        right=right,
        conditions=conditions,
    )


def cross_combine(problem: JoinProblem, left: JoinTree, right: JoinTree) -> JoinTree:
    rows = left.rows * right.rows
    return JoinTree(
        mask=left.mask | right.mask,
        rows=rows,
        cost=left.cost + right.cost + rows,
        left=left,
        right=right,
        conditions=[],
    )


# ---------------------------------------------------------------------- #
# DPsub
# ---------------------------------------------------------------------- #


def dp_order(problem: JoinProblem) -> JoinTree:
    """Optimal bushy tree via subset DP (over each connected component)."""
    components = _components(problem)
    partials = [_dp_component(problem, comp) for comp in components]
    partials.sort(key=lambda t: t.rows)
    plan = partials[0]
    for other in partials[1:]:
        plan = cross_combine(problem, plan, other)
    return plan


def _components(problem: JoinProblem) -> list[int]:
    adj = problem.adjacency()
    unseen = set(range(problem.size))
    components = []
    while unseen:
        start = min(unseen)
        mask = 1 << start
        frontier = [start]
        unseen.discard(start)
        while frontier:
            v = frontier.pop()
            m = adj[v]
            while m:
                bit = m & -m
                m ^= bit
                u = bit.bit_length() - 1
                if u in unseen:
                    unseen.discard(u)
                    mask |= bit
                    frontier.append(u)
        components.append(mask)
    return components


def _dp_component(problem: JoinProblem, component: int) -> JoinTree:
    adj = problem.adjacency()
    best: dict[int, JoinTree] = {}
    members = [i for i in range(problem.size) if (component >> i) & 1]
    for i in members:
        best[1 << i] = make_leaf(problem, i)
    if len(members) == 1:
        return best[component]

    def connected(mask: int) -> bool:
        start = mask & -mask
        seen = start
        frontier = start
        while frontier:
            nxt = 0
            m = frontier
            while m:
                bit = m & -m
                m ^= bit
                nxt |= adj[bit.bit_length() - 1]
            nxt &= mask & ~seen
            seen |= nxt
            frontier = nxt
        return seen == mask

    # Enumerate connected masks in increasing popcount order.
    masks_by_size: dict[int, list[int]] = {}
    sub = component
    all_submasks = []
    m = component
    # Iterate all submasks of the component.
    sub = component
    while True:
        if sub and sub != component and connected(sub):
            all_submasks.append(sub)
        if sub == 0:
            break
        sub = (sub - 1) & component
    all_submasks.append(component)
    all_submasks.sort(key=lambda x: bin(x).count("1"))
    for mask in all_submasks:
        if mask in best:
            continue
        low = mask & -mask
        candidate: JoinTree | None = None
        inner = (mask - 1) & mask
        while inner:
            if inner & low:
                rest = mask ^ inner
                if rest and inner in best and rest in best:
                    joined = combine(problem, best[inner], best[rest])
                    if joined is not None and (
                        candidate is None or joined.cost < candidate.cost
                    ):
                        candidate = joined
            inner = (inner - 1) & mask
        if candidate is not None:
            best[mask] = candidate
    if component not in best:  # pragma: no cover - connected components join
        raise PlanError("DP failed to cover the component")
    return best[component]


# ---------------------------------------------------------------------- #
# greedy fallback
# ---------------------------------------------------------------------- #


def greedy_order(problem: JoinProblem) -> JoinTree:
    """Repeatedly join the pair with the smallest estimated output."""
    forest: list[JoinTree] = [make_leaf(problem, i) for i in range(problem.size)]
    while len(forest) > 1:
        best_pair: tuple[int, int] | None = None
        best_tree: JoinTree | None = None
        for i in range(len(forest)):
            for j in range(i + 1, len(forest)):
                joined = combine(problem, forest[i], forest[j])
                if joined is not None and (
                    best_tree is None or joined.rows < best_tree.rows
                ):
                    best_tree = joined
                    best_pair = (i, j)
        if best_tree is None:
            # No join edges left: cross product the two smallest.
            forest.sort(key=lambda t: t.rows)
            best_tree = cross_combine(problem, forest[0], forest[1])
            best_pair = (0, 1)
        i, j = best_pair  # type: ignore[misc]
        forest = [t for k, t in enumerate(forest) if k not in (i, j)]
        forest.append(best_tree)
    return forest[0]
