"""The relational optimizer.

Profiles correspond to the paper's compared systems:

* **dp** — DPsub join enumeration with a greedy fallback above a size
  threshold, low-order statistics.  This is the "DuckDB-like" optimizer with
  aggressive pruning (used by the DuckDB and GRainDB baselines, and by RelGo
  for the relational component of SPJM queries).
* **exhaustive** — a Volcano-style full enumeration without pruning, with a
  wall-clock budget.  This is the "Calcite with default rules" baseline of
  Fig 4b; it times out (OT) on large join graphs exactly as in the paper.
* **histograms** — the same DP enumeration but with histogram-based
  selectivity estimation, standing in for Umbra's more accurate cardinality
  model (Sec 5.3.2).
"""

from repro.relational.optimizer.planner import (
    QueryBlock,
    RelationalOptimizer,
    RelationalOptimizerConfig,
)

__all__ = ["QueryBlock", "RelationalOptimizer", "RelationalOptimizerConfig"]
