"""Benchmark harness: run system × query grids, format paper-style reports."""

from repro.bench.runner import Measurement, run_grid
from repro.bench.reporting import format_table, geometric_mean, speedup_table

__all__ = ["Measurement", "run_grid", "format_table", "speedup_table", "geometric_mean"]
