"""Run a grid of (system, query) measurements with repetition and status
accounting (ok / OOM / OT), mirroring the paper's methodology (Sec 5.1):
every query is executed ``repetitions`` times and the average is reported;
OOM and OT entries are carried through to the tables rather than dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spjm import SPJMQuery
from repro.systems.base import System, SystemResult


@dataclass
class Measurement:
    """Averaged timings of one (system, query) cell."""

    system: str
    query: str
    status: str
    optimization_time: float = 0.0
    execution_time: float = 0.0
    rows: int = 0
    repetitions: int = 1

    @property
    def total_time(self) -> float:
        return self.optimization_time + self.execution_time

    def display_time(self, component: str = "total") -> str:
        if self.status != "ok":
            return self.status
        value = {
            "total": self.total_time,
            "execution": self.execution_time,
            "optimization": self.optimization_time,
        }[component]
        return f"{value * 1000:.1f}"


def run_grid(
    systems: dict[str, System],
    queries: dict[str, SPJMQuery | str],
    repetitions: int = 1,
    warmup: bool = True,
) -> list[Measurement]:
    """Run every system on every query; returns one Measurement per cell.

    ``warmup`` performs one unmeasured optimization per cell first, so lazy
    one-time costs (GLogue sample counting, statistics collection) do not
    pollute per-query optimization times — the paper's GLogue is likewise
    built ahead of measurement.
    """
    measurements: list[Measurement] = []
    for query_name, query in queries.items():
        for system_name, system in systems.items():
            if warmup:
                try:
                    system.optimize(query)
                except Exception:
                    pass  # failures are re-observed and reported below
            results: list[SystemResult] = []
            for _ in range(repetitions):
                result = system.run(query, query_name=query_name)
                results.append(result)
                if not result.ok():
                    break  # OOM/OT is deterministic; no point repeating
            status = results[-1].status
            ok_results = [r for r in results if r.ok()]
            if ok_results:
                n = len(ok_results)
                measurements.append(
                    Measurement(
                        system=system_name,
                        query=query_name,
                        status=status if not ok_results else "ok",
                        optimization_time=sum(r.optimization_time for r in ok_results) / n,
                        execution_time=sum(r.execution_time for r in ok_results) / n,
                        rows=ok_results[-1].rows,
                        repetitions=n,
                    )
                )
            else:
                measurements.append(
                    Measurement(
                        system=system_name,
                        query=query_name,
                        status=status,
                        optimization_time=results[-1].optimization_time,
                        execution_time=results[-1].execution_time,
                    )
                )
    return measurements


def by_cell(measurements: list[Measurement]) -> dict[tuple[str, str], Measurement]:
    return {(m.system, m.query): m for m in measurements}
