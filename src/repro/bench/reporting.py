"""Paper-style report formatting for the benchmark harness.

``format_table`` renders a query × system grid of times (ms) with OOM / OT
entries preserved; ``speedup_table`` renders the Fig 11 presentation —
per-query speedup of every system against a baseline, plus the average
speedup the paper headlines (computed as a geometric mean, which is the
right mean for ratios).
"""

from __future__ import annotations

import math

from repro.bench.runner import Measurement, by_cell


def format_table(
    measurements: list[Measurement],
    systems: list[str],
    queries: list[str],
    component: str = "total",
    title: str = "",
) -> str:
    cells = by_cell(measurements)
    width = max([len(q) for q in queries] + [7])
    header = f"{'query':<{width}}" + "".join(f"{s:>14}" for s in systems)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    for query in queries:
        row = [f"{query:<{width}}"]
        for system in systems:
            m = cells.get((system, query))
            row.append(f"{m.display_time(component) if m else '-':>14}")
        lines.append("".join(row))
    lines.append("-" * len(header))
    lines.append(f"(times in ms; component = {component})")
    return "\n".join(lines)


def geometric_mean(values: list[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedups_vs_baseline(
    measurements: list[Measurement],
    baseline: str,
    component: str = "total",
) -> dict[tuple[str, str], float | None]:
    """(system, query) -> speedup over the baseline; None when either failed."""
    cells = by_cell(measurements)
    out: dict[tuple[str, str], float | None] = {}
    queries = sorted({m.query for m in measurements})
    systems = sorted({m.system for m in measurements})
    for query in queries:
        base = cells.get((baseline, query))
        for system in systems:
            m = cells.get((system, query))
            if (
                base is None
                or m is None
                or base.status != "ok"
                or m.status != "ok"
            ):
                out[(system, query)] = None
                continue
            mine = m.total_time if component == "total" else m.execution_time
            theirs = base.total_time if component == "total" else base.execution_time
            out[(system, query)] = theirs / mine if mine > 0 else None
    return out


def speedup_table(
    measurements: list[Measurement],
    systems: list[str],
    queries: list[str],
    baseline: str = "duckdb",
    component: str = "total",
    title: str = "",
) -> str:
    """The Fig 11 rendering: speedup vs the baseline per query + averages."""
    ratios = speedups_vs_baseline(measurements, baseline, component)
    cells = by_cell(measurements)
    width = max([len(q) for q in queries] + [7])
    header = f"{'query':<{width}}" + "".join(f"{s:>12}" for s in systems)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    for query in queries:
        row = [f"{query:<{width}}"]
        for system in systems:
            ratio = ratios.get((system, query))
            if ratio is None:
                m = cells.get((system, query))
                row.append(f"{(m.status if m else '-'):>12}")
            else:
                row.append(f"{ratio:>11.2f}x")
        lines.append("".join(row))
    lines.append("-" * len(header))
    avg_row = [f"{'avg':<{width}}"]
    for system in systems:
        values = [
            ratios[(system, q)]
            for q in queries
            if ratios.get((system, q)) is not None
        ]
        avg_row.append(f"{geometric_mean(values):>11.2f}x" if values else f"{'-':>12}")
    lines.append("".join(avg_row))
    lines.append(f"(speedup vs {baseline}, geometric mean; higher is better)")
    return "\n".join(lines)


def average_speedup(
    measurements: list[Measurement],
    system: str,
    baseline: str,
    component: str = "total",
) -> float:
    """Geometric-mean speedup of ``system`` over ``baseline``."""
    ratios = speedups_vs_baseline(measurements, baseline, component)
    values = [
        v for (s, _), v in ratios.items() if s == system and v is not None
    ]
    return geometric_mean(values)
