"""Morsel-driven parallel execution: worker pool, exchange, plan rewriter.

The streaming engine's batches are already the natural unit of parallel
work, so parallelism is **morsel-driven** (Leis et al., SIGMOD 2014): a
leaf source (``SeqScan`` row ranges, ``ScanVertex`` / ``EdgeTripleScan``
rowid ranges) splits into contiguous **morsels**, and each morsel is driven
through a clone of the pipeline's non-breaking operator chain on a worker
thread.  Results meet downstream at an :class:`ExchangeOp` — the only new
operator — which merges the per-morsel batch streams.

Design rules that keep parallel results identical to serial execution:

* **Morsels are ordered.**  The exchange emits morsel 0's batches, then
  morsel 1's, and so on; workers run ahead into small bounded queues
  (backpressure keeps in-flight state at a few batches per morsel).  Since
  every streaming operator preserves row order within its input, the
  concatenated stream holds exactly the serial row order — only batch
  *boundaries* move, and chunk boundaries carry no semantics anywhere in
  the engine (the parity suite pins this across batch sizes).
* **The exchange does not emit.**  It is transport, not an operator doing
  row work: ``rows_produced`` / ``operator_rows`` totals stay identical to
  serial execution (worker-side operators count under their usual labels,
  merely from worker threads — the context's counters are lock-protected).
* **Breakers merge per-worker partial states.**  ``AggregateOp``,
  ``DistinctOp``, ``TopKOp`` and the ``HashJoin`` build consume an
  exchange child via per-worker partial states (a ``GroupedAggregation``,
  a ``StreamingDistinct`` pre-dedup stage, a candidate heap, a hash-table
  shard) merged **in morsel order**.  Order guarantees after the merge:
  DISTINCT survivors, TopK rows (with ``(morsel, arrival)`` tie tags) and
  hash-probe output are byte-identical to serial execution; grouped
  *aggregation* output is canonically identical (same groups, same
  aggregates) but its emission order may interleave differently — exactly
  as serial output already may across batch sizes, so nothing
  order-sensitive may sit above an unsorted GROUP BY in either mode.
  Partial states charge per-worker *untracked*
  buffers — each partial is a subset of the serial state, so the
  per-buffer budget check still catches blowups without double-counting
  the logical intermediate, which the merged state charges in full.  The
  one exception is the hash-join build, whose partial shards are disjoint:
  they charge the join's shared (tracked) buffer, so the cumulative build
  charge — and the paper's calibrated OOM entries — are byte-identical to
  serial execution.

``parallelize_plan`` rewrites a physical tree at execution time (the
optimizer's plan and its traces are untouched; ``parallelism=1`` executes
the original tree object).  Rewritten nodes are shallow clones, so one
optimized plan can be executed serially and in parallel interchangeably —
and concurrently.
"""

from __future__ import annotations

import copy
import itertools
import os
import queue
import threading
import time
from typing import Callable, Iterator, Sequence

from repro.exec.operator import Operator

#: How long teardown keeps joining stopped workers before giving up on
#: them (daemon threads; only a non-cooperative body can exceed this).
REAP_GRACE_SECONDS = 5.0

#: Each worker should see a few morsels so the pool load-balances skewed
#: chains, but not so many that per-morsel overhead dominates.
MORSELS_PER_WORKER = 4

#: Bounded run-ahead per morsel stream (batches buffered between a worker
#: and the consuming thread).  Small: backpressure, not buffering, is the
#: contract — streaming state stays budget-invisible like any in-flight
#: batch.
EXCHANGE_QUEUE_DEPTH = 4

_DONE = object()


class _WorkerCrew:
    """Shared worker-pool scaffolding of the exchange's two consumption
    modes (streaming merge and partial-state fold).

    Workers claim ascending subplan indices from one atomic counter (the
    morsel-driven load balancing), the first error from any ``body(i)``
    call is captured for the caller to re-raise, and a cooperative stop
    event ends claiming.  ``body`` may return False to report it was
    cancelled mid-plan (e.g. a queue put abandoned after a stop).
    """

    __slots__ = ("stop", "errors", "threads")

    def __init__(self, count: int, workers: int, name: str, body: Callable):
        self.stop = threading.Event()
        self.errors: list[BaseException] = []
        claim = itertools.count()

        def worker() -> None:
            while not self.stop.is_set():
                i = next(claim)
                if i >= count:
                    return
                try:
                    if body(i) is False:
                        return
                except BaseException as exc:  # noqa: BLE001 — re-raised by caller
                    self.errors.append(exc)
                    self.stop.set()
                    return

        self.threads = [
            threading.Thread(target=worker, name=f"{name}-{i}", daemon=True)
            for i in range(workers)
        ]

    def start(self) -> None:
        for thread in self.threads:
            thread.start()

    def alive(self) -> bool:
        return any(thread.is_alive() for thread in self.threads)

    def join(self, timeout: float | None = None) -> None:
        for thread in self.threads:
            thread.join(timeout)

    def join_interruptible(self, ctx=None, poll: float = 0.05) -> None:
        """Wait for the crew, staying responsive to errors and deadlines.

        Unlike a bare ``join()``, this loop re-checks after every ``poll``
        interval: a captured worker error ends the wait immediately (the
        caller re-raises it), and the query's cancellation handle — if any
        — is honored in the *calling* thread, so a hung or slow worker can
        never pin the consumer past the query's deadline.
        """
        handle = getattr(ctx, "handle", None)
        while self.alive():
            if self.errors:
                return
            if handle is not None:
                handle.check()
            self.join(poll)

    def stop_and_reap(self, grace: float = REAP_GRACE_SECONDS) -> None:
        """Signal stop and join every worker, bounded by ``grace`` seconds.

        Cooperative workers observe the stop event (or their query
        handle) within a batch and exit; a worker that does not is
        abandoned as a daemon thread rather than blocking teardown
        forever.
        """
        self.stop.set()
        deadline = time.monotonic() + grace
        while self.alive() and time.monotonic() < deadline:
            self.join(0.02)


def default_parallelism() -> int:
    """Degree of parallelism from ``REPRO_PARALLELISM`` (default 1).

    A malformed value raises instead of silently meaning "serial": the env
    var exists so whole test/CI runs can opt in, and a typo that quietly
    neutralized the parallel leg would leave the scheduler unexercised
    while everything stays green.
    """
    raw = os.environ.get("REPRO_PARALLELISM", "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_PARALLELISM must be an integer, got {raw!r}"
        ) from None
    return max(1, value)


def resolve_parallelism(value: int | None) -> int:
    """An explicit degree (clamped to >= 1) or the environment default.

    The single resolution rule shared by every execution entry point
    (``execute_plan``, ``RelGoFramework.execute_iter``), so the two can
    never drift apart.
    """
    if value is None:
        return default_parallelism()
    return max(1, int(value))


def morsel_bounds(
    row_range: "tuple[int, int] | None", num_rows: int
) -> tuple[int, int]:
    """A leaf scan's ``(start, stop)`` bounds: its morsel ``row_range``
    clamped to the table's current size (tables may grow between the
    rewrite and execution), or the full ``[0, num_rows)``.

    The one clamp rule shared by every splittable leaf (``SeqScan``,
    ``ScanVertex``, ``EdgeTripleScan``), row and columnar paths alike.
    """
    if row_range is None:
        return 0, num_rows
    start, stop = row_range
    return min(start, num_rows), min(stop, num_rows)


def morsel_ranges(
    num_rows: int, parallelism: int, batch_size: int
) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` morsels covering ``[0, num_rows)``.

    Morsel boundaries align to ``batch_size`` multiples so worker-side scan
    chunks coincide with the serial scan's chunk grid, and the morsel count
    targets :data:`MORSELS_PER_WORKER` per worker.  A single-range result
    means "not worth splitting" (callers then keep the serial plan).
    """
    if num_rows <= batch_size or parallelism <= 1:
        return [(0, num_rows)]
    target = max(batch_size, -(-num_rows // (parallelism * MORSELS_PER_WORKER)))
    target = -(-target // batch_size) * batch_size  # round up to the grid
    return [
        (start, min(start + target, num_rows))
        for start in range(0, num_rows, target)
    ]


def spill_partition_count(parallelism: int) -> int:
    """Hash-partition fan-out for spilled breaker state.

    Aligned with the exchange's morsel grid (:data:`MORSELS_PER_WORKER`
    morsels per worker) so a future radix-partitioned exchange can map
    spill partitions onto exchange partitions one-to-one, and floored at
    16 so serial spills still split finely enough that one drained
    partition fits comfortably under typical working-set limits.
    """
    return max(16, parallelism * MORSELS_PER_WORKER)


class ExchangeOp(Operator):
    """Merge the batch streams of per-morsel subplans (ordered union).

    Each subplan is one morsel's clone of a leaf-to-breaker operator chain.
    Under a parallel context the subplans run on a worker pool; under a
    serial context (``ctx.parallelism <= 1``) they run inline, one after
    another — same rows, same order, no threads.

    The exchange is transport: it never calls ``ctx.emit`` and holds no
    buffered state beyond the bounded per-morsel run-ahead queues.
    """

    def __init__(self, plans: Sequence[Operator], source_label: str = ""):
        if not plans:
            raise ValueError("exchange needs at least one subplan")
        self.plans = list(plans)
        self.source_label = source_label
        first = self.plans[0]
        columns = getattr(first, "output_columns", None)
        if columns is not None:
            self.output_columns = list(columns)
        output_vars = getattr(first, "output_vars", None)
        if output_vars is not None:
            self.output_vars = list(output_vars)

    def children(self) -> list[Operator]:
        return list(self.plans)

    def layout(self) -> dict[str, int]:
        return {name: i for i, name in enumerate(self.output_columns)}

    def var_index(self, name: str) -> int:
        return self.plans[0].var_index(name)

    def batches(self, ctx) -> Iterator:
        return self._pull(ctx, "batches")

    def columnar_batches(self, ctx) -> Iterator:
        return self._pull(ctx, "columnar_batches")

    # ------------------------------------------------------------------ #
    # streaming merge
    # ------------------------------------------------------------------ #

    def _pull(self, ctx, protocol: str) -> Iterator:
        from repro.exec.context import close_stream

        plans = self.plans
        workers = min(getattr(ctx, "parallelism", 1), len(plans))
        if workers <= 1:
            for plan in plans:
                stream = getattr(plan, protocol)(ctx)
                try:
                    yield from stream
                finally:
                    close_stream(stream)
            return
        label = self.cached_label()
        handle = getattr(ctx, "handle", None)
        faults = getattr(ctx, "faults", None)
        queues = [queue.Queue(maxsize=EXCHANGE_QUEUE_DEPTH) for _ in plans]

        def put(q: "queue.Queue", item) -> bool:
            while not crew.stop.is_set():
                try:
                    q.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def body(i: int):
            # The stream is closed *here*, on the worker that drove it,
            # whether it was exhausted, abandoned on stop, or raised —
            # operator ``finally`` blocks (buffer releases) must not wait
            # for GC.
            q = queues[i]
            stream = getattr(plans[i], protocol)(ctx)
            try:
                for item in stream:
                    if faults is not None:
                        faults.on_exchange(ctx, "put", label)
                    if not put(q, item):
                        return False
                return put(q, _DONE)
            finally:
                close_stream(stream)

        crew = _WorkerCrew(len(plans), workers, "repro-exchange", body)
        crew.start()
        try:
            for q in queues:
                while True:
                    try:
                        item = q.get(timeout=0.05)
                    except queue.Empty:
                        if crew.errors:
                            raise crew.errors[0]
                        if handle is not None:
                            handle.check()
                        if not crew.alive() and q.empty():
                            # All workers exited without a sentinel: only
                            # reachable through cancellation races.
                            return
                        continue
                    if item is _DONE:
                        break
                    if faults is not None:
                        faults.on_exchange(ctx, "get", label)
                    yield item
            if crew.errors:
                raise crew.errors[0]
        finally:
            crew.stop.set()
            deadline = time.monotonic() + REAP_GRACE_SECONDS
            while crew.alive() and time.monotonic() < deadline:
                for q in queues:  # unblock producers stuck on full queues
                    try:
                        while True:
                            q.get_nowait()
                    except queue.Empty:
                        pass
                crew.join(timeout=0.02)

    # ------------------------------------------------------------------ #
    # per-worker folds (parallel pipeline breakers)
    # ------------------------------------------------------------------ #

    def fold(self, ctx, protocol: str, run: Callable) -> list:
        """Run ``run(morsel_index, batch_iterator) -> state`` per subplan.

        Each subplan's stream is consumed entirely on one worker thread
        (morsels are claimed dynamically, so skewed morsels load-balance),
        and the per-morsel states return **in morsel order** — merging
        them left to right preserves every order property that survives
        concatenating the morsels' streams (exact for sharded hash builds
        and tagged top-k candidates; canonical for grouped aggregation,
        whose emission order is batch-boundary-dependent even serially).
        Exceptions from
        any worker (including ``OutOfMemoryError`` from budget charges in
        ``run``) re-raise in the calling thread.  The join is bounded and
        interruptible: it polls for worker errors and the query's
        cancellation handle instead of blocking indefinitely, and
        teardown stops and reaps the crew (with a grace bound) before the
        first error re-raises — one hung worker can no longer pin the
        consumer thread forever, and morsel streams are closed on their
        worker whichever way the fold ends.
        """
        from repro.exec.context import close_stream

        plans = self.plans
        states: list = [None] * len(plans)
        workers = min(getattr(ctx, "parallelism", 1), len(plans))
        label = self.cached_label()
        faults = getattr(ctx, "faults", None)

        def consume(i: int, plan: Operator):
            stream = getattr(plan, protocol)(ctx)
            try:
                if faults is not None:
                    # The fold-mode exchange boundary: one injection point
                    # per morsel, mirroring the streaming merge's put/get.
                    faults.on_exchange(ctx, "fold", label)
                return run(i, stream)
            finally:
                close_stream(stream)

        if workers <= 1:
            for i, plan in enumerate(plans):
                states[i] = consume(i, plan)
            return states

        def body(i: int) -> None:
            states[i] = consume(i, plans[i])

        crew = _WorkerCrew(len(plans), workers, "repro-fold", body)
        crew.start()
        try:
            crew.join_interruptible(ctx)
        finally:
            crew.stop_and_reap()
        if crew.errors:
            raise crew.errors[0]
        return states

    def _label(self) -> str:
        src = f" ({self.source_label})" if self.source_label else ""
        return f"EXCHANGE x{len(self.plans)}{src}"


def fold_source(child: Operator, ctx) -> "ExchangeOp | None":
    """``child`` as a fold target when the context is genuinely parallel.

    Pipeline breakers call this to decide between their serial streaming
    path and the per-worker partial-state fold; a serial context (or a
    degenerate single-morsel exchange) always takes the serial path, so
    ``parallelism=1`` behavior is byte-for-byte today's.
    """
    if (
        getattr(ctx, "parallelism", 1) > 1
        and isinstance(child, ExchangeOp)
        and len(child.plans) > 1
    ):
        return child
    return None


# ---------------------------------------------------------------------- #
# plan rewriting
# ---------------------------------------------------------------------- #

_CHILD_ATTRS = ("child", "left", "right", "graph_op")


def _chain_types() -> tuple:
    """Streaming unary operators safe to clone into per-morsel chains.

    Safe means: single ``child`` input, row-order preserving, and no
    cross-batch state beyond per-call locals (``ChunkSizer`` instances and
    neighbor-map caches are created inside each ``batches()`` call, so
    clones never share them).  ``LimitOp`` is deliberately absent — its
    early exit counts rows globally, so it must sit above the exchange,
    where the ordered merge feeds it the serial row order.
    """
    from repro.graph import physical as gph
    from repro.relational import physical as rel

    return (
        rel.FilterOp,
        rel.ProjectOp,
        rel.RowIdJoin,
        rel.CsrJoin,
        gph.ExpandEdge,
        gph.GetVertex,
        gph.Expand,
        gph.ExpandIntersect,
        gph.VertexFilter,
        gph.EdgeFilter,
        gph.AllDistinct,
    )


def _leaf_rows(op: Operator, ctx=None) -> int | None:
    """Row count of a morsel-splittable leaf source, else None.

    With a snapshot-pinning context, the count is the leaf's *pinned*
    extent — the morsel grid then covers exactly the rows the scan will
    execute over, so live appends between the rewrite and execution can
    neither leak into a trailing morsel nor skew the grid.
    """
    from repro.graph import physical as gph
    from repro.relational import physical as rel

    def rows(table) -> int:
        if ctx is not None:
            return ctx.pin(table).num_rows
        return table.num_rows

    if getattr(op, "row_range", None) is not None:
        return None  # already a morsel
    if isinstance(op, rel.SeqScan):
        return rows(op.table)
    if isinstance(op, gph.ScanVertex):
        return rows(op.mapping.vertex_table(op.label))
    if isinstance(op, gph.EdgeTripleScan):
        # Without the graph index the scan derives its endpoint-rowid
        # columns at runtime (the EVJoin of Eq. 3); splitting would repeat
        # that whole-table work per morsel, so only index-backed scans split.
        if op.index is not None:
            return rows(op.mapping.edge_table(op.edge_label))
    return None


def parallelize_plan(
    plan: Operator, parallelism: int, batch_size: int, ctx=None
) -> Operator:
    """Rewrite ``plan`` for morsel-driven execution at ``parallelism``.

    Every maximal chain of streaming unary operators over a splittable leaf
    becomes an ordered :class:`ExchangeOp` whose subplans are shallow
    clones of the chain, each over one leaf morsel.  Everything else —
    pipeline breakers, joins, unsplittable leaves — is preserved, with
    children rewritten recursively (nodes on a rewritten path are shallow
    clones; the input tree is never mutated).

    Subtrees inside an **early-exit scope** — below a ``LimitOp``, until a
    full-drain boundary (aggregate, sort, top-k, materialize, or a join's
    build side) resets it — are left serial: parallel workers speculate
    ahead of the consumer, and a satisfied LIMIT would discard that
    run-ahead work, so the serial early exit is strictly better there.

    ``parallelism <= 1`` returns ``plan`` unchanged (same object).
    """
    if parallelism <= 1:
        return plan
    from repro.exec.operator import MaterializeOp
    from repro.relational import physical as rel

    chain_types = _chain_types()
    #: Operators that drain the named child completely before emitting a
    #: single row — an early-exit scope above them cannot save that work,
    #: so the scope resets below these edges.
    full_drain = (rel.AggregateOp, rel.SortOp, rel.TopKOp, MaterializeOp)
    build_side_attrs = {"right"}  # hash/NL/pattern joins drain builds fully

    def rewrite(op: Operator, early_exit: bool) -> Operator:
        if isinstance(op, rel.LimitOp):
            early_exit = True
        if not early_exit:
            chain: list[Operator] = []
            cur = op
            while isinstance(cur, chain_types):
                chain.append(cur)
                cur = cur.child
            num_rows = _leaf_rows(cur, ctx)
            if num_rows is not None:
                ranges = morsel_ranges(num_rows, parallelism, batch_size)
                if len(ranges) > 1:
                    subplans: list[Operator] = []
                    for rng in ranges:
                        sub = copy.copy(cur)
                        sub.row_range = rng
                        for link in reversed(chain):
                            clone = copy.copy(link)
                            clone.child = sub
                            sub = clone
                        subplans.append(sub)
                    return ExchangeOp(subplans, source_label=cur.cached_label())
        clone = None
        drains = isinstance(op, full_drain)
        for attr in _CHILD_ATTRS:
            node = getattr(op, attr, None)
            if isinstance(node, Operator):
                child_scope = (
                    False
                    if drains or attr in build_side_attrs
                    else early_exit
                )
                rewritten = rewrite(node, child_scope)
                if rewritten is not node:
                    if clone is None:
                        clone = copy.copy(op)
                    setattr(clone, attr, rewritten)
        return clone if clone is not None else op

    return rewrite(plan, False)


__all__ = [
    "MORSELS_PER_WORKER",
    "EXCHANGE_QUEUE_DEPTH",
    "REAP_GRACE_SECONDS",
    "ExchangeOp",
    "default_parallelism",
    "fold_source",
    "morsel_bounds",
    "morsel_ranges",
    "parallelize_plan",
    "resolve_parallelism",
    "spill_partition_count",
]
