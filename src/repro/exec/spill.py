"""Spill-to-disk out-of-core execution: temp-file lifecycle + serializer.

The memory budget is, by default, a cliff: sort / hash-build / aggregation
buffers trip :class:`~repro.errors.OutOfMemoryError` at the limit, which
*is* the paper's reproduction (the QC3 / IC3-1 OOM entries) and stays
byte-exact.  Arming spill turns the budget into a working-set knob: the
pipeline breakers hash-partition their buffered state and move cold
partitions to temp files, recursing partition by partition on drain, so
queries degrade gracefully instead of dying one row past the cliff.

Arming is opt-in and resolves like every other lifecycle knob (explicit
value wins, then environment)::

    execute_plan(plan, spill=True)                    # temp dir, threshold = budget
    execute_plan(plan, spill=SpillConfig(directory="/fast-ssd", threshold_rows=100_000))
    REPRO_SPILL_DIR=/fast-ssd REPRO_SPILL_THRESHOLD=100000  # env arming

``False`` disarms regardless of environment (how the OOM-pinning tests
keep the paper's trip points exact under the CI spill leg).  Unarmed
execution pays a single ``ctx.spill is None`` test per breaker — the same
zero-cost contract the cancellation and fault hooks honor.

Two layers live here:

* :class:`SpillManager` — owns one query's temp-file lifecycle: a lazily
  created per-query directory, thread-safe file allocation (parallel
  workers spill independently), idempotent :meth:`SpillManager.close`
  that reaps every file, and a process-exit sweep (``atexit``) that
  removes directories of managers a crashed path never closed.  Managers
  are created and closed by ``execute_plan`` / ``execute_iter`` in the
  same deterministic-teardown ``finally`` cascade that releases buffers,
  so no temp files survive success, failure, cancellation, or injected
  disk faults.
* the **typed partition serializer** — :class:`SpillFile` frames.  Row
  frames pickle lists of row tuples; batch frames encode a
  :class:`~repro.exec.vector.ColumnarBatch` column by column, keeping
  typed representations typed: ``array.array`` columns round-trip as
  (typecode, raw buffer), ndarray columns as (dtype, raw buffer),
  dictionary columns as encoded codes plus their value dictionary — so a
  spilled batch deserializes loss-free, NULLs/NaNs included, without
  widening to Python objects.  Aggregation partials round-trip through
  state frames that substitute a pickle-stable marker for the identity
  :data:`~repro.exec.grouping.MISSING` sentinel.

Disk faults: every write/read/merge funnels through
:meth:`SpillManager.check`, the ``spill`` site of the fault harness
(``REPRO_FAULTS="kind=disk,site=spill"`` injects ``ENOSPC``), so unwind
paths of out-of-core execution are testable like every other boundary.
"""

from __future__ import annotations

import atexit
import os
import pickle
import shutil
import tempfile
import threading
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.exec import vector
from repro.exec.grouping import MISSING
from repro.exec.vector import ColumnarBatch, DictVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.context import ExecutionContext

__all__ = [
    "SpillConfig",
    "SpillManager",
    "SpillFile",
    "PartitionWriter",
    "resolve_spill",
    "spill_hash",
    "encode_batch",
    "decode_batch",
]

_DIR_ENV = "REPRO_SPILL_DIR"
_THRESHOLD_ENV = "REPRO_SPILL_THRESHOLD"

#: Rows a PartitionWriter accumulates before flushing one frame to disk.
#: In-flight (uncharged) staging, like the one batch every streaming
#: operator holds; kept small so resident spill state stays a constant.
WRITE_BUFFER_ROWS = 256


@dataclass
class SpillConfig:
    """Where and when a query may spill.

    ``directory`` roots the per-query temp directory (None = the system
    temp dir); ``threshold_rows`` is the per-buffer row count above which
    a breaker moves state to disk (None = the query's
    ``memory_budget_rows``, i.e. spill exactly instead of OOMing).
    """

    directory: str | None = None
    threshold_rows: int | None = None


def resolve_spill(value: Any = None) -> SpillConfig | None:
    """Resolve the effective spill config: explicit value wins, then env.

    ``None`` reads ``REPRO_SPILL_DIR`` / ``REPRO_SPILL_THRESHOLD``
    (neither set = disarmed, the default); ``False`` disarms regardless of
    the environment; ``True`` arms with defaults; a string is a spill
    directory; an int is a threshold; a :class:`SpillConfig` passes
    through.  A malformed threshold env var raises rather than silently
    disarming the knob.
    """
    if value is None:
        directory = os.environ.get(_DIR_ENV, "").strip() or None
        raw = os.environ.get(_THRESHOLD_ENV, "").strip()
        threshold: int | None = None
        if raw:
            try:
                threshold = int(raw)
            except ValueError:
                raise ValueError(
                    f"{_THRESHOLD_ENV} must be a row count, got {raw!r}"
                ) from None
            if threshold < 1:
                raise ValueError(
                    f"{_THRESHOLD_ENV} must be >= 1, got {threshold}"
                )
        if directory is None and threshold is None:
            return None
        return SpillConfig(directory=directory, threshold_rows=threshold)
    if value is False:
        return None
    if value is True:
        return SpillConfig()
    if isinstance(value, str):
        return SpillConfig(directory=value)
    if isinstance(value, int):
        return SpillConfig(threshold_rows=value)
    if isinstance(value, SpillConfig):
        return value
    raise TypeError(f"cannot resolve a spill config from {value!r}")


def spill_hash(key: Any, salt: int = 0) -> int:
    """Deterministic-per-process partition hash of one (canonical) key.

    Recursive grace-join / grouping partitioning re-salts so an oversized
    partition actually splits on the next level instead of mapping every
    key back to itself.
    """
    return hash((salt, key))


# --------------------------------------------------------------------- #
# process-exit sweep guard
# --------------------------------------------------------------------- #

_live_lock = threading.Lock()
_live_managers: "set[SpillManager]" = set()


def _sweep_live_managers() -> None:  # pragma: no cover - exercised via subprocess
    """Remove every live manager's directory at interpreter exit.

    Normal paths close managers in ``finally`` cascades; this guard covers
    crash paths (e.g. ``os._exit``-adjacent teardown, a generator the GC
    never finalized) so no temp directories outlive the process.
    """
    with _live_lock:
        managers = list(_live_managers)
    for manager in managers:
        manager.close()


atexit.register(_sweep_live_managers)


class SpillManager:
    """Owns one query's spill-file lifecycle.

    The temp directory is created lazily on the first file, so an
    armed-but-idle query touches the filesystem not at all.  File
    allocation and frame appends are thread-safe: parallel workers spill
    independently through one shared manager.  :meth:`close` is
    idempotent and reaps everything; the module's ``atexit`` sweep closes
    managers that crash paths never reached.
    """

    def __init__(self, config: SpillConfig | None = None):
        self.config = config or SpillConfig()
        self._lock = threading.Lock()
        self._dir: str | None = None
        self._counter = 0
        self._files: list[SpillFile] = []
        self._closed = False
        self._ctx: "ExecutionContext | None" = None
        self.files_created = 0
        self.bytes_written = 0
        with _live_lock:
            _live_managers.add(self)

    @property
    def threshold_rows(self) -> int | None:
        return self.config.threshold_rows

    @property
    def directory(self) -> str | None:
        """The per-query temp directory (None until the first file)."""
        return self._dir

    def bind(self, ctx: "ExecutionContext") -> "SpillManager":
        """Attach the owning context so spill I/O sees its fault hooks."""
        self._ctx = ctx
        return self

    def check(self, point: str, label: str) -> None:
        """Fault hook guarding one spill I/O: ``point`` is ``write`` /
        ``read`` / ``merge``; armed ``disk`` faults raise ``ENOSPC`` here."""
        ctx = self._ctx
        if ctx is not None and ctx.faults is not None:
            ctx.faults.on_spill(ctx, point, label)

    def create_file(self, label: str) -> "SpillFile":
        """Allocate one spill file (thread-safe)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("spill manager is closed")
            if self._dir is None:
                root = self.config.directory
                if root is not None:
                    os.makedirs(root, exist_ok=True)
                self._dir = tempfile.mkdtemp(prefix="repro-spill-", dir=root)
            self._counter += 1
            self.files_created += 1
            path = os.path.join(self._dir, f"part-{self._counter:05d}.bin")
        spill_file = SpillFile(self, path, label)
        with self._lock:
            self._files.append(spill_file)
        return spill_file

    def live_files(self) -> int:
        """Spill files currently on disk (forensics for the leak tests)."""
        with self._lock:
            return sum(1 for f in self._files if not f.deleted)

    def close(self) -> None:
        """Close every file handle and remove the temp directory.

        Idempotent; called from the same ``finally`` cascade that releases
        buffers, and from the process-exit sweep for crash paths.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            files = list(self._files)
            directory = self._dir
        for spill_file in files:
            spill_file._close_handles()
            spill_file.deleted = True  # rmtree below reaps them wholesale
        if directory is not None:
            shutil.rmtree(directory, ignore_errors=True)
        with _live_lock:
            _live_managers.discard(self)


class SpillFile:
    """One append-only spill file of tagged, framed partitions.

    Frames are self-describing: row frames (pickled lists of row tuples),
    batch frames (typed columnar encoding, see :func:`encode_batch`), and
    state frames (aggregation partials with the ``MISSING`` sentinel made
    pickle-stable).  Appends from parallel workers serialize under a
    per-file lock; reads are sequential over the frames in append order.
    """

    __slots__ = ("manager", "path", "label", "rows_written", "deleted", "_lock", "_handle")

    def __init__(self, manager: SpillManager, path: str, label: str):
        self.manager = manager
        self.path = path
        self.label = label
        self.rows_written = 0
        self.deleted = False
        self._lock = threading.Lock()
        self._handle = None

    # -- writing -------------------------------------------------------- #

    def _append(self, payload: bytes, rows: int) -> None:
        self.manager.check("write", self.label)
        with self._lock:
            if self.deleted:
                raise RuntimeError(f"spill file {self.path} was deleted")
            if self._handle is None:
                self._handle = open(self.path, "ab")
            self._handle.write(payload)
            self.rows_written += rows
        self.manager.bytes_written += len(payload)

    def append_rows(self, rows: list) -> None:
        """Append one row frame (a list of row tuples)."""
        if not rows:
            return
        self._append(pickle.dumps(("R", rows), protocol=pickle.HIGHEST_PROTOCOL), len(rows))

    def append_batch(self, batch: ColumnarBatch) -> None:
        """Append one typed batch frame (loss-free columnar encoding)."""
        if not len(batch):
            return
        self._append(
            pickle.dumps(("B", encode_batch(batch)), protocol=pickle.HIGHEST_PROTOCOL),
            len(batch),
        )

    def append_state(self, keys: list, cells: list) -> None:
        """Append one aggregation-state frame: per-group keys plus the
        per-aggregate partial cell lists (``MISSING`` made pickle-stable)."""
        if not keys:
            return
        payload = ("S", keys, [_encode_cells(c) for c in cells])
        self._append(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL), len(keys))

    # -- reading -------------------------------------------------------- #

    def _frames(self) -> Iterator[tuple]:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
        self.manager.check("read", self.label)
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            while True:
                try:
                    yield pickle.load(handle)
                except EOFError:
                    return

    def read_rows(self) -> Iterator[list]:
        """Yield row lists back, frame by frame, in append order (batch
        frames decode through the row boundary)."""
        for frame in self._frames():
            if frame[0] == "R":
                yield frame[1]
            elif frame[0] == "B":
                yield decode_batch(frame[1]).to_rows()
            else:  # pragma: no cover - guarded by the writers
                raise ValueError(f"unexpected spill frame tag {frame[0]!r}")

    def read_batches(self) -> Iterator[ColumnarBatch]:
        """Yield columnar batches back, typed columns still typed."""
        for frame in self._frames():
            if frame[0] == "B":
                yield decode_batch(frame[1])
            elif frame[0] == "R":
                yield ColumnarBatch.from_rows(frame[1])
            else:  # pragma: no cover - guarded by the writers
                raise ValueError(f"unexpected spill frame tag {frame[0]!r}")

    def read_states(self) -> Iterator[tuple[list, list]]:
        """Yield ``(keys, cells)`` aggregation-state frames back."""
        for frame in self._frames():
            if frame[0] != "S":  # pragma: no cover - guarded by the writers
                raise ValueError(f"unexpected spill frame tag {frame[0]!r}")
            yield frame[1], [_decode_cells(c) for c in frame[2]]

    def delete(self) -> None:
        """Remove the file early (its partition has been fully drained)."""
        self._close_handles()
        self.deleted = True
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def _close_handles(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class PartitionWriter:
    """Buffered appender for one spill partition.

    Stages up to :data:`WRITE_BUFFER_ROWS` items in memory (in-flight,
    uncharged — the same contract as a streaming operator's one batch in
    flight) and flushes them as one frame; the backing file is allocated
    lazily so partitions that never receive a row never touch disk.
    """

    __slots__ = ("manager", "label", "kind", "file", "_pending", "rows")

    def __init__(self, manager: SpillManager, label: str, kind: str = "rows"):
        self.manager = manager
        self.label = label
        self.kind = kind
        self.file: SpillFile | None = None
        self._pending: list = []
        self.rows = 0

    def append(self, item: Any) -> None:
        self._pending.append(item)
        self.rows += 1
        if len(self._pending) >= WRITE_BUFFER_ROWS:
            self.flush()

    def extend(self, items: list) -> None:
        self._pending.extend(items)
        self.rows += len(items)
        if len(self._pending) >= WRITE_BUFFER_ROWS:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        if self.file is None:
            self.file = self.manager.create_file(self.label)
        self.file.append_rows(self._pending)
        self._pending = []

    def drain(self) -> Iterator[list]:
        """Flush and yield every appended item back, in append order."""
        self.flush()
        if self.file is not None:
            yield from self.file.read_rows()

    def delete(self) -> None:
        self._pending = []
        if self.file is not None:
            self.file.delete()
            self.file = None


# --------------------------------------------------------------------- #
# typed columnar serializer
# --------------------------------------------------------------------- #


class _MissingToken:
    """Pickle-stable stand-in for the identity MISSING sentinel.

    ``MISSING = object()`` compares by identity, which a pickle round-trip
    would silently break (an unpickled ``object()`` is a *different*
    object, so MIN/MAX merges would treat empty partials as real values).
    The encoder substitutes this *class* — classes pickle by reference, so
    identity survives — and the decoder restores the sentinel.
    """


def _encode_cells(cells: list) -> list:
    if any(cell is MISSING for cell in cells):
        return [_MissingToken if cell is MISSING else cell for cell in cells]
    return cells


def _decode_cells(cells: list) -> list:
    return [MISSING if cell is _MissingToken else cell for cell in cells]


def encode_batch(batch: ColumnarBatch) -> tuple:
    """Encode one batch, keeping typed columns typed.

    ``array.array`` → ``("a", typecode, raw bytes)``; ndarray →
    ``("n", dtype str, raw bytes)``; dictionary vectors → ``("d", codes,
    values)`` with the codes themselves typed-encoded; everything else
    (plain lists with NULLs/NaNs, object columns) pickles as
    ``("p", list)``.  The batch is compacted first so selection vectors
    never serialize unreferenced backing rows.
    """
    compact = batch.compact()
    return (
        [_encode_column(column) for column in compact.columns],
        len(compact),
    )


def _encode_column(column: Any) -> tuple:
    if isinstance(column, array):
        return ("a", column.typecode, column.tobytes())
    if isinstance(column, DictVector):
        return ("d", _encode_column(column.codes), list(column.values))
    if vector.is_ndarray(column):
        if column.dtype.kind in "biuf":
            return ("n", column.dtype.str, column.tobytes())
        # Object / string ndarrays carry Python values; keep them exact.
        return ("p", column.tolist())
    return ("p", list(column))


def decode_batch(encoded: tuple) -> ColumnarBatch:
    """Decode :func:`encode_batch` output back into a columnar batch."""
    columns, length = encoded
    return ColumnarBatch([_decode_column(c) for c in columns], length)


def _decode_column(encoded: tuple) -> Any:
    tag = encoded[0]
    if tag == "a":
        column = array(encoded[1])
        column.frombytes(encoded[2])
        return column
    if tag == "d":
        codes = _decode_column(encoded[1])
        values = encoded[2]
        return DictVector(codes, values, {v: i for i, v in enumerate(values)})
    if tag == "n":
        np = vector._np
        if np is not None:
            return np.frombuffer(encoded[2], dtype=encoded[1]).copy()
        # Written with numpy, read without (REPRO_NUMPY flip mid-process):
        # rebuild through the equivalent typed buffer.
        typecode = {"<i8": "q", "<f8": "d"}.get(encoded[1])
        if typecode is None:
            raise ValueError(
                f"cannot decode ndarray column of dtype {encoded[1]!r} without numpy"
            )
        column = array(typecode)
        column.frombytes(encoded[2])
        return column
    if tag == "p":
        return encoded[1]
    raise ValueError(f"unknown spill column tag {tag!r}")
