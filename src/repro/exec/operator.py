"""The shared operator protocol of the converged execution engine.

Both operator families — ``repro.relational.physical.PhysicalOperator`` and
``repro.graph.physical.GraphOperator`` — subclass :class:`Operator` and
speak two pull protocols:

* :meth:`Operator.batches` yields chunks of row tuples (the original
  streaming protocol, kept as the compatibility/reference path);
* :meth:`Operator.columnar_batches` yields
  :class:`~repro.exec.vector.ColumnarBatch` chunks — the vectorized path.
  The default implementation adapts any row-protocol operator by
  transposing its batches, so a columnar pipeline can sit on top of an
  unported operator; ported operators override it with genuinely
  column-at-a-time kernels.

Because batches are pulled lazily under both protocols, downstream
operators control how much upstream work happens: a satisfied ``LIMIT``
simply stops iterating and the whole upstream pipeline halts.

:meth:`Operator.execute` is the materializing compatibility entry point
(tests and ad-hoc callers); it drains :meth:`batches` into one list.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.exec.vector import ColumnarBatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec.context import ExecutionContext

Batch = list  # a chunk of row tuples


class Operator:
    """Base class of all physical operators (relational and graph)."""

    def batches(self, ctx: "ExecutionContext") -> Iterator[Batch]:
        """Yield the operator's output as chunks of row tuples.

        The default adapts a legacy subclass that only overrides
        :meth:`execute`, re-chunking its materialized output.
        """
        if type(self).execute is Operator.execute:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither batches() nor execute()"
            )
        rows = self.execute(ctx)
        size = ctx.batch_size
        for start in range(0, len(rows), size):
            yield rows[start : start + size]

    def columnar_batches(self, ctx: "ExecutionContext") -> Iterator[ColumnarBatch]:
        """Yield the operator's output as columnar chunks.

        The default is the row-protocol boundary: it transposes
        :meth:`batches` output, so an unported operator (and its subtree,
        which it pulls through the row protocol) keeps exact row-level
        semantics inside a columnar pipeline.
        """
        from repro.exec.kernels import rows_to_columnar

        return rows_to_columnar(self.batches(ctx))

    def execute(self, ctx: "ExecutionContext") -> list[tuple]:
        """Materialize the full output (compatibility/testing entry point)."""
        rows: list[tuple] = []
        for batch in self.batches(ctx):
            rows.extend(batch)
        return rows

    def children(self) -> list["Operator"]:
        return []

    def cached_label(self) -> str:
        """Memoized :meth:`_label`.

        Labels can stringify whole predicate trees; the emit wrappers ask
        for them on every execution, so the text is computed once per
        operator instance (operators are immutable after construction).
        """
        cached = getattr(self, "_label_text", None)
        if cached is None:
            cached = self._label()
            self._label_text = cached
        return cached

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self._label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


class MaterializeOp(Operator):
    """Pipeline breaker: fully buffers the child's output before emitting.

    This is how the pre-streaming engine behaved at *every* operator
    boundary.  It remains in two roles:

    * modelling naive tuple-materializing engines (the Kùzu-like baseline
      materializes each traversal step, which is what blows its memory
      budget on cyclic queries — the paper's Kùzu OOM entries);
    * as the "before" engine in executor microbenchmarks
      (``benchmarks/bench_exec_streaming.py``).

    The buffered rows are charged against the memory budget.
    """

    def __init__(self, child: Operator):
        self.child = child
        columns = getattr(child, "output_columns", None)
        if columns is not None:
            self.output_columns = list(columns)
        output_vars = getattr(child, "output_vars", None)
        if output_vars is not None:
            self.output_vars = list(output_vars)

    def children(self) -> list[Operator]:
        return [self.child]

    def var_index(self, name: str) -> int:
        return self.child.var_index(name)

    def layout(self) -> dict[str, int]:
        return {name: i for i, name in enumerate(self.output_columns)}

    def batches(self, ctx: "ExecutionContext") -> Iterator[Batch]:
        from repro.exec.context import close_stream

        buffer = ctx.buffer(self._label())
        source = self.child.batches(ctx)
        spool = None
        try:
            limit = ctx.spill_limit()
            rows: list[tuple] = []
            for batch in source:
                if spool is not None or (
                    limit is not None and ctx.buffered_rows + len(batch) > limit
                ):
                    # Out-of-core: past the working-set limit the remainder
                    # spools to disk (never reverting to memory, so arrival
                    # order is preserved: resident prefix, then the spool).
                    if spool is None:
                        spool = ctx.spill.create_file(self._label())
                    spool.append_rows(list(batch))
                    continue
                rows.extend(batch)
                buffer.grow(len(batch))
            size = ctx.batch_size
            for start in range(0, len(rows), size):
                batch = rows[start : start + size]
                ctx.emit(len(batch), self._label())
                yield batch
            if spool is not None:
                pending: list[tuple] = []
                for frame in spool.read_rows():
                    pending.extend(frame)
                    while len(pending) >= size:
                        chunk = pending[:size]
                        del pending[:size]
                        ctx.emit(len(chunk), self._label())
                        yield chunk
                if pending:
                    ctx.emit(len(pending), self._label())
                    yield pending
                spool.delete()
        finally:
            close_stream(source)
            buffer.release()

    def _label(self) -> str:
        return "MATERIALIZE"


_CHILD_ATTRS = ("child", "left", "right", "graph_op")


def materialize_plan(op: Operator) -> Operator:
    """Wrap every operator of a plan in :class:`MaterializeOp` (in place).

    Reproduces the pre-streaming engine's execution profile — every
    intermediate fully materialized and charged — for before/after
    comparisons.  The tree is mutated; apply only to plans built for this
    purpose.
    """
    for attr in _CHILD_ATTRS:
        child = getattr(op, attr, None)
        if isinstance(child, Operator):
            setattr(op, attr, materialize_plan(child))
    return MaterializeOp(op)
