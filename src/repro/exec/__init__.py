"""The converged batched streaming execution engine.

One operator protocol serves both the relational and the graph physical
layers (the runtime counterpart of the paper's converged optimizer stack):
every operator implements ``batches(ctx) -> Iterator[list[tuple]]``, pulling
chunks of ~:data:`DEFAULT_BATCH_SIZE` rows from its children and yielding
chunks downstream.  Pipelines therefore stream: a ``LIMIT`` stops pulling as
soon as it is satisfied, and only genuine pipeline breakers (hash-join
builds, sort buffers, aggregation state, distinct sets) hold intermediate
state — which is exactly what the memory budget charges.

* :mod:`repro.exec.context` — :class:`ExecutionContext` (budget, counters),
  :class:`Buffer` accounting handles, :class:`QueryResult`, and
  :func:`execute_plan`.
* :mod:`repro.exec.operator` — the :class:`Operator` protocol shared by
  ``relational.physical`` and ``graph.physical``, plus the
  :class:`MaterializeOp` pipeline breaker used to model naive
  fully-materializing engines.
* :mod:`repro.exec.kernels` — the shared filter / project / hash-build /
  probe / expand kernels both operator families are built from, in row and
  columnar flavours.
* :mod:`repro.exec.vector` — :class:`ColumnarBatch`, the struct-of-arrays
  chunk with selection vector that the vectorized kernels flow, with
  optional numpy-accelerated gather.
* :mod:`repro.exec.grouping` — the grouping engine: NaN-canonical grouping
  /dedup keys and the factorize + segment-reduction kernels behind
  ``AggregateOp`` / ``DistinctOp`` (``GroupedAggregation``,
  ``StreamingDistinct``).
* :mod:`repro.exec.scheduler` — morsel-driven parallel execution: the
  worker pool, the ordered :class:`ExchangeOp` merge, per-worker partial
  state folds for pipeline breakers, and the plan rewriter
  (:func:`parallelize_plan`, driven by ``REPRO_PARALLELISM`` /
  ``RelGoConfig.parallelism``; ``parallelism=1`` preserves serial
  execution byte for byte).
* :mod:`repro.exec.governor` — :class:`MemoryGovernor`, the process-level
  pool concurrent queries lease their per-query budgets from (default:
  unbounded — single-query semantics and the paper's OOM trip points are
  untouched).
* :mod:`repro.exec.faults` — the fault-injection harness
  (:class:`FaultInjector`, armed via ``REPRO_FAULTS``): deliberate
  errors/OOMs/delays/cancellations/disk faults at emit/grow/exchange/spill
  boundaries, used by the fault-matrix tests and the CI chaos leg to
  exercise unwind paths.
* :mod:`repro.exec.spill` — spill-to-disk out-of-core execution
  (:class:`SpillManager`, armed via ``RelGoConfig.spill`` /
  ``REPRO_SPILL_DIR`` / ``REPRO_SPILL_THRESHOLD``): the buffering pipeline
  breakers degrade to partitioned disk state instead of tripping the
  budget OOM.  Disarmed by default — the paper's OOM trip points stay
  byte-exact.

The query lifecycle layer lives in :mod:`repro.exec.context`:
:class:`QueryHandle` (cooperative cancellation token + deadline, checked
at batch boundaries — ``REPRO_QUERY_TIMEOUT`` / ``execute_plan(timeout=)``)
raises :class:`~repro.errors.QueryTimeout` / ``QueryCancelled``, and
teardown is deterministic — streams are explicitly closed so operator
``finally`` blocks release every buffer whichever way a query ends.
"""

from repro.exec.context import (
    DEFAULT_BATCH_SIZE,
    MIN_BATCH_SIZE,
    Buffer,
    ExecutionContext,
    QueryHandle,
    QueryResult,
    close_stream,
    execute_plan,
    resolve_timeout,
)
from repro.exec.faults import (
    Fault,
    FaultInjector,
    parse_faults,
    plan_boundaries,
    resolve_faults,
)
from repro.exec.governor import (
    MemoryGovernor,
    MemoryLease,
    global_governor,
    resolve_governor,
    set_global_governor,
)
from repro.exec.operator import MaterializeOp, Operator, materialize_plan
from repro.exec.scheduler import (
    ExchangeOp,
    default_parallelism,
    morsel_ranges,
    parallelize_plan,
)
from repro.exec.spill import SpillConfig, SpillManager, resolve_spill
from repro.exec.vector import (
    ColumnarBatch,
    numpy_available,
    numpy_enabled,
    set_numpy_enabled,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "MIN_BATCH_SIZE",
    "Buffer",
    "ExecutionContext",
    "QueryHandle",
    "QueryResult",
    "close_stream",
    "execute_plan",
    "resolve_timeout",
    "Fault",
    "FaultInjector",
    "parse_faults",
    "plan_boundaries",
    "resolve_faults",
    "MemoryGovernor",
    "MemoryLease",
    "global_governor",
    "resolve_governor",
    "set_global_governor",
    "Operator",
    "MaterializeOp",
    "materialize_plan",
    "ExchangeOp",
    "default_parallelism",
    "morsel_ranges",
    "parallelize_plan",
    "SpillConfig",
    "SpillManager",
    "resolve_spill",
    "ColumnarBatch",
    "numpy_available",
    "numpy_enabled",
    "set_numpy_enabled",
]
