"""The converged batched streaming execution engine.

One operator protocol serves both the relational and the graph physical
layers (the runtime counterpart of the paper's converged optimizer stack):
every operator implements ``batches(ctx) -> Iterator[list[tuple]]``, pulling
chunks of ~:data:`DEFAULT_BATCH_SIZE` rows from its children and yielding
chunks downstream.  Pipelines therefore stream: a ``LIMIT`` stops pulling as
soon as it is satisfied, and only genuine pipeline breakers (hash-join
builds, sort buffers, aggregation state, distinct sets) hold intermediate
state — which is exactly what the memory budget charges.

* :mod:`repro.exec.context` — :class:`ExecutionContext` (budget, counters),
  :class:`Buffer` accounting handles, :class:`QueryResult`, and
  :func:`execute_plan`.
* :mod:`repro.exec.operator` — the :class:`Operator` protocol shared by
  ``relational.physical`` and ``graph.physical``, plus the
  :class:`MaterializeOp` pipeline breaker used to model naive
  fully-materializing engines.
* :mod:`repro.exec.kernels` — the shared filter / project / hash-build /
  probe / expand kernels both operator families are built from, in row and
  columnar flavours.
* :mod:`repro.exec.vector` — :class:`ColumnarBatch`, the struct-of-arrays
  chunk with selection vector that the vectorized kernels flow, with
  optional numpy-accelerated gather.
* :mod:`repro.exec.grouping` — the grouping engine: NaN-canonical grouping
  /dedup keys and the factorize + segment-reduction kernels behind
  ``AggregateOp`` / ``DistinctOp`` (``GroupedAggregation``,
  ``StreamingDistinct``).
* :mod:`repro.exec.scheduler` — morsel-driven parallel execution: the
  worker pool, the ordered :class:`ExchangeOp` merge, per-worker partial
  state folds for pipeline breakers, and the plan rewriter
  (:func:`parallelize_plan`, driven by ``REPRO_PARALLELISM`` /
  ``RelGoConfig.parallelism``; ``parallelism=1`` preserves serial
  execution byte for byte).
"""

from repro.exec.context import (
    DEFAULT_BATCH_SIZE,
    MIN_BATCH_SIZE,
    Buffer,
    ExecutionContext,
    QueryResult,
    execute_plan,
)
from repro.exec.operator import MaterializeOp, Operator, materialize_plan
from repro.exec.scheduler import (
    ExchangeOp,
    default_parallelism,
    morsel_ranges,
    parallelize_plan,
)
from repro.exec.vector import (
    ColumnarBatch,
    numpy_available,
    numpy_enabled,
    set_numpy_enabled,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "MIN_BATCH_SIZE",
    "Buffer",
    "ExecutionContext",
    "QueryResult",
    "execute_plan",
    "Operator",
    "MaterializeOp",
    "materialize_plan",
    "ExchangeOp",
    "default_parallelism",
    "morsel_ranges",
    "parallelize_plan",
    "ColumnarBatch",
    "numpy_available",
    "numpy_enabled",
    "set_numpy_enabled",
]
