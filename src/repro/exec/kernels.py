"""Shared streaming kernels.

The relational and graph operator families used to carry two private copies
of the same inner loops (filter, project, hash build, hash probe, adjacency
expansion).  These generators/helpers are the single shared implementation
both families are now built from, in two flavours:

* the **row kernels** (top half) operate on batches that are lists of row
  tuples and preserve row order — the original streaming protocol, kept as
  the compatibility/reference path;
* the **columnar kernels** (bottom half) operate on
  :class:`~repro.exec.vector.ColumnarBatch` chunks: filters refine
  selection vectors, projections gather columns, hash build/probe extract
  whole key columns at once.  These are the vectorized hot loops of the
  engine.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.exec import vector
from repro.exec.context import Buffer, ExecutionContext, close_stream
from repro.exec.vector import ColumnarBatch, gather, take

Batch = list


def emit_batches(
    ctx: ExecutionContext, label: str, stream: Iterable[Batch]
) -> Iterator[Batch]:
    """Count each non-empty batch of ``stream`` against ``label`` and pass it on.

    ``stream`` is closed on any exit — including an ``emit``-raised
    cancellation/fault — so the close cascades into suspended upstream
    generators and their ``finally`` blocks release buffers deterministically
    rather than at GC time.
    """
    try:
        for batch in stream:
            if not batch:
                continue
            ctx.emit(len(batch), label)
            yield batch
    finally:
        close_stream(stream)


def chunked(rows: list, size: int) -> Iterator[Batch]:
    """Re-chunk a materialized row list into batches of ``size``."""
    for start in range(0, len(rows), size):
        yield rows[start : start + size]


def filter_batches(
    batches: Iterable[Batch], keep: Callable[[tuple], Any]
) -> Iterator[Batch]:
    """Keep the rows of each batch for which ``keep(row)`` is truthy."""
    for batch in batches:
        out = [row for row in batch if keep(row)]
        if out:
            yield out


def map_batches(
    batches: Iterable[Batch], transform: Callable[[Batch], Batch]
) -> Iterator[Batch]:
    """Apply a whole-batch transform (projection, gather) to each batch."""
    for batch in batches:
        out = transform(batch)
        if out:
            yield out


def scalar_key(index: int) -> Callable[[tuple], Any]:
    """Single-column join key; ``None`` values never match (SQL semantics)."""
    return lambda row: row[index]


def tuple_key(indices: list[int]) -> Callable[[tuple], Any]:
    """Multi-column join key; returns None (no match) when any part is NULL."""

    def key(row: tuple) -> Any:
        parts = tuple(row[i] for i in indices)
        return None if any(p is None for p in parts) else parts

    return key


def build_hash_table(
    batches: Iterable[Batch],
    key_of: Callable[[tuple], Any],
    buffer: Buffer | None,
    value_of: Callable[[tuple], Any] | None = None,
) -> dict[Any, list]:
    """Drain ``batches`` into ``key -> [values]``, charging ``buffer``.

    Rows whose key is ``None`` are skipped (SQL NULLs never join).  The
    buffer is grown incrementally so an exploding build side trips the
    memory budget mid-build, not after the fact.  Pass ``buffer=None`` when
    the rows were already charged by the caller (e.g. re-hashing an input
    that was buffered for an adaptive build-side choice).
    """
    table: dict[Any, list] = {}
    try:
        for batch in batches:
            kept = 0
            for row in batch:
                key = key_of(row)
                if key is None:
                    continue
                value = row if value_of is None else value_of(row)
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [value]
                else:
                    bucket.append(value)
                kept += 1
            if buffer is not None:
                buffer.grow(kept)
    finally:
        # A mid-build budget trip (or injected fault) must not leave the
        # build stream suspended: close it so upstream finallys run now.
        close_stream(batches)
    return table


def probe_hash_table(
    batches: Iterable[Batch],
    table: dict[Any, list],
    key_of: Callable[[tuple], Any],
    batch_size: int,
) -> Iterator[Batch]:
    """Stream probe: concatenate each probing row with its matches.

    The build values must be tuples (full rows or pre-trimmed extras); the
    output row is ``probe_row + value``.  Output is re-chunked to
    ``batch_size`` so joins with high fan-out keep bounded in-flight state.
    """
    lookup = table.get
    out: list = []
    for batch in batches:
        for row in batch:
            matches = lookup(key_of(row))
            if not matches:
                continue
            if len(matches) == 1:
                out.append(row + matches[0])
            else:
                out.extend([row + match for match in matches])
            if len(out) >= batch_size:
                yield out
                out = []
    if out:
        yield out


#: Recursion ceiling for grace-join re-partitioning.  A partition whose
#: build side still exceeds the working-set limit after this many re-salted
#: splits is dominated by one giant key group; splitting further cannot
#: help, so it builds in memory (tripping the *budget* only if it genuinely
#: exceeds it).
GRACE_MAX_DEPTH = 8


def grace_hash_join(
    build_batches: Iterable[Batch],
    probe_batches: Iterable[Batch],
    build_key: Callable[[tuple], Any],
    probe_key: Callable[[tuple], Any],
    buffer: Buffer,
    ctx: ExecutionContext,
    label: str,
    value_of: Callable[[tuple], Any] | None = None,
) -> Iterator[Batch]:
    """Out-of-core hash join: partitioned build with cold-partition spilling.

    The build side hash-partitions into :func:`spill_partition_count`
    partitions; while the query's tracked working set fits under
    ``ctx.spill_limit()`` the pairs stay in memory (charged to
    ``buffer``), and when a batch would push past the limit the largest
    partition is evicted to a spill file — so the build cannot trip the
    budget's OOM however much state the rest of the plan holds.
    The probe streams matches against the frozen resident partitions
    immediately (in probe order) and defers rows belonging to spilled
    partitions to per-partition probe files; each spilled partition then
    joins independently — re-partitioned recursively under a fresh hash
    salt while its build side still exceeds the limit — and its matches
    are emitted partition by partition after the streamed phase.  Output
    row order therefore differs from the in-memory join (which is
    order-contractual nowhere); the row *set* is identical, which the
    spill parity suite pins.

    Build values are picklable tuples (full rows, or ``value_of``-trimmed
    extras); output rows are ``probe_row + value``.  Every file I/O runs
    through the manager's ``spill`` fault site, and all files are reaped
    as their partition drains (and unconditionally at manager close).
    """
    from repro.exec.scheduler import spill_partition_count
    from repro.exec.spill import PartitionWriter, spill_hash

    manager = ctx.spill
    assert manager is not None
    limit = ctx.spill_limit()
    assert limit is not None
    P = spill_partition_count(ctx.parallelism)
    resident: list[list] = [[] for _ in range(P)]
    spilled: dict[int, PartitionWriter] = {}

    def spill_build_partition(p: int, staged: dict[int, list]) -> int:
        """Move partition ``p`` (resident + staged pairs) to its file;
        returns how many staged rows stopped needing memory."""
        writer = spilled.get(p)
        if writer is None:
            writer = spilled[p] = PartitionWriter(manager, f"{label} build p{p}")
        pairs = resident[p]
        if pairs:
            writer.extend(pairs)
            buffer.shrink(len(pairs))
            resident[p] = []
        staged_pairs = staged.pop(p, None)
        if staged_pairs:
            writer.extend(staged_pairs)
            return len(staged_pairs)
        return 0

    try:
        # Phase 1 — partitioned build with eviction before overflow.
        for batch in build_batches:
            staged: dict[int, list] = {}
            for row in batch:
                key = build_key(row)
                if key is None:
                    continue
                value = row if value_of is None else value_of(row)
                p = spill_hash(key) % P
                writer = spilled.get(p)
                if writer is not None:
                    writer.append((key, value))
                else:
                    staged.setdefault(p, []).append((key, value))
            added = sum(len(v) for v in staged.values())
            while added and ctx.buffered_rows + added > limit:
                victim = max(
                    range(P),
                    key=lambda q: len(resident[q]) + len(staged.get(q, ())),
                )
                if not (len(resident[victim]) + len(staged.get(victim, ()))):
                    break  # nothing left to evict; added == 0 next check
                added -= spill_build_partition(victim, staged)
            for p, pairs in staged.items():
                resident[p].extend(pairs)
            if added:
                buffer.grow(added)
    finally:
        close_stream(build_batches)

    # Freeze the resident partitions into one probe table (their key sets
    # are disjoint, so one dict probes them all at in-memory speed).
    table: dict[Any, list] = {}
    for p in range(P):
        for key, value in resident[p]:
            bucket = table.get(key)
            if bucket is None:
                table[key] = [value]
            else:
                bucket.append(value)
        resident[p] = []
    resident_rows = buffer.rows  # the frozen table's charge, released below

    # Phase 2 — streamed probe: resident matches emit now, spilled-partition
    # probe rows defer to per-partition files.
    probe_writers: dict[int, PartitionWriter] = {}
    lookup = table.get
    size = ctx.batch_size
    out: list = []
    try:
        for batch in probe_batches:
            for row in batch:
                key = probe_key(row)
                if key is None:
                    continue
                if spilled:
                    p = spill_hash(key) % P
                    if p in spilled:
                        writer = probe_writers.get(p)
                        if writer is None:
                            writer = probe_writers[p] = PartitionWriter(
                                manager, f"{label} probe p{p}"
                            )
                        writer.append(row)
                        continue
                matches = lookup(key)
                if not matches:
                    continue
                if len(matches) == 1:
                    out.append(row + matches[0])
                else:
                    out.extend([row + match for match in matches])
                if len(out) >= size:
                    yield out
                    out = []
    finally:
        close_stream(probe_batches)
    if out:
        yield out
        out = []

    # The streamed phase is over: drop the resident table and its charge
    # before terminal partitions build (each charges up to the limit, so
    # stacking them on the still-resident table could trip the budget the
    # spill exists to avoid).
    table.clear()
    buffer.shrink(resident_rows)

    # Phase 3 — drain spilled partitions, recursing (re-salted) while a
    # partition's build side still exceeds the working-set limit.
    stack = [
        (spilled[p], probe_writers.get(p), 1) for p in sorted(spilled)
    ]
    while stack:
        build_writer, probe_writer, salt = stack.pop()
        if probe_writer is None or probe_writer.rows == 0:
            # No probe rows can match this partition: drop it unread.
            build_writer.delete()
            if probe_writer is not None:
                probe_writer.delete()
            continue
        # Headroom is what the query's *tracked* working set still allows:
        # downstream breakers may be holding rows of their own.  A partition
        # above it re-partitions; with no headroom at all, splitting cannot
        # help and the terminal build's transient overshoot is accepted.
        headroom = limit - ctx.buffered_rows
        if headroom > 0 and build_writer.rows > headroom and salt <= GRACE_MAX_DEPTH:
            manager.check("merge", f"{label} p:salt{salt}")
            sub_build: dict[int, PartitionWriter] = {}
            sub_probe: dict[int, PartitionWriter] = {}
            for chunk in build_writer.drain():
                for key, value in chunk:
                    q = spill_hash(key, salt) % P
                    writer = sub_build.get(q)
                    if writer is None:
                        writer = sub_build[q] = PartitionWriter(
                            manager, f"{label} build s{salt}p{q}"
                        )
                    writer.append((key, value))
            for chunk in probe_writer.drain():
                for row in chunk:
                    q = spill_hash(probe_key(row), salt) % P
                    if q not in sub_build:
                        continue
                    writer = sub_probe.get(q)
                    if writer is None:
                        writer = sub_probe[q] = PartitionWriter(
                            manager, f"{label} probe s{salt}p{q}"
                        )
                    writer.append(row)
            build_writer.delete()
            probe_writer.delete()
            stack.extend(
                (sub_build[q], sub_probe.get(q), salt + 1)
                for q in sorted(sub_build)
            )
            continue
        # Terminal partition: build in memory (charged), stream its probe.
        count = build_writer.rows
        buffer.grow(count)
        part_table: dict[Any, list] = {}
        for chunk in build_writer.drain():
            for key, value in chunk:
                bucket = part_table.get(key)
                if bucket is None:
                    part_table[key] = [value]
                else:
                    bucket.append(value)
        build_writer.delete()
        part_lookup = part_table.get
        for chunk in probe_writer.drain():
            for row in chunk:
                matches = part_lookup(probe_key(row))
                if not matches:
                    continue
                if len(matches) == 1:
                    out.append(row + matches[0])
                else:
                    out.extend([row + match for match in matches])
                if len(out) >= size:
                    yield out
                    out = []
        probe_writer.delete()
        part_table.clear()
        buffer.shrink(count)
    if out:
        yield out


class ChunkSizer:
    """Adaptive flush threshold for expansion-heavy operators.

    Tracks the operator's cumulative input/output rows and re-derives the
    target chunk size from :meth:`ExecutionContext.expansion_batch_size`
    after every observation, so operators whose fan-out balloons output
    batches shrink their in-flight chunks instead of holding
    ``fan-out x batch_size`` rows between flushes.
    """

    __slots__ = ("_ctx", "size", "rows_in", "rows_out")

    def __init__(self, ctx: ExecutionContext):
        self._ctx = ctx
        self.size = ctx.batch_size
        self.rows_in = 0
        self.rows_out = 0

    def observe(self, rows_in: int, rows_out: int) -> None:
        """Record one input batch's observed fan-out and retune the size."""
        self.rows_in += rows_in
        self.rows_out += rows_out
        self.size = self._ctx.expansion_batch_size(self.rows_in, self.rows_out)


def expand_batches(
    batches: Iterable[Batch],
    expand_row: Callable[[tuple, list], None],
    ctx: ExecutionContext,
) -> Iterator[Batch]:
    """Row-to-many expansion (CSR walks, nested-loop inner scans).

    ``expand_row(row, out)`` appends zero or more output rows to ``out``;
    the kernel flushes ``out`` whenever it reaches the (adaptively sized)
    target chunk so a high-degree vertex cannot balloon the in-flight batch
    unboundedly.

    The two hottest expansion operators (``Expand``'s predicate-free fast
    path and ``CsrJoin``'s fast paths) deliberately inline this flush
    pattern instead of paying a per-row closure call — keep them in sync
    when changing the flushing contract here.
    """
    sizer = ChunkSizer(ctx)
    out: list = []
    for batch in batches:
        carry = len(out)
        flushed = 0
        for row in batch:
            expand_row(row, out)
            if len(out) >= sizer.size:
                flushed += len(out)
                yield out
                out = []
        sizer.observe(len(batch), flushed + len(out) - carry)
    if out:
        yield out


# ---------------------------------------------------------------------- #
# columnar kernels
# ---------------------------------------------------------------------- #


def emit_columnar(
    ctx: ExecutionContext, label: str, stream: Iterable[ColumnarBatch]
) -> Iterator[ColumnarBatch]:
    """Columnar counterpart of :func:`emit_batches` (same close guarantee)."""
    try:
        for cb in stream:
            n = len(cb)
            if not n:
                continue
            ctx.emit(n, label)
            yield cb
    finally:
        close_stream(stream)


def filter_columnar(
    batches: Iterable[ColumnarBatch],
    predicate: "Callable[[Sequence, Sequence[int] | None, int], Sequence[int] | None]",
) -> Iterator[ColumnarBatch]:
    """Refine each batch's selection vector by a compiled columnar predicate.

    The predicate returns the input selection object unchanged when every
    visible row passes, in which case the batch itself is forwarded
    (all-selected fast path, no allocation).
    """
    for cb in batches:
        sel = predicate(cb.columns, cb.selection, cb.length)
        if sel is cb.selection:
            yield cb
        elif sel is None or len(sel):
            yield ColumnarBatch(cb.columns, cb.length, sel)


def key_columns(cb: ColumnarBatch, indices: list[int]) -> list:
    """Per-row join keys extracted whole-column-at-a-time.

    Single-column keys are the gathered column itself (``None`` entries are
    SQL NULLs and never join); multi-column keys are tuples, collapsed to
    ``None`` when any part is NULL.
    """
    if len(indices) == 1:
        return list(cb.column(indices[0]))
    cols = [cb.column(i) for i in indices]
    return [
        None if any(v is None for v in parts) else parts for parts in zip(*cols)
    ]


def _single_key_dict(cb: ColumnarBatch, key_indices: list[int]):
    """The key column as a ``DictVector`` when a single dictionary-encoded
    key drives this batch, else None (the generic path)."""
    if len(key_indices) != 1:
        return None
    return vector.dict_vector(cb.column_vector(key_indices[0]))


class _DictKeyCache:
    """Per-dictionary memo mapping codes to hash-table state.

    Join kernels keep the hash table keyed by *values* (so partitioned
    builds merge by key and mixed dict/non-dict sides compose), but
    per-row work drops to an integer list index: ``slots[code]`` caches
    whatever the kernel derives from the decoded key (a build bucket, a
    probe match list).  Dictionaries are append-only with stable codes,
    so the memo survives across batches; it re-primes when a batch
    arrives from a different base column (values list identity) and
    extends when the dictionary grew.  ``_MISS`` marks un-derived slots —
    ``None`` is a legitimate cached result (a probe miss).
    """

    __slots__ = ("values", "slots", "derive", "_complete")

    _MISS = object()

    def __init__(self, derive):
        self.values: list | None = None
        self.slots: list = []
        self.derive = derive
        #: Eager-derivation watermark: slots below it were filled by
        #: :meth:`prime_eager`, so a steady-state batch (same dictionary,
        #: unchanged length) re-primes in O(1) instead of rescanning.
        self._complete = 0

    def prime(self, values: list) -> list:
        miss = self._MISS
        if self.values is not values:
            self.values = values
            self.slots = [miss] * len(values)
            self._complete = 0
        elif len(self.slots) < len(values):
            self.slots.extend([miss] * (len(values) - len(self.slots)))
        return self.slots

    def get(self, code: int):
        slot = self.slots[code]
        if slot is self._MISS:
            slot = self.derive(self.values[code])
            self.slots[code] = slot
        return slot

    def prime_eager(self, values: list) -> list:
        """Prime and derive *every* slot up front, so per-row access is a
        plain ``slots[code]`` list index with no Python-level call.  Only
        for side-effect-free ``derive`` functions: eager derivation visits
        dictionary values the batch stream may never contain."""
        slots = self.prime(values)
        n = len(slots)
        if self._complete < n:
            derive = self.derive
            for code in range(self._complete, n):
                slots[code] = derive(values[code])
            self._complete = n
        return slots


def build_hash_table_columnar(
    batches: Iterable[ColumnarBatch],
    key_indices: list[int],
    buffer: Buffer | None,
) -> dict[Any, list]:
    """Columnar hash build: key -> [row tuples].

    Keys are extracted column-at-a-time; the stored values are materialized
    row tuples (the build side is genuinely buffered state, so tuple
    materialization here matches what the memory budget charges).  A
    dictionary-encoded single key skips per-row string hashing: each
    distinct value is interned into the table once and its bucket is
    reached through the code thereafter.
    """
    table: dict[Any, list] = {}

    def intern_bucket(key: str) -> list:
        bucket = table.get(key)
        if bucket is None:
            bucket = []
            table[key] = bucket
        return bucket

    cache = _DictKeyCache(intern_bucket)
    try:
        for cb in batches:
            values = cb.to_rows()
            count = 0
            dv = _single_key_dict(cb, key_indices)
            if dv is not None:
                slots = cache.prime(dv.values)
                miss = _DictKeyCache._MISS
                intern = cache.get
                for code, value in zip(dv.codes.tolist(), values):
                    bucket = slots[code]
                    if bucket is miss:
                        bucket = intern(code)
                    bucket.append(value)
                count = len(values)
            else:
                keys = key_columns(cb, key_indices)
                for key, value in zip(keys, values):
                    if key is None:
                        continue
                    bucket = table.get(key)
                    if bucket is None:
                        table[key] = [value]
                    else:
                        bucket.append(value)
                    count += 1
            if buffer is not None:
                buffer.grow(count)
    finally:
        close_stream(batches)
    return table


def probe_hash_table_columnar(
    batches: Iterable[ColumnarBatch],
    table: dict[Any, list],
    key_indices: list[int],
    ctx: ExecutionContext,
) -> Iterator[ColumnarBatch]:
    """Columnar stream probe: probe columns gather, build tuples transpose.

    For each probe batch the key column is extracted at once; matching rows
    are described by a parent-position vector (which probe row each output
    row replicates) plus the matched build tuples, and the output batch is
    assembled column-wise: probe columns are gathered through the parent
    vector, build values are transposed at C speed.  Output is re-chunked
    so joins with high fan-out keep bounded in-flight state.
    """
    lookup = table.get
    sizer = ChunkSizer(ctx)
    # Dictionary-encoded probe keys translate once per distinct value: the
    # probe column's dictionary is remapped onto the build table's buckets
    # (the build-side dictionary remap — ``table.get`` is side-effect free,
    # so every slot derives eagerly).  Each probe batch then resolves as
    # one vectorized mask gather over its codes: rows that miss the build
    # table never reach the Python match loop at all.
    cache = _DictKeyCache(lookup)
    hit_mask = None
    hit_src: list | None = None
    for cb in batches:
        dv = _single_key_dict(cb, key_indices)
        parents: list[int] = []
        builds: list[tuple] = []
        flushed = 0
        if dv is not None:
            np = vector._np
            slots = cache.prime_eager(dv.values)
            if hit_src is not slots or len(hit_mask) != len(slots):
                hit_mask = np.fromiter(
                    map(bool, slots), dtype=bool, count=len(slots)
                )
                hit_src = slots
            codes = dv.codes
            hits = np.flatnonzero(hit_mask[codes])
            for j, key in zip(hits.tolist(), codes[hits].tolist()):
                matches = slots[key]
                if len(matches) == 1:
                    parents.append(j)
                    builds.append(matches[0])
                else:
                    parents.extend([j] * len(matches))
                    builds.extend(matches)
                if len(parents) >= sizer.size:
                    # Flush mid-batch so high-multiplicity keys cannot
                    # balloon in-flight (budget-invisible) assembly state.
                    flushed += len(parents)
                    yield from chunk_columnar(
                        replicate_columnar(cb, parents, transpose_rows(builds)),
                        sizer.size,
                    )
                    parents, builds = [], []
        else:
            keys = key_columns(cb, key_indices)
            for j, key in enumerate(keys):
                if key is None:
                    continue
                matches = lookup(key)
                if not matches:
                    continue
                if len(matches) == 1:
                    parents.append(j)
                    builds.append(matches[0])
                else:
                    parents.extend([j] * len(matches))
                    builds.extend(matches)
                if len(parents) >= sizer.size:
                    # Flush mid-batch so high-multiplicity keys cannot
                    # balloon in-flight (budget-invisible) assembly state.
                    flushed += len(parents)
                    yield from chunk_columnar(
                        replicate_columnar(cb, parents, transpose_rows(builds)),
                        sizer.size,
                    )
                    parents, builds = [], []
        sizer.observe(len(cb), flushed + len(parents))
        if parents:
            yield from chunk_columnar(
                replicate_columnar(cb, parents, transpose_rows(builds)), sizer.size
            )


def transpose_rows(rows: list[tuple]) -> list:
    """Row tuples -> column tuples (C-speed zip); [] for empty/zero-width."""
    if not rows or not rows[0]:
        return []
    return list(zip(*rows))


def replicate_columnar(
    cb: ColumnarBatch, parents: list[int], new_columns: list
) -> ColumnarBatch:
    """Expansion assembly: replicate ``cb``'s rows through ``parents`` and
    append ``new_columns``.

    ``parents`` holds, per output row, the position of the visible input
    row it extends; ``new_columns`` are dense sequences aligned with
    ``parents`` (the per-output-row new values).  The result is a compact
    batch (no selection vector); ndarray inputs stay ndarrays, so chained
    expansions gather natively.
    """
    sel = cb.selection
    raw = parents if sel is None else take(sel, parents)
    cols = [take(c, raw) for c in cb.columns]
    cols.extend(new_columns)
    return ColumnarBatch(cols, len(parents), None)


def csr_expand_vectors(vertices, offsets, edges):
    """Whole-batch CSR expansion in numpy: ``(parents, edge_ids)``.

    ``vertices`` are the bound rowids of one batch (any int sequence);
    ``offsets``/``edges`` must be ndarrays.  Output row ``t`` extends input
    row ``parents[t]`` with adjacent edge ``edge_ids[t]`` — the same pairs
    the per-row Python walk produces, computed as three gathers: degrees,
    replicated group starts, and one fancy-index into the CSR edge array.
    Returns None when the batch expands to nothing.
    """
    np = vector._np
    v = vector.as_index_array(vertices)
    if not len(v):
        return None
    lo = offsets[v]
    deg = offsets[v + 1] - lo
    total = int(deg.sum())
    if not total:
        return None
    parents = np.repeat(np.arange(len(v), dtype=np.intp), deg)
    group_starts = np.concatenate(([0], np.cumsum(deg[:-1])))
    positions = np.arange(total, dtype=np.intp) + np.repeat(lo - group_starts, deg)
    return parents, edges[positions]


def csr_expand_filtered(vertices, offsets, edges, edge_mask=None):
    """:func:`csr_expand_vectors` plus the optional edge-mask refinement.

    The shared head of every vectorized expansion site (graph EXPAND /
    EXPAND_EDGE, closing EXPAND, relational CsrJoin): expand the batch,
    drop expansions whose edge fails ``edge_mask``, and collapse the
    nothing-survived case to None so callers skip the batch uniformly.
    """
    expanded = csr_expand_vectors(vertices, offsets, edges)
    if expanded is None:
        return None
    parents, edge_ids = expanded
    if edge_mask is not None:
        keep = edge_mask[edge_ids]
        if not keep.all():
            parents, edge_ids = parents[keep], edge_ids[keep]
            if not len(parents):
                return None
    return parents, edge_ids


def chunk_columnar(cb: ColumnarBatch, size: int) -> Iterator[ColumnarBatch]:
    """Split an oversized batch into <= ``size``-row chunks (zero-copy)."""
    n = len(cb)
    if n <= size:
        if n:
            yield cb
        return
    for start in range(0, n, size):
        yield cb.take(range(start, min(start + size, n)))


def rows_to_columnar(
    batches: Iterable[Batch],
) -> Iterator[ColumnarBatch]:
    """Adapt a row-batch stream to the columnar protocol."""
    for batch in batches:
        if batch:
            yield ColumnarBatch.from_rows(batch)
