"""Shared streaming kernels.

The relational and graph operator families used to carry two private copies
of the same inner loops (filter, project, hash build, hash probe, adjacency
expansion).  These generators/helpers are the single shared implementation
both families are now built from.  All kernels operate on *batches* — lists
of row tuples — and preserve row order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.exec.context import Buffer, ExecutionContext

Batch = list


def emit_batches(
    ctx: ExecutionContext, label: str, stream: Iterable[Batch]
) -> Iterator[Batch]:
    """Count each non-empty batch of ``stream`` against ``label`` and pass it on."""
    for batch in stream:
        if not batch:
            continue
        ctx.emit(len(batch), label)
        yield batch


def chunked(rows: list, size: int) -> Iterator[Batch]:
    """Re-chunk a materialized row list into batches of ``size``."""
    for start in range(0, len(rows), size):
        yield rows[start : start + size]


def filter_batches(
    batches: Iterable[Batch], keep: Callable[[tuple], Any]
) -> Iterator[Batch]:
    """Keep the rows of each batch for which ``keep(row)`` is truthy."""
    for batch in batches:
        out = [row for row in batch if keep(row)]
        if out:
            yield out


def map_batches(
    batches: Iterable[Batch], transform: Callable[[Batch], Batch]
) -> Iterator[Batch]:
    """Apply a whole-batch transform (projection, gather) to each batch."""
    for batch in batches:
        out = transform(batch)
        if out:
            yield out


def scalar_key(index: int) -> Callable[[tuple], Any]:
    """Single-column join key; ``None`` values never match (SQL semantics)."""
    return lambda row: row[index]


def tuple_key(indices: list[int]) -> Callable[[tuple], Any]:
    """Multi-column join key; returns None (no match) when any part is NULL."""

    def key(row: tuple) -> Any:
        parts = tuple(row[i] for i in indices)
        return None if any(p is None for p in parts) else parts

    return key


def build_hash_table(
    batches: Iterable[Batch],
    key_of: Callable[[tuple], Any],
    buffer: Buffer | None,
    value_of: Callable[[tuple], Any] | None = None,
) -> dict[Any, list]:
    """Drain ``batches`` into ``key -> [values]``, charging ``buffer``.

    Rows whose key is ``None`` are skipped (SQL NULLs never join).  The
    buffer is grown incrementally so an exploding build side trips the
    memory budget mid-build, not after the fact.  Pass ``buffer=None`` when
    the rows were already charged by the caller (e.g. re-hashing an input
    that was buffered for an adaptive build-side choice).
    """
    table: dict[Any, list] = {}
    for batch in batches:
        kept = 0
        for row in batch:
            key = key_of(row)
            if key is None:
                continue
            value = row if value_of is None else value_of(row)
            bucket = table.get(key)
            if bucket is None:
                table[key] = [value]
            else:
                bucket.append(value)
            kept += 1
        if buffer is not None:
            buffer.grow(kept)
    return table


def probe_hash_table(
    batches: Iterable[Batch],
    table: dict[Any, list],
    key_of: Callable[[tuple], Any],
    batch_size: int,
) -> Iterator[Batch]:
    """Stream probe: concatenate each probing row with its matches.

    The build values must be tuples (full rows or pre-trimmed extras); the
    output row is ``probe_row + value``.  Output is re-chunked to
    ``batch_size`` so joins with high fan-out keep bounded in-flight state.
    """
    lookup = table.get
    out: list = []
    for batch in batches:
        for row in batch:
            matches = lookup(key_of(row))
            if not matches:
                continue
            if len(matches) == 1:
                out.append(row + matches[0])
            else:
                out.extend([row + match for match in matches])
            if len(out) >= batch_size:
                yield out
                out = []
    if out:
        yield out


def expand_batches(
    batches: Iterable[Batch],
    expand_row: Callable[[tuple, list], None],
    batch_size: int,
) -> Iterator[Batch]:
    """Row-to-many expansion (CSR walks, nested-loop inner scans).

    ``expand_row(row, out)`` appends zero or more output rows to ``out``;
    the kernel flushes ``out`` whenever it reaches ``batch_size`` so a
    high-degree vertex cannot balloon the in-flight batch unboundedly.

    The two hottest expansion operators (``Expand``'s predicate-free fast
    path and ``CsrJoin``'s fast paths) deliberately inline this flush
    pattern instead of paying a per-row closure call — keep them in sync
    when changing the flushing contract here.
    """
    out: list = []
    for batch in batches:
        for row in batch:
            expand_row(row, out)
            if len(out) >= batch_size:
                yield out
                out = []
    if out:
        yield out
